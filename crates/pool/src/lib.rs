//! A std-only scoped thread pool with chunked fan-out.
//!
//! The workspace is hermetic (DESIGN.md §5) — no rayon, no crossbeam — so
//! the parallel chase and parallel route-forest construction run on this
//! small, safe abstraction over [`std::thread::scope`]:
//!
//! * [`Pool`] fixes a worker count, taken from `ROUTES_THREADS` when set or
//!   [`std::thread::available_parallelism`] otherwise.
//! * [`Pool::scope`] opens a scoped-spawn region; borrows of stack data are
//!   allowed exactly as with `std::thread::scope`.
//! * [`Pool::par_map_chunks`] is the workhorse: it splits an index range
//!   `0..len` into at most `threads` contiguous chunks, runs a closure on
//!   each chunk (chunk 0 on the calling thread, the rest on scoped worker
//!   threads), and returns the per-chunk results **in chunk order** — the
//!   deterministic merge the chase and forest builders rely on.
//!
//! Threads are spawned per fan-out region rather than parked in a
//! persistent pool: a persistent pool that accepts borrowing closures
//! cannot be written in safe std Rust (it needs crossbeam-style lifetime
//! erasure), and the regions this crate serves — chase rounds, forest
//! waves, benchmark points — run for milliseconds to seconds, so the
//! microseconds of `thread::spawn` are noise. With one worker every helper
//! degenerates to an inline loop and spawns nothing.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::thread;

/// Environment variable overriding the worker count ([`Pool::from_env`]).
pub const THREADS_ENV: &str = "ROUTES_THREADS";

/// A fixed degree of parallelism for scoped, chunked fan-out.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: NonZeroUsize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// A single-worker pool: every helper runs inline on the caller.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// Size the pool from the environment: `ROUTES_THREADS` when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`]
    /// (falling back to 1 when even that is unavailable).
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        match from_var {
            Some(n) => Pool::new(n),
            None => Pool::new(thread::available_parallelism().map_or(1, NonZeroUsize::get)),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether fan-out helpers will actually spawn threads.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Open a scoped-spawn region. This is [`std::thread::scope`] with the
    /// pool as the carrier of the intended degree of parallelism; use
    /// [`Pool::par_map_chunks`] unless the fan-out shape is irregular.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope thread::Scope<'scope, 'env>) -> R,
    {
        thread::scope(f)
    }

    /// Split `0..len` into at most [`Pool::threads`] contiguous chunks of at
    /// least `min_chunk` items (the final chunk takes the remainder), apply
    /// `f` to each `(chunk_index, index_range)` pair, and return the results
    /// in chunk order.
    ///
    /// Chunk 0 runs on the calling thread; other chunks run on scoped
    /// threads. The chunk *boundaries* depend on the worker count, but a
    /// caller that treats each index independently and concatenates the
    /// per-chunk outputs obtains the same sequence at every worker count —
    /// the determinism contract the chase and forest builders are built on.
    pub fn par_map_chunks<R, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let chunks = chunk_ranges(len, self.threads(), min_chunk);
        match chunks.len() {
            0 => Vec::new(),
            1 => vec![f(0, chunks.into_iter().next().expect("one chunk"))],
            _ => self.scope(|s| {
                let f = &f;
                // Carry the caller's trace context onto the workers so
                // spans opened inside a parallel region land under the
                // request that spawned them; likewise the caller's open
                // profiler frames, so sampled worker stacks attribute to
                // the request path that spawned them.
                let trace = routes_obs::current();
                let frames = routes_obs::snapshot_frames();
                let mut rest = chunks.clone().into_iter().enumerate().skip(1);
                let handles: Vec<_> = rest
                    .by_ref()
                    .map(|(k, range)| {
                        let trace = trace.clone();
                        let frames = frames.clone();
                        s.spawn(move || {
                            let _scope = routes_obs::scoped(trace);
                            let _frames = routes_obs::adopt_frames(frames);
                            f(k, range)
                        })
                    })
                    .collect();
                let first = f(0, chunks[0].clone());
                let mut out = Vec::with_capacity(handles.len() + 1);
                out.push(first);
                for h in handles {
                    out.push(h.join().expect("pool worker panicked"));
                }
                out
            }),
        }
    }

    /// [`Pool::par_map_chunks`] over the items of a slice: apply `f` to every
    /// element and collect the outputs **in item order**. `min_chunk` bounds
    /// the smallest per-thread chunk, so short inputs stay on one thread.
    pub fn par_map_items<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let per_chunk = self.par_map_chunks(items.len(), min_chunk, |_, range| {
            items[range].iter().map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }

    /// [`Pool::par_map_items`] for closures that yield zero or more outputs
    /// per item: apply `f` to every element and concatenate the outputs **in
    /// item order** (the flattening happens after the chunk-ordered merge,
    /// so the result is identical at every worker count).
    pub fn par_flat_map_items<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Vec<R> + Sync,
    {
        let per_item = self.par_map_items(items, min_chunk, f);
        let mut out = Vec::with_capacity(per_item.iter().map(Vec::len).sum());
        for group in per_item {
            out.extend(group);
        }
        out
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Split `0..len` into at most `parts` contiguous ranges of at least
/// `min_chunk` items each (the last range absorbs the remainder). Returns no
/// ranges for an empty input.
fn chunk_ranges(len: usize, parts: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    // Capping at len / min_chunk (floor) guarantees every chunk holds at
    // least min_chunk items: parts * min_chunk <= len implies the even
    // split's base size is >= min_chunk.
    let parts = parts.max(1).min((len / min_chunk).max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 1000] {
            for parts in [1usize, 2, 3, 8] {
                for min_chunk in [1usize, 4, 64] {
                    let ranges = chunk_ranges(len, parts, min_chunk);
                    let mut covered = Vec::new();
                    for r in &ranges {
                        assert!(r.start <= r.end);
                        covered.extend(r.clone());
                    }
                    assert_eq!(
                        covered,
                        (0..len).collect::<Vec<_>>(),
                        "len={len} parts={parts}"
                    );
                    assert!(ranges.len() <= parts.max(1));
                    if len > 0 {
                        // Every chunk except possibly the only one meets the
                        // minimum (a single chunk may be the short input).
                        if ranges.len() > 1 {
                            assert!(ranges.iter().all(|r| r.len() >= min_chunk.min(len)));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn par_map_chunks_is_order_deterministic_across_widths() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let chunks = pool.par_map_chunks(items.len(), 1, |_, range| {
                items[range].iter().map(|x| x * x).collect::<Vec<_>>()
            });
            let flat: Vec<u64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, expect, "threads={threads}");
            let mapped = pool.par_map_items(&items, 1, |x| x * x);
            assert_eq!(mapped, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_chunks_actually_fans_out() {
        let pool = Pool::new(4);
        let ids = Mutex::new(HashSet::new());
        let chunks = pool.par_map_chunks(4, 1, |k, range| {
            ids.lock().unwrap().insert(std::thread::current().id());
            (k, range)
        });
        assert_eq!(chunks.len(), 4);
        for (k, (got_k, range)) in chunks.iter().enumerate() {
            assert_eq!(k, *got_k);
            assert_eq!(range.len(), 1);
        }
        // Four single-item chunks on a 4-thread pool: more than one OS
        // thread participated (chunk 0 runs on the caller).
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn par_flat_map_items_concatenates_in_item_order() {
        let items: Vec<u64> = (0..57).collect();
        // Item k yields k % 3 outputs — uneven, so chunk boundaries matter.
        let expect: Vec<u64> = items
            .iter()
            .flat_map(|&x| (0..x % 3).map(move |j| x * 10 + j))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let flat =
                pool.par_flat_map_items(&items, 1, |&x| (0..x % 3).map(|j| x * 10 + j).collect());
            assert_eq!(flat, expect, "threads={threads}");
        }
    }

    #[test]
    fn min_chunk_keeps_short_inputs_inline() {
        let pool = Pool::new(8);
        let caller = std::thread::current().id();
        let chunks =
            pool.par_map_chunks(100, 1000, |_, range| (std::thread::current().id(), range));
        assert_eq!(
            chunks.len(),
            1,
            "100 items under a 1000 min_chunk is one chunk"
        );
        assert_eq!(chunks[0].0, caller, "single chunk runs on the caller");
        assert_eq!(chunks[0].1, 0..100);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let pool = Pool::new(4);
        let out: Vec<Vec<u8>> = pool.par_map_chunks(0, 1, |_, _| unreachable!());
        assert!(out.is_empty());
        let none: Vec<u8> = pool.par_map_items(&[] as &[u8], 1, |_| unreachable!());
        assert!(none.is_empty());
    }

    #[test]
    fn sequential_pool_runs_on_the_caller() {
        let pool = Pool::sequential();
        assert_eq!(pool.threads(), 1);
        assert!(!pool.is_parallel());
        let caller = std::thread::current().id();
        let chunks = pool.par_map_chunks(10, 1, |_, _| std::thread::current().id());
        assert!(chunks.iter().all(|&id| id == caller));
    }

    #[test]
    fn from_env_reads_the_override() {
        // Env mutation is process-global; this test is the only one in the
        // crate touching ROUTES_THREADS.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(Pool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Pool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Pool::from_env().threads() >= 1);
    }

    #[test]
    fn scope_spawns_scoped_borrows() {
        let pool = Pool::new(2);
        let data = [1u64, 2, 3];
        let total: u64 = pool.scope(|s| {
            let h = s.spawn(|| data.iter().sum::<u64>());
            h.join().unwrap()
        });
        assert_eq!(total, 6);
    }
}
