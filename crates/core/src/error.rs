//! Error types for route validation and computation.

use std::fmt;

use routes_model::TupleId;

/// Why a step sequence fails to be a route (Definition 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A step's assignment is not a homomorphism of the tgd's LHS into the
    /// instance its LHS ranges over.
    LhsNotInInstance {
        /// Index of the offending step.
        step: usize,
    },
    /// A step's assignment does not map the tgd's RHS into the solution `J`.
    RhsNotInSolution {
        /// Index of the offending step.
        step: usize,
    },
    /// A target-tgd step uses an LHS tuple that has not been produced by an
    /// earlier step (it is not in `J_i`).
    LhsTupleNotYetProduced {
        /// Index of the offending step.
        step: usize,
        /// The premature tuple.
        tuple: TupleId,
    },
    /// The sequence replays fine but does not produce all selected tuples.
    SelectionNotProduced {
        /// Selected tuples missing from the produced set.
        missing: Vec<TupleId>,
    },
    /// Routes are non-empty sequences by definition.
    Empty,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::LhsNotInInstance { step } => {
                write!(
                    f,
                    "step {step}: assignment does not map the LHS into its instance"
                )
            }
            RouteError::RhsNotInSolution { step } => {
                write!(
                    f,
                    "step {step}: assignment does not map the RHS into the solution"
                )
            }
            RouteError::LhsTupleNotYetProduced { step, tuple } => write!(
                f,
                "step {step}: LHS tuple {tuple:?} has not been produced by an earlier step"
            ),
            RouteError::SelectionNotProduced { missing } => {
                write!(
                    f,
                    "route does not produce {} selected tuple(s)",
                    missing.len()
                )
            }
            RouteError::Empty => write!(f, "a route must contain at least one step"),
        }
    }
}

impl std::error::Error for RouteError {}

/// `ComputeOneRoute` failure: some selected tuples have no route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneRouteError {
    /// The selected tuples for which no route exists.
    pub no_route: Vec<TupleId>,
}

impl fmt::Display for OneRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no route exists for {} selected tuple(s): {:?}",
            self.no_route.len(),
            self.no_route
        )
    }
}

impl std::error::Error for OneRouteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::RelId;

    #[test]
    fn displays() {
        assert!(RouteError::Empty.to_string().contains("at least one"));
        let e = RouteError::LhsTupleNotYetProduced {
            step: 3,
            tuple: TupleId {
                rel: RelId(0),
                row: 7,
            },
        };
        assert!(e.to_string().contains("step 3"));
        let o = OneRouteError {
            no_route: vec![TupleId {
                rel: RelId(1),
                row: 0,
            }],
        };
        assert!(o.to_string().contains("1 selected"));
    }
}
