//! Exact route counting over route forests.
//!
//! The paper observes that a selection can have exponentially many (minimal)
//! routes while the forest stays polynomial. When the forest is *acyclic*,
//! the exact count is computable in polynomial time by dynamic programming:
//!
//! ```text
//! count(t)   = Σ over branches b of t:  1                        if b is s-t
//!                                       Π over children c of b: count(c)
//! count(set) = Π over tuples t in set: count(t)
//! ```
//!
//! On cyclic forests `NaivePrint`'s `ANCESTORS` pruning makes the route set
//! context-dependent, so the DP is not well-defined and [`count_routes`]
//! returns `None` — fall back to capped enumeration
//! ([`crate::enumerate_routes`]) there.

use std::collections::HashMap;

use routes_model::TupleId;

use crate::forest::RouteForest;

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    InProgress,
    Done(u128),
}

/// Exact number of routes `NaivePrint` would produce for `selected`, when
/// the forest is acyclic; `None` if a cycle (or a u128 overflow) makes the
/// count ill-defined.
pub fn count_routes(forest: &RouteForest, selected: &[TupleId]) -> Option<u128> {
    let mut memo: HashMap<TupleId, State> = HashMap::new();
    let mut product: u128 = 1;
    // Deduplicate selection (as NaivePrint does).
    let mut seen = Vec::new();
    for &t in selected {
        if !seen.contains(&t) {
            seen.push(t);
        }
    }
    for t in seen {
        let c = count_tuple(forest, t, &mut memo)?;
        product = product.checked_mul(c)?;
    }
    Some(product)
}

fn count_tuple(
    forest: &RouteForest,
    t: TupleId,
    memo: &mut HashMap<TupleId, State>,
) -> Option<u128> {
    match memo.get(&t) {
        Some(State::Done(c)) => return Some(*c),
        Some(State::InProgress) => return None, // cycle
        None => {}
    }
    memo.insert(t, State::InProgress);
    let mut total: u128 = 0;
    for branch in forest.branches_of(t) {
        let branch_count = if branch.is_st() {
            1u128
        } else {
            let mut product: u128 = 1;
            for child in branch.target_children() {
                let c = count_tuple(forest, child, memo)?;
                product = product.checked_mul(c)?;
            }
            product
        };
        total = total.checked_add(branch_count)?;
    }
    memo.insert(t, State::Done(total));
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::env::RouteEnv;
    use crate::print::enumerate_routes;
    use routes_chase::{chase, ChaseOptions};
    use routes_mapping::{parse_st_tgd, SchemaMapping};
    use routes_model::{Instance, Schema, Value, ValuePool};

    #[test]
    fn count_matches_enumeration_on_a_fanout_scenario() {
        // S1(x) -> T(x), S2(x) -> T(x): every T tuple derivable two ways;
        // selecting k tuples gives 2^k routes.
        let mut s = Schema::new();
        s.rel("S1", &["a"]);
        s.rel("S2", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "a: S1(x) -> T(x)").unwrap())
            .unwrap();
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "b: S2(x) -> T(x)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        for k in 0..8 {
            i.insert_ok(s.rel_id("S1").unwrap(), &[Value::Int(k)]);
            i.insert_ok(s.rel_id("S2").unwrap(), &[Value::Int(k)]);
        }
        let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
            .unwrap()
            .target;
        let env = RouteEnv::new(&m, &i, &j);
        let all: Vec<_> = j.all_rows().collect();
        let forest = compute_all_routes(env, &all);
        assert_eq!(count_routes(&forest, &all), Some(1 << 8));
        // Spot-check against enumeration for a 3-tuple selection: 8 routes.
        let sel = &all[..3];
        let forest3 = compute_all_routes(env, sel);
        assert_eq!(count_routes(&forest3, sel), Some(8));
        assert_eq!(enumerate_routes(env, &forest3, sel, 100).len(), 8);
    }

    #[test]
    fn cyclic_forest_returns_none() {
        use crate::testkit::example_3_5;
        // Example 3.5's forest contains the σ7 back-edge T3 → T5 → ... → T3.
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = routes_model::TupleId {
            rel: t7_rel,
            row: 0,
        };
        let forest = compute_all_routes(env, &[t7]);
        assert_eq!(count_routes(&forest, &[t7]), None);
    }

    #[test]
    fn empty_branch_tuples_count_zero() {
        let mut forest = RouteForest::default();
        let t = routes_model::TupleId {
            rel: routes_model::RelId(0),
            row: 0,
        };
        forest.branches.insert(t, vec![]);
        assert_eq!(count_routes(&forest, &[t]), Some(0));
        // And a multi-selection with a zero factor is zero overall.
        assert_eq!(count_routes(&forest, &[t, t]), Some(0));
        // Empty selection: the empty product.
        assert_eq!(count_routes(&forest, &[]), Some(1));
    }
}
