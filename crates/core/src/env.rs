//! The debugging environment: a schema mapping together with a concrete
//! source instance and a solution.

use routes_mapping::{SchemaMapping, TgdId, TgdKind};
use routes_model::{Fact, Instance, Side, TupleId, Value};
use routes_query::Bindings;

/// Everything the route algorithms take as input: the mapping `M`, the
/// source instance `I`, and a solution `J` for `I` under `M`.
///
/// `J` may be *any* solution (paper Definition 3.3) — in particular it may
/// contain tuples with no route at all; the algorithms detect those.
#[derive(Clone, Copy)]
pub struct RouteEnv<'a> {
    /// The schema mapping being debugged.
    pub mapping: &'a SchemaMapping,
    /// The source instance `I`.
    pub source: &'a Instance,
    /// The solution `J`.
    pub target: &'a Instance,
}

impl<'a> RouteEnv<'a> {
    /// Bundle a mapping with its instances.
    pub fn new(mapping: &'a SchemaMapping, source: &'a Instance, target: &'a Instance) -> Self {
        RouteEnv {
            mapping,
            source,
            target,
        }
    }

    /// The instance a tgd's LHS ranges over: `I` for s-t tgds, `J` for
    /// target tgds (the `K` of paper Figure 4).
    pub fn lhs_instance(&self, id: TgdId) -> &'a Instance {
        match id.kind() {
            TgdKind::SourceToTarget => self.source,
            TgdKind::Target => self.target,
        }
    }

    /// Which side a tgd's LHS facts live on.
    pub fn lhs_side(&self, id: TgdId) -> Side {
        match id.kind() {
            TgdKind::SourceToTarget => Side::Source,
            TgdKind::Target => Side::Target,
        }
    }

    /// Materialize the image of an atom list under a total assignment and
    /// resolve each image tuple in the given instance. Returns `None` if any
    /// image tuple is absent (the assignment is not a homomorphism into it).
    pub fn resolve_atom_images(
        &self,
        atoms: &[routes_model::Atom],
        hom: &[Value],
        instance: &Instance,
        side: Side,
    ) -> Option<Vec<Fact>> {
        let mut out = Vec::with_capacity(atoms.len());
        let mut buf: Vec<Value> = Vec::new();
        for atom in atoms {
            buf.clear();
            for term in &atom.terms {
                buf.push(match term {
                    routes_model::Term::Const(c) => *c,
                    routes_model::Term::Var(v) => hom[v.0 as usize],
                });
            }
            let id = instance.find(atom.rel, &buf)?;
            out.push(Fact { side, id });
        }
        Some(out)
    }

    /// The LHS facts of a step `(σ, h)`: source facts for s-t tgds, target
    /// facts for target tgds. `None` if `h` is not a homomorphism of the LHS
    /// into the appropriate instance.
    pub fn lhs_facts(&self, id: TgdId, hom: &[Value]) -> Option<Vec<Fact>> {
        let tgd = self.mapping.tgd(id);
        self.resolve_atom_images(tgd.lhs(), hom, self.lhs_instance(id), self.lhs_side(id))
    }

    /// The RHS tuples of a step `(σ, h)` (always target side). `None` if
    /// `h(ψ) ⊄ J`.
    pub fn rhs_tuples(&self, id: TgdId, hom: &[Value]) -> Option<Vec<TupleId>> {
        let tgd = self.mapping.tgd(id);
        let facts = self.resolve_atom_images(tgd.rhs(), hom, self.target, Side::Target)?;
        Some(facts.into_iter().map(|f| f.id).collect())
    }

    /// Convert a total [`Bindings`] into the dense assignment vector used by
    /// steps. Panics if any variable in the tgd's space is unbound.
    pub fn to_assignment(tgd_var_count: usize, b: &Bindings) -> Box<[Value]> {
        assert_eq!(b.capacity(), tgd_var_count);
        b.to_total()
            .expect("findHom yields total assignments")
            .into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::parse_st_tgd;
    use routes_model::{Schema, ValuePool};

    #[test]
    fn resolves_step_images() {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        let id = m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x,y) -> exists Z: T(x,Z)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        let mut j = Instance::new(&t);
        let sid = i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1), Value::Int(2)]);
        let n = pool.named_null("N");
        let tid = j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(1), n]);
        let env = RouteEnv::new(&m, &i, &j);
        // hom: x=1, y=2, Z=N.
        let hom = vec![Value::Int(1), Value::Int(2), n];
        assert_eq!(env.lhs_facts(id, &hom), Some(vec![Fact::source(sid)]));
        assert_eq!(env.rhs_tuples(id, &hom), Some(vec![tid]));
        // A non-homomorphism resolves to None.
        let bad = vec![Value::Int(7), Value::Int(2), n];
        assert_eq!(env.lhs_facts(id, &bad), None);
        assert_eq!(env.rhs_tuples(id, &bad), None);
    }
}
