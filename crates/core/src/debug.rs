//! The interactive debugger session (paper §3.4): breakpoints on tgds,
//! single-stepping the computation of a route, and a watch window showing
//! how the (replayed) target instance grows and which variable assignment
//! each step uses.

use std::collections::HashSet;

use routes_mapping::TgdId;
use routes_model::{TupleId, Value, ValuePool, Var};

use crate::display::step_to_string;
use crate::env::RouteEnv;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// What happened on one `step()` of the session.
#[derive(Debug, Clone)]
pub struct StepEvent {
    /// Index of the executed step within the route.
    pub index: usize,
    /// The executed step.
    pub step: SatisfactionStep,
    /// Target tuples newly added to the watch window by this step.
    pub new_tuples: Vec<TupleId>,
    /// The step's variable assignment as `(name, value)` pairs.
    pub assignment: Vec<(String, Value)>,
    /// Whether a breakpoint on this step's tgd fired.
    pub hit_breakpoint: bool,
}

/// A single-stepping session over a computed route.
///
/// The session replays the route one satisfaction step at a time,
/// maintaining the produced-tuple set (“watch window”) and honouring
/// breakpoints on tgds.
pub struct DebugSession<'a> {
    env: RouteEnv<'a>,
    route: Route,
    position: usize,
    breakpoints: HashSet<TgdId>,
    produced: HashSet<TupleId>,
}

impl<'a> DebugSession<'a> {
    /// Start a session over a route.
    pub fn new(env: RouteEnv<'a>, route: Route) -> Self {
        DebugSession {
            env,
            route,
            position: 0,
            breakpoints: HashSet::new(),
            produced: HashSet::new(),
        }
    }

    /// Set a breakpoint on a tgd.
    pub fn add_breakpoint(&mut self, tgd: TgdId) {
        self.breakpoints.insert(tgd);
    }

    /// Set a breakpoint by tgd name; returns whether the name resolved.
    pub fn add_breakpoint_by_name(&mut self, name: &str) -> bool {
        match self.env.mapping.tgd_by_name(name) {
            Some(id) => {
                self.breakpoints.insert(id);
                true
            }
            None => false,
        }
    }

    /// Remove a breakpoint.
    pub fn remove_breakpoint(&mut self, tgd: TgdId) {
        self.breakpoints.remove(&tgd);
    }

    /// The current step index (next to execute).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Whether the route has been fully replayed.
    pub fn finished(&self) -> bool {
        self.position >= self.route.len()
    }

    /// The watch window: target tuples produced so far.
    pub fn watch(&self) -> &HashSet<TupleId> {
        &self.produced
    }

    /// Execute one step; `None` when finished.
    pub fn step(&mut self) -> Option<StepEvent> {
        let step = self.route.steps().get(self.position)?.clone();
        let index = self.position;
        self.position += 1;

        let rhs = step.rhs_tuples(&self.env).unwrap_or_default();
        let new_tuples: Vec<TupleId> = rhs
            .into_iter()
            .filter(|t| self.produced.insert(*t))
            .collect();
        let tgd = self.env.mapping.tgd(step.tgd);
        let assignment = (0..tgd.var_count() as u32)
            .map(|v| (tgd.var_name(Var(v)).to_owned(), step.hom[v as usize]))
            .collect();
        Some(StepEvent {
            index,
            step: step.clone(),
            new_tuples,
            assignment,
            hit_breakpoint: self.breakpoints.contains(&step.tgd),
        })
    }

    /// Run until a breakpoint fires or the route ends; returns the event
    /// that hit the breakpoint, if any.
    pub fn run_to_breakpoint(&mut self) -> Option<StepEvent> {
        while let Some(event) = self.step() {
            if event.hit_breakpoint {
                return Some(event);
            }
        }
        None
    }

    /// Render the next step without executing it (the “source line” view).
    pub fn peek(&self, pool: &ValuePool) -> Option<String> {
        self.route
            .steps()
            .get(self.position)
            .map(|s| step_to_string(pool, &self.env, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_route::compute_one_route;
    use crate::testkit::example_3_5;

    #[test]
    fn stepping_replays_the_route() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let route = compute_one_route(env, &[t7]).unwrap();
        let total = route.len();
        let mut session = DebugSession::new(env, route);

        assert!(session.peek(&pool).is_some());
        let mut events = 0;
        while let Some(event) = session.step() {
            assert_eq!(event.index, events);
            assert!(!event.assignment.is_empty());
            events += 1;
        }
        assert_eq!(events, total);
        assert!(session.finished());
        assert!(session.watch().contains(&t7));
        assert!(session.step().is_none());
        assert!(session.peek(&pool).is_none());
    }

    #[test]
    fn breakpoints_fire_on_their_tgd() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let route = compute_one_route(env, &[t7]).unwrap();
        let mut session = DebugSession::new(env, route);
        assert!(session.add_breakpoint_by_name("s5"));
        assert!(!session.add_breakpoint_by_name("nonexistent"));

        let event = session.run_to_breakpoint().expect("σ5 occurs in the route");
        assert_eq!(m.tgd(event.step.tgd).name(), "s5");
        // Watch window already contains σ5's premises T4 and T1 and now T5.
        let t5_rel = m.target().rel_id("T5").unwrap();
        let t5 = j.rel_rows(t5_rel).next().unwrap();
        assert!(session.watch().contains(&t5));

        // Removing the breakpoint lets the rest run through.
        let tgd = event.step.tgd;
        session.remove_breakpoint(tgd);
        assert!(session.run_to_breakpoint().is_none());
        assert!(session.finished());
    }

    #[test]
    fn new_tuples_are_reported_once() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let route = compute_one_route(env, &[t7]).unwrap();
        let mut session = DebugSession::new(env, route);
        let mut seen = std::collections::HashSet::new();
        while let Some(event) = session.step() {
            for t in &event.new_tuples {
                assert!(seen.insert(*t), "tuple reported as new twice");
            }
        }
    }
}
