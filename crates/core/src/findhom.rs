//! `findHom` (paper Figure 4): lazily enumerate assignments `h = v1 ∪ v2 ∪ v3`
//! for a tuple `t` and a tgd `σ = ∀x φ(x) → ∃y ψ(x, y)` such that
//! `h(φ) ⊆ K`, `h(ψ) ⊆ J`, and `t ∈ h(ψ)` — where `K = I` for s-t tgds and
//! `K = J` for target tgds.
//!
//! The enumeration follows the paper's three stages:
//! 1. **v1** — match `t` against an RHS atom over `t`'s relation (“anchor”);
//!    on variable-assignment conflict, try the next candidate atom.
//! 2. **v2** — complete the LHS as a selection query over `K` with `v1`'s
//!    bindings pushed down (we push it into the indexed CQ evaluator, as the
//!    paper pushes it into DB2 — §3.3).
//! 3. **v3** — complete the RHS as a selection query over `J`.
//!
//! Assignments are fetched **one at a time** (paper §3.3), which is what
//! makes `ComputeOneRoute` fast: it stops at the first assignment.
//!
//! The same machinery anchored on the **LHS** supports routes for selected
//! *source* tuples (§3.4): see [`AnchorSide::Lhs`].

use routes_mapping::{Tgd, TgdId};
use routes_model::{Fact, Instance, Value};
use routes_query::{
    batch_matches_with_plan, plan, plan_with_bound, unify_atom, BatchOptions, BindingBatch,
    Bindings, MatchIter,
};

use crate::env::RouteEnv;

/// Which side of the tgd the probed tuple is matched against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorSide {
    /// The probed tuple is a target tuple that must appear in `h(ψ)` —
    /// the standard `findHom` of Figure 4.
    Rhs,
    /// The probed tuple must appear in `h(φ)` — used to explain how a
    /// selected source (or intermediate target) tuple flows forward.
    Lhs,
}

/// Lazy iterator over the total assignments of one tgd that witness one
/// tuple. See the module docs.
pub struct FindHom<'a> {
    tgd: &'a Tgd,
    lhs_instance: &'a Instance,
    target: &'a Instance,
    tuple_values: Vec<Value>,
    /// Indices of candidate anchor atoms (on the anchor side) over the
    /// probed tuple's relation.
    anchors: Vec<usize>,
    anchor_side: AnchorSide,
    anchor_pos: usize,
    stage_a: Option<MatchIter<'a>>,
    stage_b: Option<MatchIter<'a>>,
}

impl<'a> FindHom<'a> {
    /// Start the enumeration for `probe` against the tgd `id`.
    ///
    /// With [`AnchorSide::Rhs`], `probe` must be a target fact; with
    /// [`AnchorSide::Lhs`], it must be a fact of the instance the tgd's LHS
    /// ranges over (source for s-t tgds, target for target tgds).
    pub fn new(env: RouteEnv<'a>, id: TgdId, side: AnchorSide, probe: Fact) -> Self {
        let tgd = env.mapping.tgd(id);
        let lhs_instance = env.lhs_instance(id);
        let (anchor_atoms, probe_instance): (&[routes_model::Atom], &Instance) = match side {
            AnchorSide::Rhs => {
                debug_assert_eq!(probe.side, routes_model::Side::Target);
                (tgd.rhs(), env.target)
            }
            AnchorSide::Lhs => {
                debug_assert_eq!(probe.side, env.lhs_side(id));
                (tgd.lhs(), lhs_instance)
            }
        };
        let tuple_values = probe_instance.tuple(probe.id);
        let anchors = anchor_atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.rel == probe.id.rel)
            .map(|(i, _)| i)
            .collect();
        FindHom {
            tgd,
            lhs_instance,
            target: env.target,
            tuple_values,
            anchors,
            anchor_side: side,
            anchor_pos: 0,
            stage_a: None,
            stage_b: None,
        }
    }

    /// Fetch the next total assignment, or `None` when exhausted.
    ///
    /// Note: the *same* assignment may be produced once per anchor atom it
    /// matches; callers that need set semantics (forest construction)
    /// deduplicate on the `(σ, h)` pair.
    pub fn next_hom(&mut self) -> Option<Box<[Value]>> {
        loop {
            // Stage B (v3): complete the RHS over J.
            if let Some(b_iter) = &mut self.stage_b {
                if let Some(b) = b_iter.next_match() {
                    return Some(
                        b.to_total()
                            .expect("all tgd variables occur in LHS ∪ RHS")
                            .into_boxed_slice(),
                    );
                }
                self.stage_b = None;
            }
            // Stage A (v2): complete the LHS over K.
            if let Some(a_iter) = &mut self.stage_a {
                if let Some(b) = a_iter.next_match() {
                    self.stage_b = Some(MatchIter::new(self.target, self.tgd.rhs(), b.clone()));
                    continue;
                }
                self.stage_a = None;
            }
            // Stage 1 (v1): next anchor atom.
            let anchor_atoms = match self.anchor_side {
                AnchorSide::Rhs => self.tgd.rhs(),
                AnchorSide::Lhs => self.tgd.lhs(),
            };
            let anchor_idx = loop {
                let idx = *self.anchors.get(self.anchor_pos)?;
                self.anchor_pos += 1;
                let mut v1 = Bindings::new(self.tgd.var_count());
                if unify_atom(&anchor_atoms[idx], &self.tuple_values, &mut v1) {
                    self.stage_a = Some(MatchIter::new(self.lhs_instance, self.tgd.lhs(), v1));
                    break idx;
                }
            };
            let _ = anchor_idx;
        }
    }

    /// Drain the **entire** remaining enumeration through the vectorized
    /// batch executor: per anchor, the LHS completion runs as one batch
    /// pipeline and its result batch seeds the RHS completion directly (all
    /// LHS matches of one anchor share a bound-variable set, so the RHS is
    /// planned once).
    ///
    /// The output sequence is exactly what repeated [`FindHom::next_hom`]
    /// calls would yield — the lazy nesting "for each LHS match, drain the
    /// RHS" is the input-major order the batch pipeline preserves — including
    /// the per-anchor duplicates the lazy path produces. Full-enumeration
    /// callers (`computeAllRoutes` forest expansion) use this; route-by-route
    /// callers keep [`FindHom::next_hom`], whose cost is proportional to how
    /// far the search advances.
    ///
    /// Must be called on a fresh iterator (before any `next_hom`).
    pub fn collect_all(mut self) -> Vec<Box<[Value]>> {
        assert!(
            self.anchor_pos == 0 && self.stage_a.is_none() && self.stage_b.is_none(),
            "collect_all drains a fresh FindHom"
        );
        let anchor_atoms = match self.anchor_side {
            AnchorSide::Rhs => self.tgd.rhs(),
            AnchorSide::Lhs => self.tgd.lhs(),
        };
        let opts = BatchOptions::default();
        let mut out = Vec::new();
        for &idx in &self.anchors {
            self.anchor_pos += 1;
            let mut v1 = Bindings::new(self.tgd.var_count());
            if !unify_atom(&anchor_atoms[idx], &self.tuple_values, &mut v1) {
                continue;
            }
            // Stage A (v2): all LHS completions of v1, batched. Planned the
            // same way `MatchIter::new` would plan for v1.
            let lhs_order = plan(self.lhs_instance, self.tgd.lhs(), &v1);
            let seeds = BindingBatch::seed(&v1);
            let lhs_batch = batch_matches_with_plan(
                self.lhs_instance,
                self.tgd.lhs(),
                &lhs_order,
                &seeds,
                &opts,
            );
            if lhs_batch.is_empty() {
                continue;
            }
            // Stage B (v3): the RHS completion of every LHS match, batched.
            // Each LHS match binds the same variable set, so one plan covers
            // the whole batch — identical to the per-match plan the lazy
            // path computes.
            let rhs_order =
                plan_with_bound(self.target, self.tgd.rhs(), lhs_batch.bound_vars().to_vec());
            let final_batch =
                batch_matches_with_plan(self.target, self.tgd.rhs(), &rhs_order, &lhs_batch, &opts);
            for row in 0..final_batch.len() {
                out.push(
                    final_batch
                        .total(row)
                        .expect("all tgd variables occur in LHS ∪ RHS")
                        .into_boxed_slice(),
                );
            }
        }
        out
    }

    /// Collect all remaining assignments, deduplicated (first occurrence
    /// wins). A fresh iterator drains through the batched
    /// [`FindHom::collect_all`]; a partially advanced one finishes lazily.
    pub fn collect_dedup(mut self) -> Vec<Box<[Value]>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let drain: Vec<Box<[Value]>> =
            if self.anchor_pos == 0 && self.stage_a.is_none() && self.stage_b.is_none() {
                self.collect_all()
            } else {
                let mut rest = Vec::new();
                while let Some(h) = self.next_hom() {
                    rest.push(h);
                }
                rest
            };
        for h in drain {
            if seen.insert(h.clone()) {
                out.push(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::{parse_st_tgd, parse_target_tgd, SchemaMapping};
    use routes_model::{Schema, TupleId, ValuePool};

    /// The paper's Figure 1/2 fragment: m1 over Cards.
    fn fargo() -> (SchemaMapping, Instance, Instance, ValuePool, TgdId) {
        let mut s = Schema::new();
        s.rel(
            "Cards",
            &[
                "cardNo",
                "limit",
                "ssn",
                "name",
                "maidenName",
                "salary",
                "location",
            ],
        );
        let mut t = Schema::new();
        t.rel("Accounts", &["accNo", "limit", "accHolder"]);
        t.rel(
            "Clients",
            &["ssn", "name", "maidenName", "income", "address"],
        );
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        let m1 = m
            .add_st_tgd(
                parse_st_tgd(
                    &s,
                    &t,
                    &mut pool,
                    "m1: Cards(cn,l,s,n,mn,sal,loc) -> exists A: Accounts(cn,l,s) & Clients(s,mn,mn,sal,A)",
                )
                .unwrap(),
            )
            .unwrap();
        let mut i = Instance::new(&s);
        let cards = s.rel_id("Cards").unwrap();
        let (jlong, smith, seattle) = (pool.str("J. Long"), pool.str("Smith"), pool.str("Seattle"));
        i.insert_ok(
            cards,
            &[
                Value::Int(6689),
                Value::Int(15),
                Value::Int(434),
                jlong,
                smith,
                Value::Int(50),
                seattle,
            ],
        );
        let mut j = Instance::new(&t);
        let accounts = t.rel_id("Accounts").unwrap();
        let clients = t.rel_id("Clients").unwrap();
        let a1 = pool.named_null("A1");
        j.insert_ok(
            accounts,
            &[Value::Int(6689), Value::Int(15), Value::Int(434)],
        );
        j.insert_ok(
            clients,
            &[Value::Int(434), smith, smith, Value::Int(50), a1],
        );
        (m, i, j, pool, m1)
    }

    #[test]
    fn finds_the_paper_example_assignment() {
        let (m, i, j, pool, m1) = fargo();
        let env = RouteEnv::new(&m, &i, &j);
        let accounts = m.target().rel_id("Accounts").unwrap();
        let t1 = TupleId {
            rel: accounts,
            row: 0,
        };
        let homs = FindHom::new(env, m1, AnchorSide::Rhs, Fact::target(t1)).collect_dedup();
        assert_eq!(homs.len(), 1);
        let tgd = m.tgd(m1);
        let h = &homs[0];
        // cn=6689, l=15, s=434, n='J. Long', mn='Smith', sal=50, loc='Seattle', A=A1.
        let by_name = |name: &str| {
            (0..tgd.var_count() as u32)
                .find(|&v| tgd.var_name(routes_model::Var(v)) == name)
                .map(|v| h[v as usize])
                .unwrap()
        };
        assert_eq!(by_name("cn"), Value::Int(6689));
        assert_eq!(by_name("s"), Value::Int(434));
        assert_eq!(by_name("n"), Value::Str(pool.lookup("J. Long").unwrap()));
        assert!(by_name("A").is_null());
    }

    #[test]
    fn probing_clients_tuple_finds_same_assignment() {
        let (m, i, j, _pool, m1) = fargo();
        let env = RouteEnv::new(&m, &i, &j);
        let clients = m.target().rel_id("Clients").unwrap();
        let t5 = TupleId {
            rel: clients,
            row: 0,
        };
        let homs = FindHom::new(env, m1, AnchorSide::Rhs, Fact::target(t5)).collect_dedup();
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn no_anchor_atoms_means_no_homs() {
        let (m, i, j, _pool, _m1) = fargo();
        // Probe a Clients tuple against a tgd whose RHS only covers
        // Accounts: build such a tgd.
        let mut m2 = m.clone();
        let mut pool2 = ValuePool::new();
        let only_accounts = parse_st_tgd(
            m.source(),
            m.target(),
            &mut pool2,
            "x: Cards(cn,l,s,n,mn,sal,loc) -> Accounts(cn,l,s)",
        )
        .unwrap();
        let xid = m2.add_st_tgd(only_accounts).unwrap();
        let env = RouteEnv::new(&m2, &i, &j);
        let clients = m.target().rel_id("Clients").unwrap();
        let t5 = TupleId {
            rel: clients,
            row: 0,
        };
        let homs = FindHom::new(env, xid, AnchorSide::Rhs, Fact::target(t5)).collect_dedup();
        assert!(homs.is_empty());
    }

    #[test]
    fn lhs_anchor_explains_source_tuple() {
        let (m, i, j, _pool, m1) = fargo();
        let env = RouteEnv::new(&m, &i, &j);
        let cards = m.source().rel_id("Cards").unwrap();
        let s1 = TupleId { rel: cards, row: 0 };
        let homs = FindHom::new(env, m1, AnchorSide::Lhs, Fact::source(s1)).collect_dedup();
        assert_eq!(homs.len(), 1);
    }

    #[test]
    fn multiple_assignments_enumerated_lazily() {
        // σ: S(x) -> exists Y: T(x, Y) with J containing T(1,b) and T(1,c):
        // the paper's example of two homs h1, h2 differing on Y.
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        let sid = m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> exists Y: T(x,Y)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        let mut j = Instance::new(&t);
        let tr = t.rel_id("T").unwrap();
        j.insert_ok(tr, &[Value::Int(1), Value::Int(10)]);
        j.insert_ok(tr, &[Value::Int(1), Value::Int(20)]);
        let env = RouteEnv::new(&m, &i, &j);
        let t0 = TupleId { rel: tr, row: 0 };
        let mut fh = FindHom::new(env, sid, AnchorSide::Rhs, Fact::target(t0));
        // Probing T(1,10): the anchor pins Y=10, so exactly one hom.
        let first = fh.next_hom().unwrap();
        assert_eq!(&*first, &[Value::Int(1), Value::Int(10)]);
        assert!(fh.next_hom().is_none());
        // Target tgd case with a free RHS atom would enumerate more; check
        // via a tgd whose RHS has an unanchored atom.
        let m2 = {
            let mut m2 = SchemaMapping::new(s.clone(), t.clone());
            m2.add_st_tgd(
                parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> exists Y, Z: T(x,Y) & T(x,Z)").unwrap(),
            )
            .unwrap();
            m2
        };
        let env2 = RouteEnv::new(&m2, &i, &j);
        let homs =
            FindHom::new(env2, TgdId::St(0), AnchorSide::Rhs, Fact::target(t0)).collect_dedup();
        // Anchoring T(x,Y) on T(1,10): Z free over {10, 20} → 2 homs;
        // anchoring T(x,Z) on T(1,10): Y free → 2 homs; dedup → 3 distinct
        // (Y=10,Z=10), (Y=10,Z=20), (Y=20,Z=10).
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn batched_collect_all_matches_lazy_enumeration_order() {
        // A tgd with a free RHS atom so the enumeration has real fan-out and
        // per-anchor duplicates (see multiple_assignments_enumerated_lazily).
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(
            parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> exists Y, Z: T(x,Y) & T(x,Z)").unwrap(),
        )
        .unwrap();
        let mut i = Instance::new(&s);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        let mut j = Instance::new(&t);
        let tr = t.rel_id("T").unwrap();
        for b in [10, 20, 30] {
            j.insert_ok(tr, &[Value::Int(1), Value::Int(b)]);
        }
        let env = RouteEnv::new(&m, &i, &j);
        for row in 0..3 {
            let probe = Fact::target(TupleId { rel: tr, row });
            let mut lazy_fh = FindHom::new(env, TgdId::St(0), AnchorSide::Rhs, probe);
            let mut lazy = Vec::new();
            while let Some(h) = lazy_fh.next_hom() {
                lazy.push(h);
            }
            let batched = FindHom::new(env, TgdId::St(0), AnchorSide::Rhs, probe).collect_all();
            assert_eq!(lazy, batched, "row {row}");
            assert!(!lazy.is_empty());
        }
    }

    #[test]
    fn target_tgd_lhs_ranges_over_target() {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        t.rel("U", &["a"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        let tid = m
            .add_target_tgd(parse_target_tgd(&t, &mut pool, "m: T(x) -> U(x)").unwrap())
            .unwrap();
        let i = Instance::new(&s);
        let mut j = Instance::new(&t);
        j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(1)]);
        let u0 = j.insert_ok(t.rel_id("U").unwrap(), &[Value::Int(1)]);
        let env = RouteEnv::new(&m, &i, &j);
        let homs = FindHom::new(env, tid, AnchorSide::Rhs, Fact::target(u0)).collect_dedup();
        assert_eq!(homs.len(), 1);
        assert_eq!(&*homs[0], &[Value::Int(1)]);
    }
}
