//! The route forest: the polynomial-size representation of all routes for a
//! set of selected target tuples (paper §3.1).
//!
//! Every explored target tuple has a single, memoized list of branches; a
//! branch is a pair `(σ, h)` together with its resolved LHS facts (the
//! branch's children) and RHS tuples. Repeated occurrences of a tuple in the
//! conceptual tree all refer to the same node — the paper's back-references
//! ("every other occurrence of t has a link to the first t in F").

use std::collections::{HashMap, HashSet};

use routes_mapping::{TgdId, TgdKind};
use routes_model::{Fact, TupleId, Value};

/// One branch `(σ, h)` under a tuple node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// The tgd of this branch.
    pub tgd: TgdId,
    /// The total assignment.
    pub hom: Box<[Value]>,
    /// `LHS(h(σ))`: the branch's children — source facts for s-t tgds,
    /// target facts for target tgds (deduplicated, in atom order).
    pub lhs_facts: Vec<Fact>,
    /// `RHS(h(σ))`: the target tuples this branch witnesses.
    pub rhs_tuples: Vec<TupleId>,
}

impl Branch {
    /// Whether this branch uses a source-to-target tgd (a leaf branch: its
    /// children are source facts and are never expanded).
    pub fn is_st(&self) -> bool {
        self.tgd.kind() == TgdKind::SourceToTarget
    }

    /// The target-side children of this branch (empty for s-t branches).
    pub fn target_children(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.lhs_facts.iter().filter_map(|f| match f.side {
            routes_model::Side::Target => Some(f.id),
            routes_model::Side::Source => None,
        })
    }
}

/// The route forest for a selection `Js` (paper Figure 3's output).
#[derive(Debug, Clone, Default)]
pub struct RouteForest {
    /// The selected tuples the forest was built for.
    pub roots: Vec<TupleId>,
    /// Memoized branches per explored target tuple.
    pub branches: HashMap<TupleId, Vec<Branch>>,
    /// Exploration order (for deterministic rendering).
    pub order: Vec<TupleId>,
}

impl RouteForest {
    /// Branches under a tuple (empty slice if the tuple was not explored or
    /// has no witnessing assignment at all).
    pub fn branches_of(&self, t: TupleId) -> &[Branch] {
        self.branches.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Number of explored tuple nodes.
    pub fn num_nodes(&self) -> usize {
        self.branches.len()
    }

    /// Total number of branches across all nodes — the forest's size, which
    /// Proposition 3.6 bounds polynomially in `|I| + |J| + |Js|`.
    pub fn num_branches(&self) -> usize {
        self.branches.values().map(Vec::len).sum()
    }

    /// Compute the set of *provable* tuples: those for which at least one
    /// route exists within the forest. A tuple is provable iff it has an s-t
    /// branch, or a target branch all of whose target children are provable.
    ///
    /// (Monotone fixpoint; terminates in at most `num_nodes` passes.)
    pub fn provable_set(&self) -> HashSet<TupleId> {
        let mut provable: HashSet<TupleId> = HashSet::new();
        loop {
            let mut changed = false;
            for (&t, branches) in &self.branches {
                if provable.contains(&t) {
                    continue;
                }
                let ok = branches
                    .iter()
                    .any(|b| b.is_st() || b.target_children().all(|c| provable.contains(&c)));
                if ok {
                    provable.insert(t);
                    changed = true;
                }
            }
            if !changed {
                return provable;
            }
        }
    }

    /// Whether every selected root has at least one route in the forest.
    pub fn all_roots_provable(&self) -> bool {
        let provable = self.provable_set();
        self.roots.iter().all(|r| provable.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{RelId, Side};

    fn tid(rel: u32, row: u32) -> TupleId {
        TupleId {
            rel: RelId(rel),
            row,
        }
    }

    fn branch(tgd: TgdId, children: &[TupleId], rhs: &[TupleId]) -> Branch {
        Branch {
            tgd,
            hom: Box::from([]),
            lhs_facts: children
                .iter()
                .map(|&id| Fact {
                    side: if tgd.kind() == TgdKind::SourceToTarget {
                        Side::Source
                    } else {
                        Side::Target
                    },
                    id,
                })
                .collect(),
            rhs_tuples: rhs.to_vec(),
        }
    }

    #[test]
    fn provable_set_fixpoint() {
        // t0 <- st; t1 <- target(t0); t2 <- target(t3) where t3 unexplored
        // (no branches): t2 not provable.
        let mut forest = RouteForest {
            roots: vec![tid(0, 1), tid(0, 2)],
            ..Default::default()
        };
        forest.branches.insert(
            tid(0, 0),
            vec![branch(TgdId::St(0), &[tid(9, 0)], &[tid(0, 0)])],
        );
        forest.branches.insert(
            tid(0, 1),
            vec![branch(TgdId::Target(0), &[tid(0, 0)], &[tid(0, 1)])],
        );
        forest.branches.insert(
            tid(0, 2),
            vec![branch(TgdId::Target(0), &[tid(0, 3)], &[tid(0, 2)])],
        );
        forest.branches.insert(tid(0, 3), vec![]);
        let provable = forest.provable_set();
        assert!(provable.contains(&tid(0, 0)));
        assert!(provable.contains(&tid(0, 1)));
        assert!(!provable.contains(&tid(0, 2)));
        assert!(!forest.all_roots_provable());
        assert_eq!(forest.num_nodes(), 4);
        assert_eq!(forest.num_branches(), 3);
    }

    #[test]
    fn cyclic_branches_are_not_provable_without_a_base() {
        // t0 <- target(t1), t1 <- target(t0): a cycle with no s-t entry.
        let mut forest = RouteForest::default();
        forest.branches.insert(
            tid(0, 0),
            vec![branch(TgdId::Target(0), &[tid(0, 1)], &[tid(0, 0)])],
        );
        forest.branches.insert(
            tid(0, 1),
            vec![branch(TgdId::Target(0), &[tid(0, 0)], &[tid(0, 1)])],
        );
        assert!(forest.provable_set().is_empty());
    }
}
