//! Routes (paper Definition 3.3) with replay validation.

use std::collections::HashSet;

use routes_mapping::TgdKind;
use routes_model::{Side, TupleId};

use crate::env::RouteEnv;
use crate::error::RouteError;
use crate::step::SatisfactionStep;

/// A route: a finite, non-empty sequence of satisfaction steps
/// `(I, ∅) --m1,h1--> (I, J1) ... --mn,hn--> (I, Jn)` with `Ji ⊆ J` and the
/// selected tuples contained in `Jn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    steps: Vec<SatisfactionStep>,
}

impl Route {
    /// Build a route from steps (validity is checked separately via
    /// [`Route::validate`]).
    pub fn new(steps: Vec<SatisfactionStep>) -> Self {
        Route { steps }
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[SatisfactionStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the route has no steps (never valid as a route).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replay the route against `(I, J)` and verify Definition 3.3:
    ///
    /// 1. every step's LHS image lies in the right instance — and, for
    ///    target tgds, only uses target tuples *already produced*;
    /// 2. every step's RHS image lies in the solution `J`;
    /// 3. the selected tuples are all produced by the end.
    ///
    /// Returns the produced tuple set `Jn` on success.
    pub fn validate(
        &self,
        env: &RouteEnv<'_>,
        selected: &[TupleId],
    ) -> Result<HashSet<TupleId>, RouteError> {
        if self.steps.is_empty() {
            return Err(RouteError::Empty);
        }
        let mut produced: HashSet<TupleId> = HashSet::new();
        for (idx, step) in self.steps.iter().enumerate() {
            let lhs = step
                .lhs_facts(env)
                .ok_or(RouteError::LhsNotInInstance { step: idx })?;
            if step.tgd.kind() == TgdKind::Target {
                for fact in &lhs {
                    debug_assert_eq!(fact.side, Side::Target);
                    if !produced.contains(&fact.id) {
                        return Err(RouteError::LhsTupleNotYetProduced {
                            step: idx,
                            tuple: fact.id,
                        });
                    }
                }
            }
            let rhs = step
                .rhs_tuples(env)
                .ok_or(RouteError::RhsNotInSolution { step: idx })?;
            produced.extend(rhs);
        }
        let missing: Vec<TupleId> = selected
            .iter()
            .copied()
            .filter(|t| !produced.contains(t))
            .collect();
        if !missing.is_empty() {
            return Err(RouteError::SelectionNotProduced { missing });
        }
        Ok(produced)
    }

    /// The set of tuples produced by the route, assuming it is valid.
    /// (Use [`Route::validate`] when validity is in question.)
    pub fn produced_tuples(&self, env: &RouteEnv<'_>) -> HashSet<TupleId> {
        let mut produced = HashSet::new();
        for step in &self.steps {
            if let Some(rhs) = step.rhs_tuples(env) {
                produced.extend(rhs);
            }
        }
        produced
    }

    /// The multiset of step signatures as a set (two routes with the same
    /// stratified interpretation have the same step set — paper §3.1).
    pub fn step_set(&self) -> HashSet<&SatisfactionStep> {
        self.steps.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::{parse_st_tgd, parse_target_tgd, SchemaMapping};
    use routes_model::{Instance, Schema, Value, ValuePool};

    /// S(x) -> T(x);  T(x) -> U(x). I = {S(1)}, J = {T(1), U(1)}.
    fn setup() -> (SchemaMapping, Instance, Instance, ValuePool) {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        t.rel("U", &["a"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x) -> T(x)").unwrap())
            .unwrap();
        m.add_target_tgd(parse_target_tgd(&t, &mut pool, "m2: T(x) -> U(x)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        let mut j = Instance::new(&t);
        j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(1)]);
        j.insert_ok(t.rel_id("U").unwrap(), &[Value::Int(1)]);
        (m, i, j, pool)
    }

    #[test]
    fn valid_two_step_route() {
        let (m, i, j, _pool) = setup();
        let env = RouteEnv::new(&m, &i, &j);
        let m1 = m.tgd_by_name("m1").unwrap();
        let m2 = m.tgd_by_name("m2").unwrap();
        let u = m.target().rel_id("U").unwrap();
        let u1 = j.find(u, &[Value::Int(1)]).unwrap();
        let route = Route::new(vec![
            SatisfactionStep::new(m1, vec![Value::Int(1)]),
            SatisfactionStep::new(m2, vec![Value::Int(1)]),
        ]);
        let produced = route.validate(&env, &[u1]).unwrap();
        assert_eq!(produced.len(), 2);
    }

    #[test]
    fn target_step_requires_produced_premise() {
        let (m, i, j, _pool) = setup();
        let env = RouteEnv::new(&m, &i, &j);
        let m2 = m.tgd_by_name("m2").unwrap();
        // Using m2 first: its premise T(1) is in J but not yet produced.
        let route = Route::new(vec![SatisfactionStep::new(m2, vec![Value::Int(1)])]);
        let err = route.validate(&env, &[]).unwrap_err();
        assert!(matches!(
            err,
            RouteError::LhsTupleNotYetProduced { step: 0, .. }
        ));
    }

    #[test]
    fn selection_must_be_produced() {
        let (m, i, j, _pool) = setup();
        let env = RouteEnv::new(&m, &i, &j);
        let m1 = m.tgd_by_name("m1").unwrap();
        let u = m.target().rel_id("U").unwrap();
        let u1 = j.find(u, &[Value::Int(1)]).unwrap();
        let route = Route::new(vec![SatisfactionStep::new(m1, vec![Value::Int(1)])]);
        let err = route.validate(&env, &[u1]).unwrap_err();
        assert!(matches!(err, RouteError::SelectionNotProduced { .. }));
    }

    #[test]
    fn empty_route_is_invalid() {
        let (m, i, j, _pool) = setup();
        let env = RouteEnv::new(&m, &i, &j);
        assert_eq!(
            Route::new(vec![]).validate(&env, &[]),
            Err(RouteError::Empty)
        );
    }

    #[test]
    fn bogus_assignment_is_rejected() {
        let (m, i, j, _pool) = setup();
        let env = RouteEnv::new(&m, &i, &j);
        let m1 = m.tgd_by_name("m1").unwrap();
        // x = 2: S(2) not in I.
        let route = Route::new(vec![SatisfactionStep::new(m1, vec![Value::Int(2)])]);
        assert!(matches!(
            route.validate(&env, &[]),
            Err(RouteError::LhsNotInInstance { step: 0 })
        ));
    }
}
