//! Shared unit-test fixtures (compiled only under `cfg(test)`).

use routes_mapping::{parse_st_tgd, parse_target_tgd, SchemaMapping};
use routes_model::{Instance, Schema, ValuePool};

/// The mapping of paper Example 3.5 (σ1..σ8, named `s1`..`s8` here) with
/// `I = {S1(a), S2(a)}` and `J = {T1(a), ..., T7(a)}`.
pub(crate) fn example_3_5() -> (SchemaMapping, Instance, Instance, ValuePool) {
    let mut s = Schema::new();
    for r in ["S1", "S2", "S3"] {
        s.rel(r, &["x"]);
    }
    let mut t = Schema::new();
    for r in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"] {
        t.rel(r, &["x"]);
    }
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    for (name, text) in [("s1", "S1(x) -> T1(x)"), ("s2", "S2(x) -> T2(x)")] {
        let tgd = parse_st_tgd(&s, &t, &mut pool, &format!("{name}: {text}")).unwrap();
        m.add_st_tgd(tgd).unwrap();
    }
    for (name, text) in [
        ("s3", "T2(x) -> T3(x)"),
        ("s4", "T3(x) -> T4(x)"),
        ("s5", "T4(x) & T1(x) -> T5(x)"),
        ("s6", "T4(x) & T6(x) -> T7(x)"),
        ("s7", "T5(x) -> T3(x)"),
        ("s8", "T5(x) -> T6(x)"),
    ] {
        let tgd = parse_target_tgd(&t, &mut pool, &format!("{name}: {text}")).unwrap();
        m.add_target_tgd(tgd).unwrap();
    }
    let a = pool.str("a");
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S1").unwrap(), &[a]);
    i.insert_ok(s.rel_id("S2").unwrap(), &[a]);
    let mut j = Instance::new(&t);
    for r in ["T1", "T2", "T3", "T4", "T5", "T6", "T7"] {
        j.insert_ok(t.rel_id(r).unwrap(), &[a]);
    }
    (m, i, j, pool)
}
