//! `ComputeAllRoutes` (paper Figure 3).
//!
//! For every tuple first encountered during construction, *all* `(σ, h)`
//! branches are computed (via `findHom`) exactly once — the `ACTIVETUPLES`
//! memoization — and target-tgd branches enqueue their LHS tuples for
//! exploration. The result is a [`RouteForest`] whose size is polynomial in
//! `|I| + |J| + |Js|` (Proposition 3.6) and which represents every minimal
//! route up to stratified interpretation (Theorem 3.7).

use std::collections::{HashMap, HashSet};

use routes_mapping::TgdId;
use routes_model::{Fact, TupleId, Value};
use routes_pool::Pool;

use crate::env::RouteEnv;
use crate::findhom::{AnchorSide, FindHom};
use crate::forest::{Branch, RouteForest};

/// All `(σ, h)` branches under the node `t` — steps 2 and 3 of Figure 3 for
/// one tuple, in tgd order then hom-enumeration order. A pure read of `env`,
/// so waves of tuples can be expanded on worker threads
/// ([`compute_all_routes_with_pool`]).
fn expand_tuple(env: RouteEnv<'_>, t: TupleId) -> Vec<Branch> {
    let mut branches: Vec<Branch> = Vec::new();
    let mut seen: HashSet<(TgdId, Box<[Value]>)> = HashSet::new();
    for tgd_id in env.mapping.tgd_ids() {
        // Forest expansion always drains every assignment, so push the whole
        // enumeration through the vectorized batch executor; the sequence is
        // byte-identical to lazy `next_hom` draining, so dedup's
        // first-occurrence order — and hence the forest — is unchanged.
        let fh = FindHom::new(env, tgd_id, AnchorSide::Rhs, Fact::target(t));
        for hom in fh.collect_all() {
            if !seen.insert((tgd_id, hom.clone())) {
                continue;
            }
            let lhs_facts = env
                .lhs_facts(tgd_id, &hom)
                .expect("findHom assignments map the LHS into its instance");
            let rhs_tuples = env
                .rhs_tuples(tgd_id, &hom)
                .expect("findHom assignments map the RHS into the solution");
            // Deduplicate children while preserving atom order; the set
            // carries the O(1) membership test.
            let mut lhs_dedup: Vec<Fact> = Vec::with_capacity(lhs_facts.len());
            let mut lhs_seen: HashSet<Fact> = HashSet::with_capacity(lhs_facts.len());
            for f in lhs_facts {
                if lhs_seen.insert(f) {
                    lhs_dedup.push(f);
                }
            }
            branches.push(Branch {
                tgd: tgd_id,
                hom,
                lhs_facts: lhs_dedup,
                rhs_tuples,
            });
        }
    }
    branches
}

/// Build the route forest for the selected target tuples.
///
/// Works for **any** solution `J`: selected tuples with no witnessing
/// assignment simply get an empty branch list (and
/// [`RouteForest::all_roots_provable`] reports the gap).
pub fn compute_all_routes(env: RouteEnv<'_>, selected: &[TupleId]) -> RouteForest {
    let mut forest = RouteForest {
        roots: selected.to_vec(),
        ..RouteForest::default()
    };
    let mut active: HashSet<TupleId> = HashSet::new();
    // Explicit worklist rather than recursion: route chains can be as long
    // as |J| (e.g. transitive-closure mappings).
    let mut stack: Vec<TupleId> = selected.iter().rev().copied().collect();

    while let Some(t) = stack.pop() {
        if !active.insert(t) {
            continue;
        }
        forest.order.push(t);
        let branches = expand_tuple(env, t);
        // Step 3(b): explore the LHS tuples of target-tgd branches.
        for branch in &branches {
            for child in branch.target_children() {
                stack.push(child);
            }
        }
        forest.branches.insert(t, branches);
    }
    forest
}

/// [`compute_all_routes`] with branch computation fanned out over `workers`.
///
/// The frontier is expanded in waves: every distinct unexplored tuple on the
/// worklist is expanded on a worker thread (a pure read of `env`), then a
/// sequential replay loop — the exact control flow of
/// [`compute_all_routes`] — consumes the cached expansions, owns
/// `ACTIVETUPLES` and `forest.order`, and pushes children, pausing for the
/// next wave when a child discovered mid-replay has no cached expansion yet.
/// The emitted forest (roots, exploration order, and every branch) is
/// therefore identical to the sequential builder's at any worker count, and
/// the two independent traversals cross-check each other in the determinism
/// suite.
pub fn compute_all_routes_with_pool(
    env: RouteEnv<'_>,
    selected: &[TupleId],
    workers: &Pool,
) -> RouteForest {
    let mut forest = RouteForest {
        roots: selected.to_vec(),
        ..RouteForest::default()
    };
    let mut active: HashSet<TupleId> = HashSet::new();
    let mut expanded: HashMap<TupleId, Vec<Branch>> = HashMap::new();
    let mut stack: Vec<TupleId> = selected.iter().rev().copied().collect();

    while !stack.is_empty() {
        // The wave: every distinct tuple on the worklist that is neither
        // explored nor cached. Expansion order within the wave is free — only
        // the replay below decides the output order. Each tuple is expanded
        // at most once across all waves, exactly as in the sequential
        // builder.
        let mut wave: Vec<TupleId> = Vec::new();
        let mut in_wave: HashSet<TupleId> = HashSet::new();
        for &t in stack.iter().rev() {
            if !active.contains(&t) && !expanded.contains_key(&t) && in_wave.insert(t) {
                wave.push(t);
            }
        }
        let results = workers.par_map_items(&wave, 1, |&t| expand_tuple(env, t));
        for (t, branches) in wave.into_iter().zip(results) {
            expanded.insert(t, branches);
        }
        while let Some(t) = stack.pop() {
            if active.contains(&t) {
                continue;
            }
            let Some(branches) = expanded.remove(&t) else {
                // Discovered mid-replay; expand it with the next wave.
                stack.push(t);
                break;
            };
            active.insert(t);
            forest.order.push(t);
            for branch in &branches {
                for child in branch.target_children() {
                    stack.push(child);
                }
            }
            forest.branches.insert(t, branches);
        }
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::example_3_5;
    use routes_chase::{chase, ChaseOptions};
    use routes_mapping::{parse_st_tgd, SchemaMapping};
    use routes_model::Value;
    use routes_model::{Instance, Schema, ValuePool};

    fn t_of(m: &SchemaMapping, j: &Instance, rel: &str) -> TupleId {
        let r = m.target().rel_id(rel).unwrap();
        j.rel_rows(r).next().unwrap()
    }

    #[test]
    fn figure_5_forest_structure() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);

        // Every tuple T1..T7 is explored (Figure 5 reaches them all).
        assert_eq!(forest.num_nodes(), 7);

        // Branch counts per node, per Figure 5:
        // T7: {σ6}; T4: {σ4}; T6: {σ8}; T3: {σ7, σ3}; T5: {σ5}; T2: {σ2}; T1: {σ1}.
        let expect = [
            ("T7", vec!["s6"]),
            ("T4", vec!["s4"]),
            ("T6", vec!["s8"]),
            ("T3", vec!["s3", "s7"]),
            ("T5", vec!["s5"]),
            ("T2", vec!["s2"]),
            ("T1", vec!["s1"]),
        ];
        for (rel, mut tgds) in expect {
            let t = t_of(&m, &j, rel);
            let mut got: Vec<String> = forest
                .branches_of(t)
                .iter()
                .map(|b| m.tgd(b.tgd).name().to_owned())
                .collect();
            got.sort();
            tgds.sort();
            assert_eq!(got, tgds, "branches under {rel}");
        }
        assert!(forest.all_roots_provable());
    }

    #[test]
    fn unjustifiable_tuple_has_empty_branches() {
        // J contains a tuple no tgd can witness.
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> T(x)").unwrap())
            .unwrap();
        let i = Instance::new(&s); // empty source
        let mut j = Instance::new(&t);
        let orphan = j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(5)]);
        let env = RouteEnv::new(&m, &i, &j);
        let forest = compute_all_routes(env, &[orphan]);
        assert!(forest.branches_of(orphan).is_empty());
        assert!(!forest.all_roots_provable());
    }

    #[test]
    fn forest_over_chased_solution_is_fully_provable() {
        let (m, _i, _j, mut pool) = example_3_5();
        // Rebuild I and chase it; every chase tuple must be provable.
        let mut i = Instance::new(m.source());
        let a = pool.str("a");
        let b = pool.str("b");
        i.insert_ok(m.source().rel_id("S1").unwrap(), &[a]);
        i.insert_ok(m.source().rel_id("S2").unwrap(), &[a]);
        i.insert_ok(m.source().rel_id("S2").unwrap(), &[b]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        let env = RouteEnv::new(&m, &i, &r.target);
        let all: Vec<TupleId> = r.target.all_rows().collect();
        let forest = compute_all_routes(env, &all);
        let provable = forest.provable_set();
        for t in all {
            assert!(
                provable.contains(&t),
                "chased tuple {t:?} must have a route"
            );
        }
    }

    #[test]
    fn parallel_forest_is_identical_to_sequential() {
        let (m, _i, _j, mut pool) = example_3_5();
        let mut i = Instance::new(m.source());
        let a = pool.str("a");
        let b = pool.str("b");
        i.insert_ok(m.source().rel_id("S1").unwrap(), &[a]);
        i.insert_ok(m.source().rel_id("S2").unwrap(), &[a]);
        i.insert_ok(m.source().rel_id("S2").unwrap(), &[b]);
        let r = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap();
        let env = RouteEnv::new(&m, &i, &r.target);
        let all: Vec<TupleId> = r.target.all_rows().collect();
        let sequential = compute_all_routes(env, &all);
        for threads in [1usize, 2, 8] {
            let parallel =
                compute_all_routes_with_pool(env, &all, &routes_pool::Pool::new(threads));
            assert_eq!(sequential.roots, parallel.roots, "threads={threads}");
            assert_eq!(sequential.order, parallel.order, "threads={threads}");
            for &t in &sequential.order {
                assert_eq!(
                    sequential.branches_of(t),
                    parallel.branches_of(t),
                    "threads={threads} tuple={t:?}"
                );
            }
        }
    }

    #[test]
    fn dotted_branch_extension_of_figure_5() {
        // Add σ9: S3(x) -> T5(x) and the source tuple S3(a): T5 gains a
        // second branch (the paper's leftmost dotted branch).
        let (mut m, mut i, j, mut pool) = example_3_5();
        let s9 = parse_st_tgd(m.source(), m.target(), &mut pool, "s9: S3(x) -> T5(x)").unwrap();
        m.add_st_tgd(s9).unwrap();
        let a = pool.str("a");
        i.insert_ok(m.source().rel_id("S3").unwrap(), &[a]);
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let t5 = t_of(&m, &j, "T5");
        let mut tgds: Vec<String> = forest
            .branches_of(t5)
            .iter()
            .map(|b| m.tgd(b.tgd).name().to_owned())
            .collect();
        tgds.sort();
        assert_eq!(tgds, ["s5", "s9"]);
    }
}
