//! Graphviz (DOT) export of route forests — the visual the paper's SPIDER
//! demo renders interactively (Figure 5 is exactly such a drawing).
//!
//! Tuple nodes are boxes; `(σ, h)` branches are small circles labeled with
//! the tgd name; source facts are grey boxes. Repeated tuple occurrences
//! share one node, so the drawing shows the forest's factoring of common
//! steps.

use std::collections::HashMap;
use std::fmt::Write as _;

use routes_model::{tuple_to_string, Fact, Side, ValuePool};

use crate::env::RouteEnv;
use crate::forest::RouteForest;
use crate::route::Route;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a route forest as a DOT digraph.
pub fn forest_to_dot(pool: &ValuePool, env: &RouteEnv<'_>, forest: &RouteForest) -> String {
    let mut out = String::from("digraph route_forest {\n  rankdir=BT;\n  node [fontsize=10];\n");
    let mut tuple_nodes: HashMap<Fact, String> = HashMap::new();
    let mut next_id = 0usize;

    let mut node_for = |fact: Fact, out: &mut String, pool: &ValuePool, env: &RouteEnv<'_>| {
        if let Some(id) = tuple_nodes.get(&fact) {
            return id.clone();
        }
        let id = format!("n{next_id}");
        next_id += 1;
        let (label, style) = match fact.side {
            Side::Target => (
                tuple_to_string(pool, env.mapping.target(), env.target, fact.id),
                "shape=box",
            ),
            Side::Source => (
                tuple_to_string(pool, env.mapping.source(), env.source, fact.id),
                "shape=box, style=filled, fillcolor=lightgrey",
            ),
        };
        let _ = writeln!(out, "  {id} [label=\"{}\", {style}];", escape(&label));
        tuple_nodes.insert(fact, id.clone());
        id
    };

    // Roots first so they render prominently.
    for &root in &forest.roots {
        let id = node_for(Fact::target(root), &mut out, pool, env);
        let _ = writeln!(out, "  {id} [penwidth=2];");
    }

    let mut branch_id = 0usize;
    for &t in &forest.order {
        let tuple_node = node_for(Fact::target(t), &mut out, pool, env);
        for branch in forest.branches_of(t) {
            let bid = format!("b{branch_id}");
            branch_id += 1;
            let tgd = env.mapping.tgd(branch.tgd);
            let _ = writeln!(
                out,
                "  {bid} [label=\"{}\", shape=circle, fontsize=9];",
                escape(tgd.name())
            );
            let _ = writeln!(out, "  {bid} -> {tuple_node};");
            for &child in &branch.lhs_facts {
                let child_node = node_for(child, &mut out, pool, env);
                let _ = writeln!(out, "  {child_node} -> {bid};");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Render one route as a DOT digraph: steps as numbered circles connected
/// premise → step → conclusion.
pub fn route_to_dot(pool: &ValuePool, env: &RouteEnv<'_>, route: &Route) -> String {
    let mut out = String::from("digraph route {\n  rankdir=LR;\n  node [fontsize=10];\n");
    let mut tuple_nodes: HashMap<Fact, String> = HashMap::new();
    let mut next_id = 0usize;
    let mut node_for = |fact: Fact, out: &mut String| {
        if let Some(id) = tuple_nodes.get(&fact) {
            return id.clone();
        }
        let id = format!("n{next_id}");
        next_id += 1;
        let (label, style) = match fact.side {
            Side::Target => (
                tuple_to_string(pool, env.mapping.target(), env.target, fact.id),
                "shape=box",
            ),
            Side::Source => (
                tuple_to_string(pool, env.mapping.source(), env.source, fact.id),
                "shape=box, style=filled, fillcolor=lightgrey",
            ),
        };
        let _ = writeln!(out, "  {id} [label=\"{}\", {style}];", escape(&label));
        tuple_nodes.insert(fact, id.clone());
        id
    };

    for (k, step) in route.steps().iter().enumerate() {
        let sid = format!("s{k}");
        let tgd = env.mapping.tgd(step.tgd);
        let _ = writeln!(
            out,
            "  {sid} [label=\"{}. {}\", shape=circle, fontsize=9];",
            k + 1,
            escape(tgd.name())
        );
        if let Some(lhs) = step.lhs_facts(env) {
            for fact in lhs {
                let fid = node_for(fact, &mut out);
                let _ = writeln!(out, "  {fid} -> {sid};");
            }
        }
        if let Some(rhs) = step.rhs_tuples(env) {
            for t in rhs {
                let fid = node_for(Fact::target(t), &mut out);
                let _ = writeln!(out, "  {sid} -> {fid};");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::one_route::compute_one_route;
    use crate::testkit::example_3_5;
    use routes_model::TupleId;

    #[test]
    fn forest_dot_is_well_formed() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = TupleId {
            rel: t7_rel,
            row: 0,
        };
        let forest = compute_all_routes(env, &[t7]);
        let dot = forest_to_dot(&pool, &env, &forest);
        assert!(dot.starts_with("digraph route_forest {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("T7(a)"));
        assert!(dot.contains("lightgrey")); // source facts present
                                            // Each explored tuple appears exactly once as a node label.
        assert_eq!(dot.matches("label=\"T4(a)\"").count(), 1);
        // Branch circles for σ3 and σ7 under T3.
        assert!(dot.contains("label=\"s3\""));
        assert!(dot.contains("label=\"s7\""));
    }

    #[test]
    fn route_dot_is_well_formed() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = TupleId {
            rel: t7_rel,
            row: 0,
        };
        let route = compute_one_route(env, &[t7]).unwrap();
        let dot = route_to_dot(&pool, &env, &route);
        assert!(dot.starts_with("digraph route {"));
        assert!(dot.contains("1. s"));
        assert!(dot.contains("-> s0"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
