//! **Routes** for debugging schema mappings — the primary contribution of
//! *Debugging Schema Mappings with Routes* (Chiticariu & Tan, VLDB 2006),
//! implemented in full:
//!
//! * [`SatisfactionStep`] / [`Route`] — Definitions 3.1 and 3.3, with replay
//!   validation against a concrete `(I, J)` pair.
//! * [`FindHom`] — the lazy assignment enumerator of paper Figure 4
//!   (`v1 ∪ v2 ∪ v3`, fetched one at a time).
//! * [`compute_all_routes`] — paper Figure 3: builds a [`RouteForest`], the
//!   polynomial-size representation that factors common steps and contains
//!   every *minimal* route up to stratified interpretation (Theorem 3.7).
//! * [`enumerate_routes`] — `NaivePrint`, paper Figure 6, with cycle
//!   avoidance via the `ANCESTORS` stack and a result cap so exponentially
//!   many routes are never materialized unrequested.
//! * [`compute_one_route`] — paper Figure 7, with the `Infer` propagation of
//!   Figure 8 and the §3.3 optimization of proving all RHS siblings;
//!   complete (Theorem 3.10). [`alternative_routes`] produces further
//!   distinct routes on demand (§3.4).
//! * [`strat`] — tuple ranks and the *stratified interpretation* of a route.
//! * [`minimize_route`] — redundant-step elimination down to a minimal route.
//! * [`source_routes`] — forward routes for selected *source* tuples (§3.4).
//! * [`debug`] — a [`DebugSession`] with tgd breakpoints, single-stepping,
//!   and a watch window over the growing target instance (§3.4).
//!
//! All algorithms work for **any** solution `J` — not only chase- or
//! Clio-produced ones — exactly as the paper requires; tuples of `J` with no
//! route are detected and reported.

pub mod all_routes;
pub mod count;
pub mod debug;
pub mod display;
pub mod dot;
pub mod env;
pub mod error;
pub mod findhom;
pub mod forest;
pub mod minimal;
pub mod one_route;
pub mod print;
pub mod route;
pub mod source_routes;
pub mod step;
pub mod strat;
#[cfg(test)]
pub(crate) mod testkit;
pub mod trace;
pub mod view;

pub use all_routes::{compute_all_routes, compute_all_routes_with_pool};
pub use count::count_routes;
pub use debug::{DebugSession, StepEvent};
pub use display::{route_to_string, step_to_string};
pub use dot::{forest_to_dot, route_to_dot};
pub use env::RouteEnv;
pub use error::{OneRouteError, RouteError};
pub use findhom::{AnchorSide, FindHom};
pub use forest::{Branch, RouteForest};
pub use minimal::{is_minimal, minimize_route};
pub use one_route::{
    alternative_routes, compute_one_route, compute_one_route_traced, compute_one_route_with,
    OneRouteOptions,
};
pub use print::enumerate_routes;
pub use route::Route;
pub use source_routes::{compute_source_routes, ForwardBranch, ForwardForest};
pub use step::SatisfactionStep;
pub use strat::{route_rank, stratify, StratifiedRoute};
pub use trace::{Trace, TraceEvent};
pub use view::{FactView, ForestNodeView, ForestView, RouteView, StepView, TupleRef};
