//! `NaivePrint` (paper Figure 6): enumerating routes from a route forest.
//!
//! The number of routes can be exponential in the forest size, so the
//! enumerator is capped: it never assembles more than the requested number
//! of routes at any recursion level. Cycle avoidance uses the paper's
//! `ANCESTORS` stack: a target branch is skipped if any of its LHS tuples is
//! currently being expanded.

use routes_model::TupleId;

use crate::env::RouteEnv;
use crate::forest::RouteForest;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// Enumerate up to `limit` routes for `selected` from `forest`.
///
/// Routes are returned in forest order; each is a valid route for
/// `selected` (its steps replay in order). Tuples with no route yield an
/// empty result.
pub fn enumerate_routes(
    env: RouteEnv<'_>,
    forest: &RouteForest,
    selected: &[TupleId],
    limit: usize,
) -> Vec<Route> {
    let _ = env; // kept for signature symmetry with the other algorithms
    if limit == 0 {
        return Vec::new();
    }
    let mut ancestors: Vec<TupleId> = Vec::new();
    let mut roots: Vec<TupleId> = Vec::new();
    for &t in selected {
        if !roots.contains(&t) {
            roots.push(t);
        }
    }
    routes_for_set(forest, &roots, &mut ancestors, limit)
        .into_iter()
        .map(Route::new)
        .collect()
}

/// Count routes, stopping at `cap` (exact when the result is `< cap`).
pub fn count_routes_up_to(
    env: RouteEnv<'_>,
    forest: &RouteForest,
    selected: &[TupleId],
    cap: usize,
) -> usize {
    enumerate_routes(env, forest, selected, cap).len()
}

/// Routes for a *set* of tuples: the cartesian combination (by
/// concatenation) of one route per tuple — the final step of Figure 6.
fn routes_for_set(
    forest: &RouteForest,
    tuples: &[TupleId],
    ancestors: &mut Vec<TupleId>,
    cap: usize,
) -> Vec<Vec<SatisfactionStep>> {
    let mut acc: Vec<Vec<SatisfactionStep>> = vec![Vec::new()];
    for &t in tuples {
        let sub = routes_for_tuple(forest, t, ancestors, cap);
        if sub.is_empty() {
            return Vec::new();
        }
        let mut next: Vec<Vec<SatisfactionStep>> = Vec::new();
        'outer: for prefix in &acc {
            for continuation in &sub {
                let mut combined = prefix.clone();
                combined.extend(continuation.iter().cloned());
                next.push(combined);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        acc = next;
    }
    // The top-level caller may pass an empty tuple set; an empty step
    // sequence is not a route, so filter it out.
    acc.retain(|r| !r.is_empty());
    acc
}

/// All (≤ cap) routes for one tuple: steps 2–6 of Figure 6.
fn routes_for_tuple(
    forest: &RouteForest,
    t: TupleId,
    ancestors: &mut Vec<TupleId>,
    cap: usize,
) -> Vec<Vec<SatisfactionStep>> {
    let mut out: Vec<Vec<SatisfactionStep>> = Vec::new();
    ancestors.push(t);
    for branch in forest.branches_of(t) {
        if out.len() >= cap {
            break;
        }
        if branch.is_st() {
            // L1: an s-t branch is a one-step route.
            out.push(vec![SatisfactionStep::new(branch.tgd, branch.hom.clone())]);
            continue;
        }
        // L2: skip branches that loop back into an ancestor.
        let children: Vec<TupleId> = branch.target_children().collect();
        if children.iter().any(|c| ancestors.contains(c)) {
            continue;
        }
        // L3: recurse on the LHS set, then append (σ, h).
        let sub = routes_for_set(forest, &children, ancestors, cap - out.len());
        for mut steps in sub {
            steps.push(SatisfactionStep::new(branch.tgd, branch.hom.clone()));
            out.push(steps);
            if out.len() >= cap {
                break;
            }
        }
    }
    ancestors.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::testkit::example_3_5;
    use routes_mapping::SchemaMapping;
    use routes_model::Instance;

    fn t_of(m: &SchemaMapping, j: &Instance, rel: &str) -> TupleId {
        let r = m.target().rel_id(rel).unwrap();
        j.rel_rows(r).next().unwrap()
    }

    #[test]
    fn naive_print_reproduces_route_r3_shape() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let routes = enumerate_routes(env, &forest, &[t7], 100);
        // Exactly one route (there is a single branch everywhere except T3,
        // whose σ7 alternative loops through T5 and is pruned by ANCESTORS
        // on the T5 side only when cyclic — here σ7 leads to T5 which leads
        // back through T4/T1: it is *not* cyclic for T6's subtree but is for
        // T5's own (σ7 under T3 under σ5 under T5)).
        assert!(!routes.is_empty());
        for r in &routes {
            r.validate(&env, &[t7])
                .expect("NaivePrint routes are valid");
        }
        // With deterministic branch order the unique printed route is the
        // paper's R3: σ2 σ3 σ4 σ2 σ3 σ4 σ1 σ5 σ8 σ6 (T4's sub-route, then
        // T6's sub-route which re-derives T4, then the final σ6 step).
        assert_eq!(routes.len(), 1);
        let names: Vec<&str> = routes[0]
            .steps()
            .iter()
            .map(|s| m.tgd(s.tgd).name())
            .collect();
        assert_eq!(
            names,
            ["s2", "s3", "s4", "s2", "s3", "s4", "s1", "s5", "s8", "s6"]
        );
    }

    #[test]
    fn enumeration_respects_the_cap() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let all = enumerate_routes(env, &forest, &[t7], 1000);
        let capped = enumerate_routes(env, &forest, &[t7], 1);
        assert_eq!(capped.len(), 1.min(all.len()));
        assert!(enumerate_routes(env, &forest, &[t7], 0).is_empty());
    }

    #[test]
    fn multi_tuple_selection_concatenates() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t1 = t_of(&m, &j, "T1");
        let t2 = t_of(&m, &j, "T2");
        let forest = compute_all_routes(env, &[t1, t2]);
        let routes = enumerate_routes(env, &forest, &[t1, t2], 10);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].len(), 2);
        routes[0].validate(&env, &[t1, t2]).unwrap();
    }

    #[test]
    fn no_route_yields_empty_enumeration() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        // T8 exists in the schema but J has no T8 tuple... instead select a
        // tuple and empty its branches by selecting something unexplored:
        // build a forest for T1 only, then ask for routes of T7 (absent
        // from the forest => no branches => no routes).
        let t1 = t_of(&m, &j, "T1");
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t1]);
        assert!(enumerate_routes(env, &forest, &[t7], 5).is_empty());
        assert_eq!(count_routes_up_to(env, &forest, &[t1], 10), 1);
    }

    #[test]
    fn alternative_branch_multiplies_routes() {
        // With σ9: S3(x) -> T5(x) and S3(a), T7 gains a second route (R2 of
        // the paper).
        let (mut m, mut i, j, mut pool) = example_3_5();
        let s9 =
            routes_mapping::parse_st_tgd(m.source(), m.target(), &mut pool, "s9: S3(x) -> T5(x)")
                .unwrap();
        m.add_st_tgd(s9).unwrap();
        let a = pool.str("a");
        i.insert_ok(m.source().rel_id("S3").unwrap(), &[a]);
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let routes = enumerate_routes(env, &forest, &[t7], 100);
        assert!(
            routes.len() >= 2,
            "expected R1-like and R2-like routes, got {}",
            routes.len()
        );
        for r in &routes {
            r.validate(&env, &[t7]).unwrap();
        }
        // At least one route bypasses T1 entirely (the paper's R2).
        let s1_free = routes
            .iter()
            .any(|r| r.steps().iter().all(|s| m.tgd(s.tgd).name() != "s1"));
        assert!(s1_free, "some route should bypass σ1 via σ9");
    }
}
