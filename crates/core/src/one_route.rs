//! `ComputeOneRoute` (paper Figure 7) with the `Infer` propagation procedure
//! (paper Figure 8).
//!
//! The algorithm searches for **one** successful branch per tuple, trying
//! s-t tgds before target tgds, committing to the first `findHom` assignment
//! that pans out. Branches whose premises are not yet proven are parked in
//! the `UNPROVEN` set; when `Infer` later proves all premises of a parked
//! triple, its step is appended and the conclusion propagates. The
//! `ACTIVETUPLES` set guarantees each tuple's branches are explored at most
//! once, which gives the polynomial bound (Proposition 3.9), and `Infer` is
//! what makes the algorithm complete despite that restriction
//! (Theorem 3.10 — see the paper's discussion of why dropping either breaks
//! the algorithm).

use std::collections::{HashMap, HashSet};

use routes_mapping::{TgdId, TgdKind};
use routes_model::{Fact, TupleId, Value};

use crate::env::RouteEnv;
use crate::error::OneRouteError;
use crate::findhom::{AnchorSide, FindHom};
use crate::route::Route;
use crate::step::SatisfactionStep;
use crate::trace::{Trace, TraceEvent};

/// Tuning knobs for `ComputeOneRoute`.
#[derive(Debug, Clone)]
pub struct OneRouteOptions {
    /// §3.3 optimization: when a step for `t` succeeds, mark *all* tuples of
    /// `RHS(h(σ))` proven, not only `t`, avoiding redundant `findHom` calls
    /// for siblings. Default `true`.
    pub prove_rhs_siblings: bool,
    /// Literal paper behaviour for `Infer`: append a parked triple's step
    /// even when its subject tuple was already proven through another
    /// branch (the step is redundant but the sequence is still a route).
    /// Default `false` — stale triples are dropped instead.
    pub append_stale_triples: bool,
    /// Fetch **all** `findHom` assignments for each `(t, σ)` pair up front
    /// instead of lazily one at a time. This mirrors the paper's XML
    /// implementation (§3.3: the Saxon engine's results "are fetched at
    /// once, since the result ... is stored in memory") and is what the
    /// nested-scenario benchmarks use; the relational path stays lazy.
    pub eager_findhom: bool,
    /// Steps `(σ, h)` that must not be used. Employed by
    /// [`alternative_routes`] to force different witnesses.
    pub banned: HashSet<(TgdId, Box<[Value]>)>,
}

impl Default for OneRouteOptions {
    fn default() -> Self {
        OneRouteOptions {
            prove_rhs_siblings: true,
            append_stale_triples: false,
            eager_findhom: false,
            banned: HashSet::new(),
        }
    }
}

/// Compute one route for the selected target tuples (paper Figure 7).
///
/// Complete (Theorem 3.10): if a route exists for `selected`, one is
/// returned. Runs in polynomial time in `|I| + |J| + |Js|`
/// (Proposition 3.9).
///
/// # Errors
/// Returns the subset of `selected` that has no route.
pub fn compute_one_route(env: RouteEnv<'_>, selected: &[TupleId]) -> Result<Route, OneRouteError> {
    compute_one_route_with(env, selected, &OneRouteOptions::default())
}

/// [`compute_one_route`] with explicit options.
pub fn compute_one_route_with(
    env: RouteEnv<'_>,
    selected: &[TupleId],
    options: &OneRouteOptions,
) -> Result<Route, OneRouteError> {
    run(env, selected, options, false).0
}

/// [`compute_one_route_with`], additionally recording a [`Trace`] of the
/// computation — the paper's "single-stepping the computation of routes"
/// (§3.4).
pub fn compute_one_route_traced(
    env: RouteEnv<'_>,
    selected: &[TupleId],
    options: &OneRouteOptions,
) -> (Result<Route, OneRouteError>, Trace) {
    let (result, trace) = run(env, selected, options, true);
    (result, trace.expect("tracing was requested"))
}

fn run(
    env: RouteEnv<'_>,
    selected: &[TupleId],
    options: &OneRouteOptions,
    tracing: bool,
) -> (Result<Route, OneRouteError>, Option<Trace>) {
    let mut finder = Finder {
        env,
        options,
        active: HashSet::new(),
        proven: HashSet::new(),
        unproven: Vec::new(),
        unresolved_by_premise: HashMap::new(),
        g: Vec::new(),
        trace: tracing.then(Trace::default),
    };
    finder.find_route(selected);
    let no_route: Vec<TupleId> = selected
        .iter()
        .copied()
        .filter(|t| !finder.proven.contains(t))
        .collect();
    let result = if no_route.is_empty() {
        Ok(Route::new(finder.g))
    } else {
        Err(OneRouteError { no_route })
    };
    (result, finder.trace)
}

/// Produce up to `count` *distinct* routes for `selected`, the first being
/// the one [`compute_one_route`] returns (paper §3.4: alternative routes on
/// demand).
///
/// Each subsequent run bans the steps that previously witnessed the selected
/// tuples, forcing a different explanation — exactly the interaction of
/// Scenario 2, where the second route for `t4` reveals the missing join.
pub fn alternative_routes(env: RouteEnv<'_>, selected: &[TupleId], count: usize) -> Vec<Route> {
    let mut routes: Vec<Route> = Vec::new();
    let mut options = OneRouteOptions::default();
    let mut seen_step_sets: HashSet<Vec<SatisfactionStep>> = HashSet::new();
    while routes.len() < count {
        let Ok(route) = compute_one_route_with(env, selected, &options) else {
            break;
        };
        // Ban the steps that witness the selected tuples in this route.
        let selected_set: HashSet<TupleId> = selected.iter().copied().collect();
        for step in route.steps() {
            if let Some(rhs) = step.rhs_tuples(&env) {
                if rhs.iter().any(|t| selected_set.contains(t)) {
                    options.banned.insert((step.tgd, step.hom.clone()));
                }
            }
        }
        let mut canonical: Vec<SatisfactionStep> = route.steps().to_vec();
        canonical.sort_by(|a, b| a.tgd.cmp(&b.tgd).then_with(|| a.hom.cmp(&b.hom)));
        canonical.dedup();
        if seen_step_sets.insert(canonical) {
            routes.push(route);
        } else {
            // The forced alternative collapsed to a known step set; further
            // banning can only shrink the space, so stop.
            break;
        }
    }
    routes
}

/// A parked triple `(t, σ, h)` from the `UNPROVEN` set.
struct Triple {
    subject: TupleId,
    tgd: TgdId,
    hom: Box<[Value]>,
    /// Target-side premises still missing (source premises are free).
    missing: HashSet<TupleId>,
    resolved: bool,
}

struct Finder<'a, 'o> {
    env: RouteEnv<'a>,
    options: &'o OneRouteOptions,
    /// ACTIVETUPLES: tuples whose branches have been (or are being) explored.
    active: HashSet<TupleId>,
    proven: HashSet<TupleId>,
    /// UNPROVEN: parked triples, indexed below by missing premise.
    unproven: Vec<Triple>,
    unresolved_by_premise: HashMap<TupleId, Vec<usize>>,
    /// G: the route under construction.
    g: Vec<SatisfactionStep>,
    /// Optional computation trace (see [`crate::trace`]).
    trace: Option<Trace>,
}

/// Either a lazy `findHom` iterator or a fully materialized assignment list.
/// (The lazy side is boxed: `FindHom` carries the executor state and would
/// otherwise dominate the enum's size.)
enum HomSource<'a> {
    Lazy(Box<FindHom<'a>>),
    Eager(std::vec::IntoIter<Box<[Value]>>),
}

impl HomSource<'_> {
    fn next_hom(&mut self) -> Option<Box<[Value]>> {
        match self {
            HomSource::Lazy(fh) => fh.next_hom(),
            HomSource::Eager(it) => it.next(),
        }
    }
}

impl Finder<'_, '_> {
    fn emit(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.events.push(event);
        }
    }

    fn find_route(&mut self, tuples: &[TupleId]) {
        for &t in tuples {
            if self.active.contains(&t) {
                self.emit(TraceEvent::SkipActive(t));
                continue;
            }
            self.active.insert(t);
            if self.proven.contains(&t) {
                // Already proven as a sibling of an earlier step (§3.3
                // optimization): nothing to do.
                self.emit(TraceEvent::SkipActive(t));
                continue;
            }
            self.emit(TraceEvent::Explore(t));
            self.explore(t);
            if !self.proven.contains(&t) {
                self.emit(TraceEvent::Exhausted(t));
            }
        }
    }

    /// Enumerate assignments for `(t, σ)`: lazily by default, or fully
    /// materialized when `eager` is set (the paper's XML path). Takes the
    /// environment by value (`RouteEnv` is `Copy`) so the returned source
    /// does not borrow the finder.
    fn homs(env: RouteEnv<'_>, eager: bool, tgd_id: TgdId, t: TupleId) -> HomSource<'_> {
        let fh = FindHom::new(env, tgd_id, AnchorSide::Rhs, Fact::target(t));
        if eager {
            HomSource::Eager(fh.collect_dedup().into_iter())
        } else {
            HomSource::Lazy(Box::new(fh))
        }
    }

    /// Steps 2 and 3 of Figure 7 for one tuple.
    fn explore(&mut self, t: TupleId) {
        // Step 2: s-t tgds — the first assignment wins.
        for idx in 0..self.env.mapping.st_tgds().len() as u32 {
            let tgd_id = TgdId::St(idx);
            let mut fh = Self::homs(self.env, self.options.eager_findhom, tgd_id, t);
            while let Some(hom) = fh.next_hom() {
                if self.options.banned.contains(&(tgd_id, hom.clone())) {
                    continue;
                }
                self.emit(TraceEvent::FoundHom {
                    tuple: t,
                    tgd: tgd_id,
                });
                self.append_step(tgd_id, hom, t);
                return;
            }
        }
        // Step 3: target tgds.
        for idx in 0..self.env.mapping.target_tgds().len() as u32 {
            let tgd_id = TgdId::Target(idx);
            let mut fh = Self::homs(self.env, self.options.eager_findhom, tgd_id, t);
            while let Some(hom) = fh.next_hom() {
                if self.options.banned.contains(&(tgd_id, hom.clone())) {
                    continue;
                }
                self.emit(TraceEvent::FoundHom {
                    tuple: t,
                    tgd: tgd_id,
                });
                let lhs = self
                    .env
                    .lhs_facts(tgd_id, &hom)
                    .expect("findHom assignments resolve");
                let premises: Vec<TupleId> = lhs.iter().map(|f| f.id).collect();
                let missing: HashSet<TupleId> = premises
                    .iter()
                    .copied()
                    .filter(|p| !self.proven.contains(p))
                    .collect();
                if missing.is_empty() {
                    // 3(a)(i-ii): premises proven — commit.
                    self.append_step(tgd_id, hom, t);
                    return;
                }
                // 3(a)(iii-iv): park the triple and recurse on the premises.
                self.emit(TraceEvent::Park {
                    tuple: t,
                    tgd: tgd_id,
                    missing: missing.iter().copied().collect(),
                });
                let triple_idx = self.unproven.len();
                for &p in &missing {
                    self.unresolved_by_premise
                        .entry(p)
                        .or_default()
                        .push(triple_idx);
                }
                self.unproven.push(Triple {
                    subject: t,
                    tgd: tgd_id,
                    hom,
                    missing,
                    resolved: false,
                });
                self.find_route(&premises);
                // 3(a)(v): if Infer resolved the triple (or proved t through
                // some other chain), stop; otherwise try the next assignment.
                if self.proven.contains(&t) {
                    return;
                }
            }
        }
        // All options exhausted: t stays unproven (it may still be proven
        // later via Infer if a parked triple referencing it resolves — that
        // cannot happen here because Infer runs eagerly, but a *caller's*
        // pending triples may mention t as subject).
    }

    /// Append `(σ, h)` to G and run `Infer` (Figure 8) from the newly proven
    /// tuples.
    fn append_step(&mut self, tgd: TgdId, hom: Box<[Value]>, anchor: TupleId) {
        debug_assert!(
            tgd.kind() == TgdKind::SourceToTarget
                || self
                    .env
                    .lhs_facts(tgd, &hom)
                    .expect("resolvable")
                    .iter()
                    .all(|f| self.proven.contains(&f.id)),
            "target steps are only appended once their premises are proven"
        );
        let step = SatisfactionStep::new(tgd, hom);
        self.emit(TraceEvent::Append {
            tgd,
            hom: step.hom.clone(),
        });
        let newly: Vec<TupleId> = if self.options.prove_rhs_siblings {
            step.rhs_tuples(&self.env).expect("resolvable")
        } else {
            vec![anchor]
        };
        self.g.push(step);
        self.infer(newly);
    }

    /// `Infer` (Figure 8): mark tuples proven and drain parked triples whose
    /// premises are now complete, appending their steps and propagating.
    fn infer(&mut self, seeds: Vec<TupleId>) {
        let mut frontier: Vec<TupleId> = seeds;
        while let Some(t) = frontier.pop() {
            if !self.proven.insert(t) {
                continue;
            }
            self.emit(TraceEvent::Proven(t));
            let Some(waiting) = self.unresolved_by_premise.remove(&t) else {
                continue;
            };
            for triple_idx in waiting {
                let triple = &mut self.unproven[triple_idx];
                if triple.resolved {
                    continue;
                }
                triple.missing.remove(&t);
                if !triple.missing.is_empty() {
                    continue;
                }
                triple.resolved = true;
                let subject = triple.subject;
                let subject_already_proven = self.proven.contains(&subject);
                if subject_already_proven && !self.options.append_stale_triples {
                    // Deviation from the literal Figure 8 (documented in
                    // DESIGN.md): skip the redundant step.
                    self.emit(TraceEvent::Resolved {
                        tuple: subject,
                        appended: false,
                    });
                    continue;
                }
                let triple = &mut self.unproven[triple_idx];
                let step = SatisfactionStep::new(triple.tgd, triple.hom.clone());
                let newly: Vec<TupleId> = if self.options.prove_rhs_siblings {
                    step.rhs_tuples(&self.env).expect("resolvable")
                } else {
                    vec![triple.subject]
                };
                self.g.push(step);
                frontier.extend(newly.into_iter().filter(|n| !self.proven.contains(n)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::example_3_5;
    use routes_mapping::SchemaMapping;
    use routes_model::Instance;

    fn t_of(m: &SchemaMapping, j: &Instance, rel: &str) -> TupleId {
        let r = m.target().rel_id(rel).unwrap();
        j.rel_rows(r).next().unwrap()
    }

    #[test]
    fn example_3_8_route_for_t7() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let route = compute_one_route(env, &[t7]).unwrap();
        route.validate(&env, &[t7]).unwrap();
        let names: Vec<&str> = route.steps().iter().map(|s| m.tgd(s.tgd).name()).collect();
        // The paper's trace returns [σ1, σ2, σ3, σ4, σ5, σ7, σ8, σ6]; our
        // branch order explores σ3 before σ7 under T3, which prunes the
        // redundant σ7 step. Either way the route must be valid and end
        // with σ6; check the exact deterministic output of our order.
        assert_eq!(names.last(), Some(&"s6"));
        assert!(names.contains(&"s1"));
        assert!(names.contains(&"s2"));
        assert!(names.contains(&"s5"));
        assert!(names.contains(&"s8"));
    }

    #[test]
    fn one_route_without_sibling_optimization_still_works() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let options = OneRouteOptions {
            prove_rhs_siblings: false,
            ..OneRouteOptions::default()
        };
        let route = compute_one_route_with(env, &[t7], &options).unwrap();
        route.validate(&env, &[t7]).unwrap();
    }

    #[test]
    fn literal_paper_infer_appends_stale_triples() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let options = OneRouteOptions {
            append_stale_triples: true,
            ..OneRouteOptions::default()
        };
        let route = compute_one_route_with(env, &[t7], &options).unwrap();
        // Possibly longer, but still a route.
        route.validate(&env, &[t7]).unwrap();
    }

    #[test]
    fn no_route_is_reported() {
        let (m, i, mut j, mut pool) = example_3_5();
        // An orphan tuple in T8 (no tgd has T8 in its RHS).
        let orphan = j.insert_ok(m.target().rel_id("T8").unwrap(), &[pool.str("zzz")]);
        let env = RouteEnv::new(&m, &i, &j);
        let err = compute_one_route(env, &[orphan]).unwrap_err();
        assert_eq!(err.no_route, vec![orphan]);
        // Mixed selection: the provable one still fails the call as a whole.
        let t1 = t_of(&m, &j, "T1");
        let err = compute_one_route(env, &[t1, orphan]).unwrap_err();
        assert_eq!(err.no_route, vec![orphan]);
    }

    #[test]
    fn multi_tuple_selection() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let ts: Vec<TupleId> = ["T1", "T5", "T7"].iter().map(|r| t_of(&m, &j, r)).collect();
        let route = compute_one_route(env, &ts).unwrap();
        route.validate(&env, &ts).unwrap();
    }

    #[test]
    fn alternatives_differ_in_witnessing_steps() {
        // With σ9 and S3(a), T5 has two witnesses (σ5 chain and σ9 direct).
        let (mut m, mut i, j, mut pool) = example_3_5();
        let s9 =
            routes_mapping::parse_st_tgd(m.source(), m.target(), &mut pool, "s9: S3(x) -> T5(x)")
                .unwrap();
        m.add_st_tgd(s9).unwrap();
        let a = pool.str("a");
        i.insert_ok(m.source().rel_id("S3").unwrap(), &[a]);
        let env = RouteEnv::new(&m, &i, &j);
        let t5 = t_of(&m, &j, "T5");
        let routes = alternative_routes(env, &[t5], 5);
        assert!(
            routes.len() >= 2,
            "expected at least 2 routes, got {}",
            routes.len()
        );
        for r in &routes {
            r.validate(&env, &[t5]).unwrap();
        }
        // The first route should be the fast s-t one (σ9 is tried in step 2).
        let first_names: Vec<&str> = routes[0]
            .steps()
            .iter()
            .map(|s| m.tgd(s.tgd).name())
            .collect();
        assert_eq!(first_names, ["s9"]);
        // The alternative must witness T5 differently (via σ5).
        let second_uses_s5 = routes[1]
            .steps()
            .iter()
            .any(|s| m.tgd(s.tgd).name() == "s5");
        assert!(second_uses_s5);
    }

    #[test]
    fn computation_trace_reflects_the_paper_walkthrough() {
        // Example 3.8: exploring T7 parks σ6, explores T4..T2, and Infer
        // propagates the proofs.
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let (result, trace) =
            crate::one_route::compute_one_route_traced(env, &[t7], &OneRouteOptions::default());
        let route = result.unwrap();
        route.validate(&env, &[t7]).unwrap();
        // Each of T1..T7 is explored at most once (ACTIVETUPLES).
        assert!(trace.tuples_explored() <= 7);
        assert!(trace.parked() >= 1, "σ6 must be parked while T4/T6 resolve");
        assert!(trace.homs_found() >= route.len());
        // Infer proves T7 (it is never appended directly).
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Proven(t) if *t == t7)));
        let text = trace.to_text(&pool, &env);
        assert!(text.contains("explore T7(a)"));
        assert!(text.contains("park (T7(a), s6, h)"));
        assert!(text.contains("infer: T7(a) proven"));
    }

    #[test]
    fn trace_records_failed_explorations() {
        let (m, i, mut j, mut pool) = example_3_5();
        let orphan = j.insert_ok(m.target().rel_id("T8").unwrap(), &[pool.str("zzz")]);
        let env = RouteEnv::new(&m, &i, &j);
        let (result, trace) =
            crate::one_route::compute_one_route_traced(env, &[orphan], &OneRouteOptions::default());
        assert!(result.is_err());
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Exhausted(t) if *t == orphan)));
    }

    #[test]
    fn infer_is_needed_for_completeness() {
        // The paper's argument (§3.2): while exploring T7 via σ6, the chain
        // parks σ6 and σ4 triples; T5 is ACTIVE when σ8 needs it, so only
        // Infer can prove it. If the route comes back valid, Infer worked.
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let route = compute_one_route(env, &[t7]).unwrap();
        assert!(route.validate(&env, &[t7]).is_ok());
        // Every explored tuple used at most one exploration (ACTIVETUPLES):
        // the route has no more steps than tuples in J plus slack.
        assert!(route.len() <= j.total_tuples());
    }
}
