//! Tracing the *computation* of a route (paper §3.4: "single-stepping the
//! computation of routes").
//!
//! [`crate::DebugSession`] steps through a *finished* route; this module
//! instead records what `ComputeOneRoute` itself does — which tuples it
//! explores, which tgds it tries, where triples get parked in `UNPROVEN`,
//! and what `Infer` propagates. The trace is the explanation of the
//! explanation: it shows *why the debugger chose the route it shows you*,
//! and it doubles as a teaching tool for the algorithm.

use routes_mapping::TgdId;
use routes_model::{TupleId, Value, ValuePool};

use crate::env::RouteEnv;

/// One event in the execution of `ComputeOneRoute`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A tuple entered `ACTIVETUPLES` and is being explored.
    Explore(TupleId),
    /// A tuple was skipped: already active or already proven.
    SkipActive(TupleId),
    /// `findHom` produced an assignment for `(tuple, tgd)`.
    FoundHom {
        /// The probed tuple.
        tuple: TupleId,
        /// The tgd.
        tgd: TgdId,
    },
    /// A step was appended to the route under construction.
    Append {
        /// The tgd used.
        tgd: TgdId,
        /// The assignment.
        hom: Box<[Value]>,
    },
    /// A triple `(tuple, tgd, h)` was parked in `UNPROVEN` pending the
    /// given premises.
    Park {
        /// The subject tuple.
        tuple: TupleId,
        /// The tgd.
        tgd: TgdId,
        /// The not-yet-proven premises.
        missing: Vec<TupleId>,
    },
    /// `Infer` marked a tuple proven.
    Proven(TupleId),
    /// `Infer` resolved a parked triple (its step was appended or dropped
    /// as stale).
    Resolved {
        /// The subject tuple.
        tuple: TupleId,
        /// Whether the triple's step was appended (false = dropped stale).
        appended: bool,
    },
    /// Exploration of a tuple ended without proving it (for now).
    Exhausted(TupleId),
}

/// A recorded computation trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of `Explore` events (= distinct tuples whose branches were
    /// searched; the `ACTIVETUPLES` bound of Proposition 3.9).
    pub fn tuples_explored(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Explore(_)))
            .count()
    }

    /// Number of `findHom` successes observed.
    pub fn homs_found(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FoundHom { .. }))
            .count()
    }

    /// Number of triples parked in `UNPROVEN`.
    pub fn parked(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Park { .. }))
            .count()
    }

    /// Render as indented text.
    pub fn to_text(&self, pool: &ValuePool, env: &RouteEnv<'_>) -> String {
        let mut out = String::new();
        let tuple =
            |t: TupleId| routes_model::tuple_to_string(pool, env.mapping.target(), env.target, t);
        for event in &self.events {
            let line = match event {
                TraceEvent::Explore(t) => format!("explore {}", tuple(*t)),
                TraceEvent::SkipActive(t) => format!("  skip {} (active/proven)", tuple(*t)),
                TraceEvent::FoundHom { tuple: t, tgd } => format!(
                    "  findHom({}, {}) succeeded",
                    tuple(*t),
                    env.mapping.tgd(*tgd).name()
                ),
                TraceEvent::Append { tgd, .. } => {
                    format!("  append ({}, h) to G", env.mapping.tgd(*tgd).name())
                }
                TraceEvent::Park {
                    tuple: t,
                    tgd,
                    missing,
                } => format!(
                    "  park ({}, {}, h) in UNPROVEN; missing {} premise(s)",
                    tuple(*t),
                    env.mapping.tgd(*tgd).name(),
                    missing.len()
                ),
                TraceEvent::Proven(t) => format!("  infer: {} proven", tuple(*t)),
                TraceEvent::Resolved { tuple: t, appended } => format!(
                    "  infer: resolved parked triple for {} ({})",
                    tuple(*t),
                    if *appended {
                        "appended"
                    } else {
                        "stale, dropped"
                    }
                ),
                TraceEvent::Exhausted(t) => format!("  {} exhausted, still unproven", tuple(*t)),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}
