//! Rendering routes, steps, and forests for the debugger UI (and examples).

use routes_model::{tuple_to_string, Side, TupleId, ValuePool, Var};

use crate::env::RouteEnv;
use crate::forest::RouteForest;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// Render one satisfaction step as
/// `s2 --m2,h--> t6   where h = {an -> 6689, s -> 234, ...}`.
pub fn step_to_string(pool: &ValuePool, env: &RouteEnv<'_>, step: &SatisfactionStep) -> String {
    let tgd = env.mapping.tgd(step.tgd);
    let lhs = step
        .lhs_facts(env)
        .map(|facts| {
            facts
                .iter()
                .map(|f| match f.side {
                    Side::Source => tuple_to_string(pool, env.mapping.source(), env.source, f.id),
                    Side::Target => tuple_to_string(pool, env.mapping.target(), env.target, f.id),
                })
                .collect::<Vec<_>>()
                .join(", ")
        })
        .unwrap_or_else(|| "<unresolvable LHS>".into());
    let rhs = step
        .rhs_tuples(env)
        .map(|ts| {
            ts.iter()
                .map(|&t| tuple_to_string(pool, env.mapping.target(), env.target, t))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .unwrap_or_else(|| "<unresolvable RHS>".into());
    let hom = (0..tgd.var_count() as u32)
        .map(|v| {
            format!(
                "{} -> {}",
                tgd.var_name(Var(v)),
                pool.value_to_string(step.hom[v as usize])
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{} --{}--> {}   with h = {{{}}}", lhs, tgd.name(), rhs, hom)
}

/// Render a route as a numbered list of steps.
pub fn route_to_string(pool: &ValuePool, env: &RouteEnv<'_>, route: &Route) -> String {
    let mut out = String::new();
    for (i, step) in route.steps().iter().enumerate() {
        out.push_str(&format!(
            "  {}. {}\n",
            i + 1,
            step_to_string(pool, env, step)
        ));
    }
    out
}

/// Render a route forest as an indented tree rooted at each selected tuple
/// (repeated occurrences are shown as references, like the paper's Figure 5
/// back-links).
pub fn forest_to_string(pool: &ValuePool, env: &RouteEnv<'_>, forest: &RouteForest) -> String {
    let mut out = String::new();
    for &root in &forest.roots {
        let mut path: Vec<TupleId> = Vec::new();
        render_node(pool, env, forest, root, 0, &mut path, &mut out);
    }
    out
}

fn render_node(
    pool: &ValuePool,
    env: &RouteEnv<'_>,
    forest: &RouteForest,
    t: TupleId,
    indent: usize,
    path: &mut Vec<TupleId>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let label = tuple_to_string(pool, env.mapping.target(), env.target, t);
    if path.contains(&t) {
        out.push_str(&format!("{pad}{label} (see above)\n"));
        return;
    }
    out.push_str(&format!("{pad}{label}\n"));
    path.push(t);
    for branch in forest.branches_of(t) {
        let tgd = env.mapping.tgd(branch.tgd);
        out.push_str(&format!("{pad}  [{}]\n", tgd.name()));
        for fact in &branch.lhs_facts {
            match fact.side {
                Side::Source => {
                    let s = tuple_to_string(pool, env.mapping.source(), env.source, fact.id);
                    out.push_str(&format!("{pad}    {s} (source)\n"));
                }
                Side::Target => {
                    render_node(pool, env, forest, fact.id, indent + 2, path, out);
                }
            }
        }
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::one_route::compute_one_route;
    use crate::testkit::example_3_5;

    #[test]
    fn renders_route_and_forest() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let route = compute_one_route(env, &[t7]).unwrap();
        let text = route_to_string(&pool, &env, &route);
        assert!(text.contains("T7(a)"));
        assert!(text.contains("--s6-->"));
        assert!(text.contains("x -> a"));

        let forest = compute_all_routes(env, &[t7]);
        let tree = forest_to_string(&pool, &env, &forest);
        assert!(tree.contains("T7(a)"));
        assert!(tree.contains("[s6]"));
        assert!(tree.contains("(source)"));
        // The T4 under σ5 is a back-reference.
        assert!(tree.contains("(see above)"));
    }
}
