//! Minimal routes: a route is *minimal* when none of its satisfaction steps
//! can be removed with the remainder still forming a route for the selected
//! tuples (paper §3.1).

use routes_model::TupleId;

use crate::env::RouteEnv;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// Whether removing any single step breaks the route.
pub fn is_minimal(env: &RouteEnv<'_>, route: &Route, selected: &[TupleId]) -> bool {
    if route.validate(env, selected).is_err() {
        return false;
    }
    (0..route.len()).all(|i| without(route, i).validate(env, selected).is_err())
}

/// Remove redundant steps until the route is minimal. Scans from the end
/// (later steps are more likely to be the redundant re-derivations that
/// `NaivePrint` introduces) and repeats to a fixpoint.
///
/// The input must be a valid route for `selected`; the result is a valid,
/// minimal route for `selected`.
pub fn minimize_route(env: &RouteEnv<'_>, route: &Route, selected: &[TupleId]) -> Route {
    let mut current = route.clone();
    debug_assert!(current.validate(env, selected).is_ok());
    loop {
        let mut removed = false;
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let candidate = without(&current, i);
            if !candidate.is_empty() && candidate.validate(env, selected).is_ok() {
                current = candidate;
                removed = true;
            }
        }
        if !removed {
            return current;
        }
    }
}

fn without(route: &Route, idx: usize) -> Route {
    let steps: Vec<SatisfactionStep> = route
        .steps()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, s)| s.clone())
        .collect();
    Route::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::testkit::example_3_5;
    use crate::print::enumerate_routes;
    use crate::strat::stratify;

    #[test]
    fn minimizing_r3_yields_r1() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let forest = compute_all_routes(env, &[t7]);
        let r3 = &enumerate_routes(env, &forest, &[t7], 10)[0];
        assert_eq!(r3.len(), 10);
        assert!(!is_minimal(&env, r3, &[t7]));

        let r1 = minimize_route(&env, r3, &[t7]);
        assert_eq!(r1.len(), 7); // σ2 σ3 σ4 σ1 σ5 σ8 σ6 (some order)
        assert!(is_minimal(&env, &r1, &[t7]));
        r1.validate(&env, &[t7]).unwrap();
        // Minimization does not change the stratified interpretation here
        // (R1 and R3 share it, per the paper).
        assert_eq!(stratify(&env, &r1), stratify(&env, r3));
    }

    #[test]
    fn already_minimal_routes_are_untouched() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t2_rel = m.target().rel_id("T2").unwrap();
        let t2 = j.rel_rows(t2_rel).next().unwrap();
        let forest = compute_all_routes(env, &[t2]);
        let r = &enumerate_routes(env, &forest, &[t2], 10)[0];
        assert_eq!(r.len(), 1);
        assert!(is_minimal(&env, r, &[t2]));
        assert_eq!(&minimize_route(&env, r, &[t2]), r);
    }
}
