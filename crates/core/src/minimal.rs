//! Minimal routes: a route is *minimal* when none of its satisfaction steps
//! can be removed with the remainder still forming a route for the selected
//! tuples (paper §3.1).

use routes_model::TupleId;

use crate::env::RouteEnv;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// Whether removing any single step breaks the route.
pub fn is_minimal(env: &RouteEnv<'_>, route: &Route, selected: &[TupleId]) -> bool {
    if route.validate(env, selected).is_err() {
        return false;
    }
    (0..route.len()).all(|i| without(route, i).validate(env, selected).is_err())
}

/// Remove redundant steps until the route is minimal. Scans from the end
/// (later steps are more likely to be the redundant re-derivations that
/// `NaivePrint` introduces) and repeats to a fixpoint.
///
/// The input must be a valid route for `selected`; the result is a valid,
/// minimal route for `selected`.
pub fn minimize_route(env: &RouteEnv<'_>, route: &Route, selected: &[TupleId]) -> Route {
    let mut current = route.clone();
    debug_assert!(current.validate(env, selected).is_ok());
    loop {
        let mut removed = false;
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let candidate = without(&current, i);
            if !candidate.is_empty() && candidate.validate(env, selected).is_ok() {
                current = candidate;
                removed = true;
            }
        }
        if !removed {
            return current;
        }
    }
}

fn without(route: &Route, idx: usize) -> Route {
    let steps: Vec<SatisfactionStep> = route
        .steps()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, s)| s.clone())
        .collect();
    Route::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::print::enumerate_routes;
    use crate::strat::stratify;
    use crate::testkit::example_3_5;

    #[test]
    fn minimizing_r3_yields_r1() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let forest = compute_all_routes(env, &[t7]);
        let r3 = &enumerate_routes(env, &forest, &[t7], 10)[0];
        assert_eq!(r3.len(), 10);
        assert!(!is_minimal(&env, r3, &[t7]));

        let r1 = minimize_route(&env, r3, &[t7]);
        assert_eq!(r1.len(), 7); // σ2 σ3 σ4 σ1 σ5 σ8 σ6 (some order)
        assert!(is_minimal(&env, &r1, &[t7]));
        r1.validate(&env, &[t7]).unwrap();
        // Minimization does not change the stratified interpretation here
        // (R1 and R3 share it, per the paper).
        assert_eq!(stratify(&env, &r1), stratify(&env, r3));
    }

    /// Shared harness for the paper's Table-1 stand-ins: chase, probe a
    /// handful of target tuples, and for each check that the minimized
    /// route (a) stays valid and minimal, (b) is a sub-multiset of the
    /// original route's steps, and (c) uses only `(σ, h)` pairs that the
    /// all-routes forest also discovered — minimal-route output is
    /// contained in all-routes output, never invented beside it.
    fn assert_minimal_subset_of_all_routes(sc: &mut routes_gen::RealScenario, probes: usize) {
        use std::collections::HashMap;

        let solution = sc
            .scenario
            .solution_with(routes_chase::ChaseOptions::fresh())
            .unwrap()
            .target;
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        let mut checked = 0;
        for (rel, _) in env.mapping.target().iter() {
            let Some(t) = solution.rel_rows(rel).next() else {
                continue;
            };
            let forest = compute_all_routes(env, &[t]);
            let Some(route) = enumerate_routes(env, &forest, &[t], 4).into_iter().next() else {
                continue;
            };
            let minimal = minimize_route(&env, &route, &[t]);
            assert!(is_minimal(&env, &minimal, &[t]));
            minimal.validate(&env, &[t]).unwrap();
            assert!(minimal.len() <= route.len());

            // (b) sub-multiset of the original steps.
            let mut budget: HashMap<_, usize> = HashMap::new();
            for s in route.steps() {
                *budget.entry(s.signature()).or_default() += 1;
            }
            for s in minimal.steps() {
                let slot = budget
                    .get_mut(&s.signature())
                    .unwrap_or_else(|| panic!("minimized route invented step {:?}", s.signature()));
                assert!(
                    *slot > 0,
                    "step {:?} used more often than given",
                    s.signature()
                );
                *slot -= 1;
            }

            // (c) every surviving step is a branch of the all-routes forest.
            for s in minimal.steps() {
                let found = forest.order.iter().any(|&node| {
                    forest
                        .branches_of(node)
                        .iter()
                        .any(|b| (b.tgd, &b.hom[..]) == s.signature())
                });
                assert!(
                    found,
                    "step {:?} not in the all-routes forest",
                    s.signature()
                );
            }
            checked += 1;
            if checked == probes {
                break;
            }
        }
        assert!(checked > 0, "scenario produced no checkable probes");
    }

    #[test]
    fn minimal_routes_are_subsets_of_all_routes_on_dblp() {
        let mut sc = routes_gen::dblp_scenario(0.01, 31);
        assert_minimal_subset_of_all_routes(&mut sc, 5);
    }

    #[test]
    fn minimal_routes_are_subsets_of_all_routes_on_mondial() {
        let mut sc = routes_gen::mondial_scenario(0.01, 37);
        assert_minimal_subset_of_all_routes(&mut sc, 5);
    }

    #[test]
    fn already_minimal_routes_are_untouched() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t2_rel = m.target().rel_id("T2").unwrap();
        let t2 = j.rel_rows(t2_rel).next().unwrap();
        let forest = compute_all_routes(env, &[t2]);
        let r = &enumerate_routes(env, &forest, &[t2], 10)[0];
        assert_eq!(r.len(), 1);
        assert!(is_minimal(&env, r, &[t2]));
        assert_eq!(&minimize_route(&env, r, &[t2]), r);
    }
}
