//! Satisfaction steps (paper Definition 3.1).

use routes_mapping::TgdId;
use routes_model::{Fact, TupleId, Value};

use crate::env::RouteEnv;

/// One satisfaction step `K1 --σ,h--> K2`: a tgd `σ` together with a *total*
/// assignment `h` of all of `σ`'s variables (universal and existential).
///
/// Unlike a chase step, `h` covers the existential variables too — the step
/// asserts that `h(ψ)` is already present in the solution `J` and merely
/// *witnesses* it (paper §3, discussion after Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SatisfactionStep {
    /// The tgd used.
    pub tgd: TgdId,
    /// The total assignment, indexed densely by the tgd's variables.
    pub hom: Box<[Value]>,
}

impl SatisfactionStep {
    /// Create a step.
    pub fn new(tgd: TgdId, hom: impl Into<Box<[Value]>>) -> Self {
        SatisfactionStep {
            tgd,
            hom: hom.into(),
        }
    }

    /// The facts `LHS(h(σ))` — the step's premises. `None` if the step is
    /// not well-formed against `env` (its LHS image is not in the instance
    /// the LHS ranges over).
    pub fn lhs_facts(&self, env: &RouteEnv<'_>) -> Option<Vec<Fact>> {
        env.lhs_facts(self.tgd, &self.hom)
    }

    /// The target tuples `RHS(h(σ))` — what the step produces/witnesses.
    /// `None` if `h(ψ) ⊄ J`.
    pub fn rhs_tuples(&self, env: &RouteEnv<'_>) -> Option<Vec<TupleId>> {
        env.rhs_tuples(self.tgd, &self.hom)
    }

    /// A stable identity for deduplication: `(σ, h)` as a pair.
    pub fn signature(&self) -> (TgdId, &[Value]) {
        (self.tgd, &self.hom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::{parse_st_tgd, SchemaMapping};
    use routes_model::{Instance, Schema, ValuePool};

    #[test]
    fn step_resolution_against_env() {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        let id = m
            .add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> T(x)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        let mut j = Instance::new(&t);
        let sid = i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
        let tid = j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(1)]);
        let env = RouteEnv::new(&m, &i, &j);
        let step = SatisfactionStep::new(id, vec![Value::Int(1)]);
        assert_eq!(step.lhs_facts(&env), Some(vec![Fact::source(sid)]));
        assert_eq!(step.rhs_tuples(&env), Some(vec![tid]));
        assert_eq!(step.signature().0, id);

        let bad = SatisfactionStep::new(id, vec![Value::Int(9)]);
        assert_eq!(bad.lhs_facts(&env), None);
    }
}
