//! Routes for selected **source** tuples (paper §3.4): forward exploration
//! of how a source tuple flows into the target.
//!
//! The probed tuple is anchored on the **LHS** of each tgd
//! ([`crate::AnchorSide::Lhs`]); every witnessing assignment becomes a
//! forward branch whose RHS tuples are explored next (through target tgds),
//! up to a configurable depth. The result answers the debugging question
//! “which target data does this source tuple contribute to, and through
//! which tgds?” — the dual of the target-side route forest, and the basis
//! for the paper's sensitive-data use case (identifying tgds that export a
//! given fact).

use std::collections::{HashMap, HashSet};

use routes_mapping::{TgdId, TgdKind};
use routes_model::{Fact, Side, TupleId, Value};

use crate::env::RouteEnv;
use crate::findhom::{AnchorSide, FindHom};
use crate::route::Route;
use crate::step::SatisfactionStep;

/// One forward branch: a step `(σ, h)` whose LHS contains the explored fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardBranch {
    /// The tgd used.
    pub tgd: TgdId,
    /// The total assignment.
    pub hom: Box<[Value]>,
    /// `LHS(h(σ))` — includes the explored fact.
    pub lhs_facts: Vec<Fact>,
    /// `RHS(h(σ))` — target tuples this fact helps witness.
    pub rhs_tuples: Vec<TupleId>,
}

/// The forward forest for a set of selected source tuples.
#[derive(Debug, Clone, Default)]
pub struct ForwardForest {
    /// The selected source facts.
    pub roots: Vec<Fact>,
    /// Branches per explored fact (source roots and reached target tuples).
    pub branches: HashMap<Fact, Vec<ForwardBranch>>,
    /// Exploration order.
    pub order: Vec<Fact>,
}

impl ForwardForest {
    /// All target tuples reachable from the selected source tuples.
    pub fn reached_targets(&self) -> HashSet<TupleId> {
        self.branches
            .values()
            .flatten()
            .flat_map(|b| b.rhs_tuples.iter().copied())
            .collect()
    }

    /// The tgds that export any of the selected facts (the paper's
    /// sensitive-information scenario).
    pub fn exporting_tgds(&self) -> HashSet<TgdId> {
        self.roots
            .iter()
            .flat_map(|r| self.branches.get(r).into_iter().flatten())
            .map(|b| b.tgd)
            .collect()
    }
}

/// Explore forward from the selected source tuples, up to `max_depth` tgd
/// applications (depth 1 = the s-t tgds touching the selection).
pub fn compute_source_routes(
    env: RouteEnv<'_>,
    selected: &[TupleId],
    max_depth: usize,
) -> ForwardForest {
    let mut forest = ForwardForest {
        roots: selected.iter().map(|&id| Fact::source(id)).collect(),
        ..ForwardForest::default()
    };
    let mut visited: HashSet<Fact> = HashSet::new();
    let mut frontier: Vec<(Fact, usize)> = forest.roots.iter().map(|&f| (f, 0)).collect();

    while let Some((fact, depth)) = frontier.pop() {
        if depth >= max_depth || !visited.insert(fact) {
            continue;
        }
        forest.order.push(fact);
        let mut branches: Vec<ForwardBranch> = Vec::new();
        let mut seen: HashSet<(TgdId, Box<[Value]>)> = HashSet::new();
        for tgd_id in env.mapping.tgd_ids() {
            // A fact can anchor a tgd's LHS only on the matching side.
            let lhs_side = env.lhs_side(tgd_id);
            if lhs_side != fact.side {
                continue;
            }
            // Forward expansion drains every assignment: batched, same order.
            let fh = FindHom::new(env, tgd_id, AnchorSide::Lhs, fact);
            for hom in fh.collect_all() {
                if !seen.insert((tgd_id, hom.clone())) {
                    continue;
                }
                let lhs_facts = env.lhs_facts(tgd_id, &hom).expect("resolvable");
                let rhs_tuples = env.rhs_tuples(tgd_id, &hom).expect("resolvable");
                for &t in &rhs_tuples {
                    frontier.push((Fact::target(t), depth + 1));
                }
                branches.push(ForwardBranch {
                    tgd: tgd_id,
                    hom,
                    lhs_facts,
                    rhs_tuples,
                });
            }
        }
        forest.branches.insert(fact, branches);
    }
    forest
}

/// A one-step route witnessing the target tuples a selected source tuple
/// directly produces: the first s-t branch anchored on the tuple (if any).
///
/// This is “one route for selected source data”: the returned route's first
/// step uses the selected tuple as a premise, so the route explains the
/// tuple's direct contribution. Use [`compute_source_routes`] for the full
/// forward picture.
pub fn one_route_from_source(env: RouteEnv<'_>, source_tuple: TupleId) -> Option<Route> {
    for idx in 0..env.mapping.st_tgds().len() as u32 {
        let tgd_id = TgdId::St(idx);
        debug_assert_eq!(tgd_id.kind(), TgdKind::SourceToTarget);
        let mut fh = FindHom::new(env, tgd_id, AnchorSide::Lhs, Fact::source(source_tuple));
        if let Some(hom) = fh.next_hom() {
            return Some(Route::new(vec![SatisfactionStep::new(tgd_id, hom)]));
        }
    }
    None
}

/// Sanity helper: every LHS fact of a forward branch that is on the source
/// side must exist in `I` (true by construction; used in tests).
pub fn branch_sides_consistent(env: &RouteEnv<'_>, forest: &ForwardForest) -> bool {
    forest.branches.values().flatten().all(|b| {
        b.lhs_facts.iter().all(|f| match f.side {
            Side::Source => (f.id.rel.0 as usize) < env.mapping.source().len(),
            Side::Target => (f.id.rel.0 as usize) < env.mapping.target().len(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::example_3_5;
    use routes_mapping::SchemaMapping;
    use routes_model::Instance;

    fn s_of(m: &SchemaMapping, i: &Instance, rel: &str) -> TupleId {
        let r = m.source().rel_id(rel).unwrap();
        i.rel_rows(r).next().unwrap()
    }

    #[test]
    fn forward_exploration_reaches_derived_tuples() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let s2 = s_of(&m, &i, "S2");
        let forest = compute_source_routes(env, &[s2], 10);
        // S2(a) -> T2 -> T3 -> T4 -> {T5, T7} -> ...: everything except T1
        // is reachable (T1 comes only from S1), though T5/T7 need T1/T6 as
        // co-premises — reachability only asks for participation.
        let reached = forest.reached_targets();
        let names: Vec<&str> = ["T2", "T3", "T4", "T5", "T7"].to_vec();
        for n in names {
            let rel = m.target().rel_id(n).unwrap();
            let t = j.rel_rows(rel).next().unwrap();
            assert!(reached.contains(&t), "{n} should be reached from S2");
        }
        assert!(branch_sides_consistent(&env, &forest));
        // Exactly one s-t tgd exports S2: σ2.
        let exporting = forest.exporting_tgds();
        assert_eq!(exporting.len(), 1);
        assert_eq!(m.tgd(*exporting.iter().next().unwrap()).name(), "s2");
    }

    #[test]
    fn depth_limit_bounds_exploration() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let s2 = s_of(&m, &i, "S2");
        let shallow = compute_source_routes(env, &[s2], 1);
        // Depth 1: only the s-t step fires; T2 reached but not explored.
        let t2_rel = m.target().rel_id("T2").unwrap();
        let t2 = j.rel_rows(t2_rel).next().unwrap();
        assert!(shallow.reached_targets().contains(&t2));
        let t3_rel = m.target().rel_id("T3").unwrap();
        let t3 = j.rel_rows(t3_rel).next().unwrap();
        assert!(!shallow.reached_targets().contains(&t3));
    }

    #[test]
    fn one_route_from_source_is_valid() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let s1 = s_of(&m, &i, "S1");
        let route = one_route_from_source(env, s1).unwrap();
        route.validate(&env, &[]).unwrap();
        // The route's first step must use S1 as a premise.
        let lhs = route.steps()[0].lhs_facts(&env).unwrap();
        assert!(lhs.contains(&Fact::source(s1)));
    }

    #[test]
    fn source_tuple_with_no_exports() {
        let (m, mut i, j, mut pool) = example_3_5();
        // S3 has no tgd over it (σ9 is not part of the base mapping).
        let z = pool.str("z");
        let s3 = i.insert_ok(m.source().rel_id("S3").unwrap(), &[z]);
        let env = RouteEnv::new(&m, &i, &j);
        assert!(one_route_from_source(env, s3).is_none());
        let forest = compute_source_routes(env, &[s3], 5);
        assert!(forest.reached_targets().is_empty());
    }
}
