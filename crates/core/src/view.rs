//! Plain-data views of routes and route forests.
//!
//! [`Route`], [`RouteForest`], and [`SatisfactionStep`] borrow interned
//! identifiers that only resolve against a [`RouteEnv`] and [`ValuePool`].
//! The views here resolve everything up front into owned strings and
//! indices, so a transport layer (the HTTP server, a future GUI) can
//! serialize them without holding the pool or the instances — and without
//! this crate committing to any wire format.

use routes_model::{tuple_to_string, Side, TupleId, ValuePool, Var};

use crate::env::RouteEnv;
use crate::forest::{Branch, RouteForest};
use crate::route::Route;
use crate::step::SatisfactionStep;

/// A resolved reference to one tuple: enough to re-select it (`relation` +
/// `row`) and to show it (`text`, e.g. `T7(a)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleRef {
    /// Relation name in the owning schema.
    pub relation: String,
    /// Row index within that relation.
    pub row: u32,
    /// Rendered tuple, `Rel(v1, v2, ...)`.
    pub text: String,
}

impl TupleRef {
    fn build(pool: &ValuePool, env: &RouteEnv<'_>, side: Side, id: TupleId) -> Self {
        let (schema, inst) = match side {
            Side::Source => (env.mapping.source(), env.source),
            Side::Target => (env.mapping.target(), env.target),
        };
        TupleRef {
            relation: schema.relation(id.rel).name().to_owned(),
            row: id.row,
            text: tuple_to_string(pool, schema, inst, id),
        }
    }
}

/// One premise of a step or branch: a source or target tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactView {
    /// `true` for source facts (leaves of a forest), `false` for target
    /// facts (which a forest expands further).
    pub source: bool,
    /// The tuple itself.
    pub tuple: TupleRef,
}

/// One satisfaction step `K1 --σ,h--> K2`, fully resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepView {
    /// The tgd's name (e.g. `m2`).
    pub tgd: String,
    /// The total assignment as `(variable name, rendered value)` pairs, in
    /// the tgd's dense variable order.
    pub hom: Vec<(String, String)>,
    /// `LHS(h(σ))` — the step's premises.
    pub lhs: Vec<FactView>,
    /// `RHS(h(σ))` — the target tuples the step witnesses.
    pub rhs: Vec<TupleRef>,
}

/// A route as a resolved step list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteView {
    /// The steps, in application order.
    pub steps: Vec<StepView>,
}

/// One branch `(σ, h)` of a forest node, resolved like a [`StepView`].
pub type BranchView = StepView;

/// One explored node of a route forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestNodeView {
    /// The node's tuple.
    pub tuple: TupleRef,
    /// Its branches (empty means the tuple has no witnessing assignment).
    pub branches: Vec<BranchView>,
}

/// A route forest as a resolved node list plus summary facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForestView {
    /// The selected tuples the forest was built for.
    pub roots: Vec<TupleRef>,
    /// Every explored node, in exploration order.
    pub nodes: Vec<ForestNodeView>,
    /// Total branch count (Proposition 3.6's polynomial size).
    pub num_branches: usize,
    /// Whether every root has at least one route in the forest.
    pub all_roots_provable: bool,
}

fn resolve_step(
    pool: &ValuePool,
    env: &RouteEnv<'_>,
    tgd: routes_mapping::TgdId,
    hom: &[routes_model::Value],
    lhs_facts: &[routes_model::Fact],
    rhs_tuples: &[TupleId],
) -> StepView {
    let tgd_ref = env.mapping.tgd(tgd);
    StepView {
        tgd: tgd_ref.name().to_owned(),
        hom: (0..tgd_ref.var_count() as u32)
            .map(|v| {
                (
                    tgd_ref.var_name(Var(v)).to_owned(),
                    pool.value_to_string(hom[v as usize]),
                )
            })
            .collect(),
        lhs: lhs_facts
            .iter()
            .map(|f| FactView {
                source: f.side == Side::Source,
                tuple: TupleRef::build(pool, env, f.side, f.id),
            })
            .collect(),
        rhs: rhs_tuples
            .iter()
            .map(|&t| TupleRef::build(pool, env, Side::Target, t))
            .collect(),
    }
}

impl StepView {
    /// Resolve one step against its environment. Steps whose LHS or RHS no
    /// longer resolves (a foreign or corrupted step) render with empty
    /// fact lists rather than failing — views are for display, not proof.
    pub fn build(pool: &ValuePool, env: &RouteEnv<'_>, step: &SatisfactionStep) -> Self {
        let lhs = step.lhs_facts(env).unwrap_or_default();
        let rhs = step.rhs_tuples(env).unwrap_or_default();
        resolve_step(pool, env, step.tgd, &step.hom, &lhs, &rhs)
    }
}

impl RouteView {
    /// Resolve a whole route.
    pub fn build(pool: &ValuePool, env: &RouteEnv<'_>, route: &Route) -> Self {
        RouteView {
            steps: route
                .steps()
                .iter()
                .map(|s| StepView::build(pool, env, s))
                .collect(),
        }
    }
}

impl ForestView {
    /// Resolve a whole forest. Nodes appear in the forest's deterministic
    /// exploration order; branch children reference nodes by tuple.
    pub fn build(pool: &ValuePool, env: &RouteEnv<'_>, forest: &RouteForest) -> Self {
        let resolve_branch =
            |b: &Branch| resolve_step(pool, env, b.tgd, &b.hom, &b.lhs_facts, &b.rhs_tuples);
        ForestView {
            roots: forest
                .roots
                .iter()
                .map(|&r| TupleRef::build(pool, env, Side::Target, r))
                .collect(),
            nodes: forest
                .order
                .iter()
                .map(|&t| ForestNodeView {
                    tuple: TupleRef::build(pool, env, Side::Target, t),
                    branches: forest.branches_of(t).iter().map(resolve_branch).collect(),
                })
                .collect(),
            num_branches: forest.num_branches(),
            all_roots_provable: forest.all_roots_provable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::one_route::compute_one_route;
    use crate::testkit::example_3_5;

    #[test]
    fn route_view_resolves_steps() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let route = compute_one_route(env, &[t7]).unwrap();
        let view = RouteView::build(&pool, &env, &route);
        assert_eq!(view.steps.len(), route.len());
        let last = view.steps.last().unwrap();
        assert!(!last.tgd.is_empty());
        assert!(last
            .hom
            .iter()
            .all(|(name, value)| { !name.is_empty() && !value.is_empty() }));
        assert!(view
            .steps
            .iter()
            .any(|s| s.rhs.iter().any(|t| t.relation == "T7")));
    }

    #[test]
    fn forest_view_mirrors_forest_shape() {
        let (m, i, j, pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7_rel = m.target().rel_id("T7").unwrap();
        let t7 = j.rel_rows(t7_rel).next().unwrap();
        let forest = compute_all_routes(env, &[t7]);
        let view = ForestView::build(&pool, &env, &forest);
        assert_eq!(view.roots.len(), 1);
        assert_eq!(view.nodes.len(), forest.num_nodes());
        assert_eq!(view.num_branches, forest.num_branches());
        assert!(view.all_roots_provable);
        // Every branch's source premises are flagged as leaves.
        for node in &view.nodes {
            for b in &node.branches {
                for f in &b.lhs {
                    if f.source {
                        assert!(!f.tuple.text.is_empty());
                    }
                }
            }
        }
    }
}
