//! Stratified interpretation of routes (paper §3.1).
//!
//! Every tuple in a route has a *rank*: source tuples have rank 0, and a
//! tuple has rank `k` if some step produces it whose LHS tuples have maximum
//! rank `k - 1` — and it is not of a lower rank (ranks are minimal). A step
//! `(σ, h)` belongs to rank `k` when the maximum rank of `LHS(h(σ))` is
//! `k - 1`. The *stratified interpretation* `strat(R)` partitions the steps
//! into rank blocks; the *rank of a route* is the number of blocks.
//!
//! Two routes with the same stratified interpretation use the same set of
//! satisfaction steps — the equivalence under which the route forest is
//! complete for minimal routes (Theorem 3.7).

use std::collections::HashMap;

use routes_model::{Side, TupleId};

use crate::env::RouteEnv;
use crate::route::Route;
use crate::step::SatisfactionStep;

/// A step resolved against `(I, J)`: its premises (with sides), its
/// conclusions, and the step itself.
type ResolvedStep<'r> = (Vec<(Side, TupleId)>, Vec<TupleId>, &'r SatisfactionStep);

/// The stratified interpretation of a route: step blocks by rank (block 0 is
/// rank 1, etc.). Within a block, steps are canonically sorted so that two
/// interpretations are equal iff their blocks contain the same `(σ, h)` sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifiedRoute {
    blocks: Vec<Vec<SatisfactionStep>>,
}

impl StratifiedRoute {
    /// The blocks, rank 1 first.
    pub fn blocks(&self) -> &[Vec<SatisfactionStep>] {
        &self.blocks
    }

    /// The rank of the route (number of blocks).
    pub fn rank(&self) -> usize {
        self.blocks.len()
    }
}

/// Compute the stratified interpretation of a (valid) route.
///
/// # Panics
/// Panics if the route does not replay against `env` (validate first).
pub fn stratify(env: &RouteEnv<'_>, route: &Route) -> StratifiedRoute {
    // Tuple ranks: fixpoint of rank[t] = min over steps producing t of
    // (1 + max rank of the step's LHS tuples), source tuples having rank 0.
    let mut rank: HashMap<TupleId, usize> = HashMap::new();

    // Resolve step premises/conclusions once.
    let resolved: Vec<ResolvedStep<'_>> = route
        .steps()
        .iter()
        .map(|step| {
            let lhs = step
                .lhs_facts(env)
                .expect("stratify requires a valid route")
                .into_iter()
                .map(|f| (f.side, f.id))
                .collect();
            let rhs = step
                .rhs_tuples(env)
                .expect("stratify requires a valid route");
            (lhs, rhs, step)
        })
        .collect();

    loop {
        let mut changed = false;
        for (lhs, rhs, _) in &resolved {
            let mut max_lhs = 0usize;
            let mut known = true;
            for &(side, id) in lhs {
                match side {
                    Side::Source => {}
                    Side::Target => match rank.get(&id) {
                        Some(&r) => max_lhs = max_lhs.max(r),
                        None => {
                            known = false;
                            break;
                        }
                    },
                }
            }
            if !known {
                continue;
            }
            let step_rank = max_lhs + 1;
            for &t in rhs {
                let entry = rank.entry(t).or_insert(usize::MAX);
                if step_rank < *entry {
                    *entry = step_rank;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Assign each step to its block from the final tuple ranks.
    let mut max_rank = 0usize;
    let mut step_ranks: Vec<usize> = Vec::with_capacity(resolved.len());
    for (lhs, _, _) in &resolved {
        let r = 1 + lhs
            .iter()
            .map(|&(side, id)| match side {
                Side::Source => 0,
                Side::Target => rank[&id],
            })
            .max()
            .unwrap_or(0);
        step_ranks.push(r);
        max_rank = max_rank.max(r);
    }
    let mut blocks: Vec<Vec<SatisfactionStep>> = vec![Vec::new(); max_rank];
    for ((_, _, step), r) in resolved.iter().zip(step_ranks) {
        let block = &mut blocks[r - 1];
        // Set semantics within a block: duplicate steps collapse.
        if !block.iter().any(|s| s == *step) {
            block.push((*step).clone());
        }
    }
    for block in &mut blocks {
        block.sort_by(|a, b| a.tgd.cmp(&b.tgd).then_with(|| a.hom.cmp(&b.hom)));
    }
    StratifiedRoute { blocks }
}

/// The rank of a route: the number of blocks in its stratified
/// interpretation.
pub fn route_rank(env: &RouteEnv<'_>, route: &Route) -> usize {
    stratify(env, route).rank()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_routes::compute_all_routes;
    use crate::print::enumerate_routes;
    use crate::testkit::example_3_5;
    use routes_mapping::SchemaMapping;
    use routes_model::Instance;

    fn t_of(m: &SchemaMapping, j: &Instance, rel: &str) -> TupleId {
        let r = m.target().rel_id(rel).unwrap();
        j.rel_rows(r).next().unwrap()
    }

    #[test]
    fn r1_and_r3_have_the_papers_stratification() {
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let routes = enumerate_routes(env, &forest, &[t7], 10);
        assert_eq!(routes.len(), 1);
        let r3 = &routes[0]; // R3 contains redundant steps but strat(R3) = strat(R1).
        let strat = stratify(&env, r3);
        // Paper table: rank 1: {σ1, σ2}; 2: {σ3}; 3: {σ4}; 4: {σ5}; 5: {σ8}; 6: {σ6}.
        assert_eq!(strat.rank(), 6);
        let names: Vec<Vec<&str>> = strat
            .blocks()
            .iter()
            .map(|b| b.iter().map(|s| m.tgd(s.tgd).name()).collect())
            .collect();
        assert_eq!(
            names,
            vec![
                vec!["s1", "s2"],
                vec!["s3"],
                vec!["s4"],
                vec!["s5"],
                vec!["s8"],
                vec!["s6"],
            ]
        );
        assert_eq!(route_rank(&env, r3), 6);
    }

    #[test]
    fn reordered_routes_have_equal_strat() {
        // Build R1 by hand (the paper's minimal order) and compare with R3.
        let (m, i, j, _pool) = example_3_5();
        let env = RouteEnv::new(&m, &i, &j);
        let t7 = t_of(&m, &j, "T7");
        let forest = compute_all_routes(env, &[t7]);
        let r3 = &enumerate_routes(env, &forest, &[t7], 10)[0];

        // R1: σ2 σ3 σ4 σ1 σ5 σ8 σ6 — drop the duplicated σ2 σ3 σ4 prefix.
        let mut seen = std::collections::HashSet::new();
        let steps: Vec<_> = r3
            .steps()
            .iter()
            .filter(|s| seen.insert((*s).clone()))
            .cloned()
            .collect();
        let r1 = Route::new(steps);
        r1.validate(&env, &[t7]).unwrap();
        assert_eq!(stratify(&env, &r1), stratify(&env, r3));
    }
}
