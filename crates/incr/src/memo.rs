//! Pool-independent s-t tgd match memos and their delta maintenance.
//!
//! The chase engine enumerates each s-t tgd's LHS matches with an anchored
//! plan: candidate rows of the planned outermost atom in ascending order,
//! then a fixed-order backtracking join whose per-depth candidate lists are
//! also ascending (index posting lists are append-ordered). The full match
//! sequence is therefore **sorted lexicographically** by the plan-ordered
//! row vector `[v[outer], v[suffix[0]], ...]` — which is what lets a memo
//! survive edits: remap surviving vectors to new row ids, join only the
//! *inserted* rows for the new matches, then one sort by the new plan's key
//! reproduces the from-scratch enumeration order exactly.
//!
//! Memos store **row vectors** (one source row per LHS atom), not bindings:
//! row ids plus relation content identify a match independently of how the
//! value pool interned symbols, so memos stay valid across the re-parse
//! that every edit performs.

use std::collections::{HashMap, HashSet};

use routes_mapping::Tgd;
use routes_model::{Instance, RelId, Term, TupleId, Value};
use routes_query::{anchored_plan, unify_atom, Bindings, EvalOptions, MatchIter};

/// Memoized LHS matches of one s-t tgd, as row vectors in the engine's
/// enumeration order.
#[derive(Debug, Clone)]
pub struct TgdMemo {
    /// The tgd rendered back to text — memos are keyed by tgd *name*, and
    /// the signature detects a dropped-then-readded tgd reusing a name.
    pub sig: String,
    /// One row vector per match: `vectors[k][i]` is the source row the
    /// `i`-th LHS atom is matched against.
    pub vectors: Vec<Vec<u32>>,
}

/// All memos of a session, keyed by tgd name.
#[derive(Debug, Clone, Default)]
pub struct IncrState {
    /// Per-s-t-tgd match memos.
    pub memos: HashMap<String, TgdMemo>,
}

impl IncrState {
    /// Total memoized match count (for reporting).
    pub fn total_matches(&self) -> usize {
        self.memos.values().map(|m| m.vectors.len()).sum()
    }
}

/// The image row of `atom` under total-on-lhs bindings `b`, recovered via
/// the instance's dedup table. Panics if `b` does not ground the atom or the
/// image tuple is absent — both impossible for bindings produced by matching
/// `atom` against `inst`.
fn image_row(inst: &Instance, atom: &routes_model::Atom, b: &Bindings) -> u32 {
    let mut buf: Vec<Value> = Vec::with_capacity(atom.terms.len());
    for term in &atom.terms {
        buf.push(match term {
            Term::Const(c) => *c,
            Term::Var(v) => b.get(*v).expect("LHS match binds every LHS variable"),
        });
    }
    inst.find(atom.rel, &buf)
        .expect("a match's atom image is a stored tuple")
        .row
}

/// Recover the full row vector of a total LHS match.
fn vector_of(inst: &Instance, lhs: &[routes_model::Atom], b: &Bindings) -> Vec<u32> {
    lhs.iter().map(|atom| image_row(inst, atom, b)).collect()
}

/// Enumerate *all* LHS matches of `tgd` over `source` as row vectors, in the
/// chase engine's order (the cold path, and the oracle the warm path must
/// reproduce).
pub fn full_vectors(source: &Instance, tgd: &Tgd) -> Vec<Vec<u32>> {
    let init = Bindings::new(tgd.var_count());
    let Some(ap) = anchored_plan(source, tgd.lhs(), &init) else {
        unreachable!("tgd LHSes are non-empty by construction");
    };
    let anchor = &tgd.lhs()[ap.outer];
    let mut out = Vec::new();
    for &row in &ap.rows {
        let mut b = init.clone();
        let tuple = source.tuple(TupleId {
            rel: anchor.rel,
            row,
        });
        if !unify_atom(anchor, &tuple, &mut b) {
            continue;
        }
        let mut it = MatchIter::with_plan(
            source,
            tgd.lhs(),
            b,
            ap.suffix.clone(),
            EvalOptions::default(),
        );
        while let Some(m) = it.next_match() {
            out.push(vector_of(source, tgd.lhs(), m));
        }
    }
    out
}

/// Enumerate the matches of `tgd` over `source` that use at least one row
/// from `inserted` (new-coordinate rows per relation), each exactly once:
/// a found vector is accepted only at the anchor position that is its
/// *first* LHS position holding an inserted row.
pub fn delta_vectors(
    source: &Instance,
    tgd: &Tgd,
    inserted: &HashMap<RelId, HashSet<u32>>,
) -> Vec<Vec<u32>> {
    let lhs = tgd.lhs();
    let init = Bindings::new(tgd.var_count());
    let is_inserted =
        |i: usize, row: u32| inserted.get(&lhs[i].rel).is_some_and(|s| s.contains(&row));
    let mut out = Vec::new();
    for p in 0..lhs.len() {
        let Some(rows) = inserted.get(&lhs[p].rel) else {
            continue;
        };
        let mut rows: Vec<u32> = rows.iter().copied().collect();
        rows.sort_unstable();
        // The remaining atoms in index order; any fixed order works — the
        // caller sorts the union by the new plan's key afterwards.
        let order: Vec<usize> = (0..lhs.len()).filter(|&i| i != p).collect();
        for u in rows {
            let mut b = init.clone();
            let tuple = source.tuple(TupleId {
                rel: lhs[p].rel,
                row: u,
            });
            if !unify_atom(&lhs[p], &tuple, &mut b) {
                continue;
            }
            let mut it =
                MatchIter::with_plan(source, lhs, b, order.clone(), EvalOptions::default());
            while let Some(m) = it.next_match() {
                let v = vector_of(source, lhs, m);
                let first = (0..lhs.len()).find(|&i| is_inserted(i, v[i]));
                if first == Some(p) && v[p] == u {
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Sort `vectors` into the chase engine's enumeration order over `source`:
/// lexicographic by the anchored plan's atom order.
pub fn sort_to_plan_order(source: &Instance, tgd: &Tgd, vectors: &mut [Vec<u32>]) {
    let init = Bindings::new(tgd.var_count());
    let Some(ap) = anchored_plan(source, tgd.lhs(), &init) else {
        return;
    };
    let mut key_order = Vec::with_capacity(tgd.lhs().len());
    key_order.push(ap.outer);
    key_order.extend(ap.suffix.iter().copied());
    vectors.sort_by(|a, b| {
        for &i in &key_order {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Convert row vectors into the per-match [`Bindings`] the chase engine
/// fires with.
pub fn vectors_to_bindings(source: &Instance, tgd: &Tgd, vectors: &[Vec<u32>]) -> Vec<Bindings> {
    vectors
        .iter()
        .map(|v| {
            let mut b = Bindings::new(tgd.var_count());
            for (atom, &row) in tgd.lhs().iter().zip(v) {
                let ok = unify_atom(atom, &source.tuple(TupleId { rel: atom.rel, row }), &mut b);
                assert!(ok, "memo row vectors are LHS matches");
            }
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_mapping::parse_st_tgd;
    use routes_model::{Schema, ValuePool};

    fn setup() -> (Schema, Schema, Instance, ValuePool, Tgd) {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let tgd = parse_st_tgd(&s, &t, &mut pool, "j: S(x, y) & S(y, z) -> T(x, z)").unwrap();
        let mut i = Instance::new(&s);
        let e = s.rel_id("S").unwrap();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
            i.insert_ok(e, &[Value::Int(a), Value::Int(b)]);
        }
        (s, t, i, pool, tgd)
    }

    #[test]
    fn full_vectors_match_the_sequential_join() {
        let (_, _, i, _, tgd) = setup();
        let vectors = full_vectors(&i, &tgd);
        // Paths of length two: 0->1->2, 1->2->3, 0->2->3.
        assert_eq!(vectors.len(), 3);
        // Each vector grounds to a valid match.
        let bs = vectors_to_bindings(&i, &tgd, &vectors);
        assert_eq!(bs.len(), 3);
        assert!(bs.iter().all(|b| {
            tgd.lhs()
                .iter()
                .all(|a| a.vars().all(|v| b.get(v).is_some()))
        }));
    }

    #[test]
    fn delta_plus_survivors_equals_full_after_insert() {
        let (s, _, mut i, _, tgd) = setup();
        let e = s.rel_id("S").unwrap();
        let old = full_vectors(&i, &tgd);
        // Insert 3->0, closing cycles: new two-paths through it.
        let new_row = i.insert_ok(e, &[Value::Int(3), Value::Int(0)]).row;
        let mut inserted: HashMap<RelId, HashSet<u32>> = HashMap::new();
        inserted.entry(e).or_default().insert(new_row);
        let mut merged = old.clone();
        merged.extend(delta_vectors(&i, &tgd, &inserted));
        sort_to_plan_order(&i, &tgd, &mut merged);
        assert_eq!(merged, full_vectors(&i, &tgd));
    }

    #[test]
    fn delta_counts_each_new_match_once_with_repeated_relations() {
        let (s, _, mut i, _, tgd) = setup();
        let e = s.rel_id("S").unwrap();
        // Insert two rows that join with each other: the match using both
        // must be found exactly once.
        let r1 = i.insert_ok(e, &[Value::Int(10), Value::Int(11)]).row;
        let r2 = i.insert_ok(e, &[Value::Int(11), Value::Int(12)]).row;
        let mut inserted: HashMap<RelId, HashSet<u32>> = HashMap::new();
        inserted.entry(e).or_default().extend([r1, r2]);
        let delta = delta_vectors(&i, &tgd, &inserted);
        let both = delta
            .iter()
            .filter(|v| v.contains(&r1) && v.contains(&r2))
            .count();
        assert_eq!(both, 1, "delta: {delta:?}");
    }
}
