//! The scenario text editor: applying [`EditOp`] batches to a scenario file.
//!
//! The canonical state of a live session is its scenario **text** — exactly
//! what `load_scenario_str` parses. Every mutation is therefore expressed as
//! a text edit, and the edited text is re-parsed through the one loader the
//! whole workspace shares. That keeps the incremental path honest: whatever
//! the delta machinery computes must equal what a from-scratch load of the
//! edited text produces, byte for byte.
//!
//! Supported ops (see [`EditOp`]):
//!
//! * `InsertTuple` — appends a `source data:` section holding the new row at
//!   the end of the document. The loader processes source rows in document
//!   order across all `source data:` sections, so appending at the end is
//!   exactly "insert after every existing row".
//! * `DeleteTuple` — removes the `row`-th distinct tuple of `relation`
//!   (instance row ids equal first-occurrence order of distinct rows), along
//!   with every duplicate data line spelling the same tuple.
//! * `AddTgd` — appends a `dependencies:` section holding the new
//!   dependency.
//! * `DropTgd` — removes the named dependency's logical unit, including its
//!   continuation lines.
//!
//! Scenarios using xml sections or an explicit `target data:` section are
//! rejected: edits require the solution to be chase-derived so the delta
//! machinery can replay it.

use std::collections::HashMap;
use std::fmt;

use routes_cli::loader::{load_scenario_str, LoadedScenario};
use routes_store::EditOp;

/// Why an edit batch was rejected. All variants map to a client error (the
/// scenario text is left untouched).
#[derive(Debug)]
pub enum EditError {
    /// The scenario uses a feature edits do not support (xml sections,
    /// explicit target data).
    Unsupported(String),
    /// `delete_tuple` named a relation with no source-data rows.
    UnknownRelation(String),
    /// `delete_tuple` row index past the relation's current row count.
    RowOutOfRange {
        /// The relation named by the op.
        relation: String,
        /// The requested row.
        row: u32,
        /// The relation's current distinct-row count.
        len: u32,
    },
    /// `drop_tgd` named a dependency that does not exist.
    UnknownTgd(String),
    /// The edited text no longer loads (bad inserted row or dependency).
    Invalid(String),
    /// The edited text loads but the re-chase failed (e.g. chase failure
    /// from an egd equating constants, or the round limit).
    Chase(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::Unsupported(m) => write!(f, "unsupported scenario for edits: {m}"),
            EditError::UnknownRelation(r) => write!(f, "no source data rows for relation `{r}`"),
            EditError::RowOutOfRange { relation, row, len } => {
                write!(f, "row {row} out of range for `{relation}` ({len} rows)")
            }
            EditError::UnknownTgd(n) => write!(f, "no dependency named `{n}`"),
            EditError::Invalid(m) => write!(f, "edited scenario does not load: {m}"),
            EditError::Chase(m) => write!(f, "chase of edited scenario failed: {m}"),
        }
    }
}

impl std::error::Error for EditError {}

/// Which section a scenario line lives in. Mirrors the loader's section
/// tracking (the subset edits support).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    SourceSchema,
    TargetSchema,
    Dependencies,
    SourceData,
}

/// Classify a comment-stripped, trimmed line as a section header, mirroring
/// the loader. Returns `Err` for headers edits do not support.
fn section_header(line: &str) -> Result<Option<Section>, EditError> {
    let lowered = line.to_ascii_lowercase();
    if !lowered.ends_with(':') {
        return Ok(None);
    }
    match lowered.trim_end_matches(':') {
        "source schema" => Ok(Some(Section::SourceSchema)),
        "target schema" => Ok(Some(Section::TargetSchema)),
        "dependencies" => Ok(Some(Section::Dependencies)),
        "source data" => Ok(Some(Section::SourceData)),
        "source xml schema" | "target xml schema" | "source xml data" => Err(
            EditError::Unsupported("xml scenarios cannot be edited".into()),
        ),
        "target data" => Err(EditError::Unsupported(
            "scenarios with explicit target data cannot be edited (the solution must be chased)"
                .into(),
        )),
        _ => Ok(None),
    }
}

/// `#` starts a comment unless inside a quoted string (loader rule).
fn strip_comment(line: &str) -> &str {
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match (in_quote, c) {
            (Some(q), c) if c == q => in_quote = None,
            (None, '\'') | (None, '"') => in_quote = Some(c),
            (None, '#') => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split `Name( inner )` (loader rule).
fn split_call(line: &str) -> Option<(&str, &str)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close < open || !line[close + 1..].trim().is_empty() {
        return None;
    }
    let name = line[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((name, &line[open + 1..close]))
}

/// Split on commas outside quotes (loader rule).
fn split_values(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quote: Option<char> = None;
    for (i, c) in inner.char_indices() {
        match (in_quote, c) {
            (Some(q), c) if c == q => in_quote = None,
            (None, '\'') | (None, '"') => in_quote = Some(c),
            (None, ',') => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

/// Canonicalize one data-value token with the loader's value syntax, tagged
/// by type so `5`, `'5'`, and a null labeled `5x` can never alias:
/// `i:` integers, `s:` string constants, `n:` labeled nulls.
fn canon_token(token: &str) -> Option<String> {
    let token = token.trim();
    if token.is_empty() {
        return None;
    }
    if let Ok(n) = token.parse::<i64>() {
        return Some(format!("i:{n}"));
    }
    let chars: Vec<char> = token.chars().collect();
    if chars.len() >= 2
        && (chars[0] == '\'' || chars[0] == '"')
        && chars[chars.len() - 1] == chars[0]
    {
        let inner: String = chars[1..chars.len() - 1].iter().collect();
        return Some(format!("s:{inner}"));
    }
    if chars[0].is_alphabetic() || chars[0] == '_' {
        return Some(format!("n:{token}"));
    }
    None
}

/// Canonicalize a source-data line to `(relation, canonical row render)`.
/// `None` when the line does not parse as a call (the loader would reject
/// it; leave it in place for the final validation pass to report).
pub(crate) fn canon_data_line(line: &str) -> Option<(String, String)> {
    let (name, inner) = split_call(line)?;
    let values: Option<Vec<String>> = split_values(inner).into_iter().map(canon_token).collect();
    Some((name.to_owned(), values?.join(",")))
}

/// Per-line classification of a scenario document.
struct Scan {
    /// Section of each line (headers and blanks carry the section they
    /// *introduce*/live in, but are not content).
    section: Vec<Section>,
    /// Whether the line is section content (non-blank, not a header).
    content: Vec<bool>,
    /// Comment-stripped, trimmed text of each line.
    text: Vec<String>,
}

fn scan(lines: &[&str]) -> Result<Scan, EditError> {
    let mut section = Section::None;
    let mut out = Scan {
        section: Vec::with_capacity(lines.len()),
        content: Vec::with_capacity(lines.len()),
        text: Vec::with_capacity(lines.len()),
    };
    for raw in lines {
        let text = strip_comment(raw).trim().to_owned();
        if text.is_empty() {
            out.section.push(section);
            out.content.push(false);
            out.text.push(text);
            continue;
        }
        if let Some(new_section) = section_header(&text)? {
            section = new_section;
            out.section.push(section);
            out.content.push(false);
            out.text.push(text);
            continue;
        }
        out.section.push(section);
        out.content.push(true);
        out.text.push(text);
    }
    Ok(out)
}

/// Group the dependencies-section lines of a scanned document into logical
/// units using the loader's continuation rules. Returns `(merged text,
/// physical line indices)` per unit, in document order.
fn dependency_units(s: &Scan) -> Vec<(String, Vec<usize>)> {
    let mut units: Vec<(String, Vec<usize>)> = Vec::new();
    for i in 0..s.text.len() {
        if !s.content[i] || s.section[i] != Section::Dependencies {
            continue;
        }
        let line = &s.text[i];
        let starts_continuation = line.starts_with("->")
            || line.starts_with('→')
            || line.starts_with('&')
            || line.starts_with('∧');
        let prev_incomplete = units
            .last()
            .is_some_and(|(prev, _): &(String, Vec<usize>)| {
                let no_arrow = !prev.contains("->") && !prev.contains('→');
                no_arrow
                    || prev.trim_end().ends_with('&')
                    || prev.trim_end().ends_with('∧')
                    || prev.trim_end().ends_with("->")
                    || prev.trim_end().ends_with('→')
                    || prev.trim_end().ends_with(',')
            });
        match units.last_mut() {
            Some((prev, idxs)) if starts_continuation || prev_incomplete => {
                prev.push(' ');
                prev.push_str(line);
                idxs.push(i);
            }
            _ => units.push((line.clone(), vec![i])),
        }
    }
    units
}

/// Apply one op to the document (a vector of owned lines).
fn apply_one(lines: &mut Vec<String>, op: &EditOp) -> Result<(), EditError> {
    match op {
        EditOp::InsertTuple { line } => {
            lines.push("source data:".to_owned());
            lines.push(format!("  {line}"));
            Ok(())
        }
        EditOp::AddTgd { line } => {
            lines.push("dependencies:".to_owned());
            lines.push(format!("  {line}"));
            Ok(())
        }
        EditOp::DeleteTuple { relation, row } => {
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let s = scan(&refs)?;
            // Distinct tuples of `relation` in first-occurrence order — the
            // loader's instance assigns row ids in exactly this order.
            let mut distinct: Vec<(String, Vec<usize>)> = Vec::new();
            let mut by_render: HashMap<String, usize> = HashMap::new();
            for i in 0..s.text.len() {
                if !s.content[i] || s.section[i] != Section::SourceData {
                    continue;
                }
                let Some((rel, render)) = canon_data_line(&s.text[i]) else {
                    continue;
                };
                if rel != *relation {
                    continue;
                }
                match by_render.get(&render) {
                    Some(&k) => distinct[k].1.push(i),
                    None => {
                        by_render.insert(render.clone(), distinct.len());
                        distinct.push((render, vec![i]));
                    }
                }
            }
            if distinct.is_empty() {
                return Err(EditError::UnknownRelation(relation.clone()));
            }
            let Some((_, victim_lines)) = distinct.get(*row as usize) else {
                return Err(EditError::RowOutOfRange {
                    relation: relation.clone(),
                    row: *row,
                    len: distinct.len() as u32,
                });
            };
            let mut doomed: Vec<usize> = victim_lines.clone();
            doomed.sort_unstable();
            for &i in doomed.iter().rev() {
                lines.remove(i);
            }
            Ok(())
        }
        EditOp::DropTgd { name } => {
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            let s = scan(&refs)?;
            let units = dependency_units(&s);
            let unit = units.iter().find(|(merged, _)| {
                merged
                    .split_once(':')
                    .is_some_and(|(n, _)| n.trim() == name)
            });
            let Some((_, idxs)) = unit else {
                return Err(EditError::UnknownTgd(name.clone()));
            };
            let mut doomed = idxs.clone();
            doomed.sort_unstable();
            for &i in doomed.iter().rev() {
                lines.remove(i);
            }
            Ok(())
        }
    }
}

/// Apply an op batch to scenario text. Returns the edited text and its
/// parse; the input text is untouched on error. The loaded scenario is
/// guaranteed to have no explicit target and no xml sections, so the
/// solution is always chase-derived.
pub fn apply_edits(text: &str, ops: &[EditOp]) -> Result<(String, LoadedScenario), EditError> {
    // Up-front structural gate (also catches unsupported sections the ops
    // never go near).
    let lines: Vec<&str> = text.lines().collect();
    scan(&lines)?;

    let mut doc: Vec<String> = lines.iter().map(|&l| l.to_owned()).collect();
    for op in ops {
        apply_one(&mut doc, op)?;
    }
    let mut new_text = doc.join("\n");
    new_text.push('\n');
    let loaded = load_scenario_str(&new_text).map_err(|e| EditError::Invalid(e.to_string()))?;
    debug_assert!(loaded.target.is_none(), "target data rejected by scan");
    Ok((new_text, loaded))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "\
source schema:
  S(a, b)
  R(b, c)
target schema:
  T(a, c)
dependencies:
  m1: S(x, y) & R(y, z) -> T(x, z)
source data:
  S(1, 2)
  S(3, 4)   # a comment
  S(1, 2)   # duplicate of row 0
  R(2, 9)
";

    #[test]
    fn insert_appends_a_row_at_the_end() {
        let op = EditOp::InsertTuple {
            line: "S(7, 8)".into(),
        };
        let (text, loaded) = apply_edits(BASE, &[op]).unwrap();
        assert!(text.ends_with("source data:\n  S(7, 8)\n"));
        let s = loaded.mapping.source().rel_id("S").unwrap();
        assert_eq!(loaded.source.rel_len(s), 3);
        // The new row is the last one.
        let last = loaded
            .source
            .tuple(routes_model::TupleId { rel: s, row: 2 });
        assert_eq!(last[0], routes_model::Value::Int(7));
    }

    #[test]
    fn delete_removes_the_indexed_distinct_row_and_its_duplicates() {
        let op = EditOp::DeleteTuple {
            relation: "S".into(),
            row: 0,
        };
        let (text, loaded) = apply_edits(BASE, &[op]).unwrap();
        assert!(!text.contains("S(1, 2)"));
        assert!(text.contains("S(3, 4)"));
        let s = loaded.mapping.source().rel_id("S").unwrap();
        assert_eq!(loaded.source.rel_len(s), 1);
        // Row ids shift down: S(3, 4) is now row 0.
        let first = loaded
            .source
            .tuple(routes_model::TupleId { rel: s, row: 0 });
        assert_eq!(first[0], routes_model::Value::Int(3));
    }

    #[test]
    fn delete_errors_carry_context() {
        let err = apply_edits(
            BASE,
            &[EditOp::DeleteTuple {
                relation: "Nope".into(),
                row: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, EditError::UnknownRelation(_)), "{err}");
        let err = apply_edits(
            BASE,
            &[EditOp::DeleteTuple {
                relation: "S".into(),
                row: 9,
            }],
        )
        .unwrap_err();
        assert!(
            matches!(err, EditError::RowOutOfRange { len: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn add_and_drop_tgd_round_trip() {
        let add = EditOp::AddTgd {
            line: "m2: S(x, y) -> T(x, y)".into(),
        };
        let (text, loaded) = apply_edits(BASE, &[add]).unwrap();
        assert_eq!(loaded.mapping.st_tgds().len(), 2);
        assert_eq!(loaded.mapping.st_tgds()[1].name(), "m2");

        let drop = EditOp::DropTgd { name: "m2".into() };
        let (_, loaded2) = apply_edits(&text, &[drop]).unwrap();
        assert_eq!(loaded2.mapping.st_tgds().len(), 1);

        let err = apply_edits(BASE, &[EditOp::DropTgd { name: "zz".into() }]).unwrap_err();
        assert!(matches!(err, EditError::UnknownTgd(_)), "{err}");
    }

    #[test]
    fn drop_tgd_removes_continuation_lines() {
        let text = "\
source schema:
  S(a, b)
target schema:
  T(a, b)
  U(a)
dependencies:
  m1: S(x, y) &
      S(y, x)
      -> T(x, y)
  m2: S(x, y) -> U(x)
source data:
  S(1, 1)
";
        let (edited, loaded) = apply_edits(text, &[EditOp::DropTgd { name: "m1".into() }]).unwrap();
        assert_eq!(loaded.mapping.st_tgds().len(), 1);
        assert_eq!(loaded.mapping.st_tgds()[0].name(), "m2");
        assert!(!edited.contains("T(x, y)"));
    }

    #[test]
    fn unsupported_scenarios_are_rejected() {
        let with_target = format!("{BASE}target data:\n  T(1, 9)\n");
        let err = apply_edits(&with_target, &[]).unwrap_err();
        assert!(matches!(err, EditError::Unsupported(_)), "{err}");

        let bad_insert = EditOp::InsertTuple {
            line: "S(1)".into(),
        };
        let err = apply_edits(BASE, &[bad_insert]).unwrap_err();
        assert!(matches!(err, EditError::Invalid(_)), "{err}");
    }

    #[test]
    fn ops_apply_sequentially_within_a_batch() {
        // Delete row 0, then row 0 again: the second delete names the row
        // that shifted down.
        let ops = vec![
            EditOp::DeleteTuple {
                relation: "S".into(),
                row: 0,
            },
            EditOp::DeleteTuple {
                relation: "S".into(),
                row: 0,
            },
        ];
        let (_, loaded) = apply_edits(BASE, &ops).unwrap();
        let s = loaded.mapping.source().rel_id("S").unwrap();
        assert_eq!(loaded.source.rel_len(s), 0);
    }

    #[test]
    fn canon_tags_prevent_type_aliasing() {
        assert_eq!(canon_data_line("S(5)"), Some(("S".into(), "i:5".into())));
        assert_eq!(canon_data_line("S('5')"), Some(("S".into(), "s:5".into())));
        assert_eq!(canon_data_line("S(n5)"), Some(("S".into(), "n:n5".into())));
        assert_ne!(canon_data_line("S(5)"), canon_data_line("S('5')"));
    }
}
