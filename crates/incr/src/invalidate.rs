//! Surgical route-forest invalidation after an edit batch.
//!
//! A cached [`RouteForest`] survives an edit iff a fresh forest computation
//! for the same selection over the edited session would produce it byte for
//! byte. Sufficient conditions, checked per forest:
//!
//! * the batch did not change the dependency set (forests cache per-tgd
//!   branch lists; a mapping change invalidates them wholesale);
//! * every source fact referenced by any branch is at a stable coordinate
//!   (not deleted, not index-shifted) — existing branches stay valid homs;
//! * every target tuple the forest mentions (roots, explored nodes, branch
//!   children, rhs images) is content-stable at its coordinate and is not
//!   in the batch's *seed set* — the rhs images of homs anchored on
//!   inserted source rows or changed/new target rows, i.e. every node that
//!   may have gained a branch;
//! * every raw `Value` stored in branch homs renders identically under the
//!   old and new pools (pool interning is injective, so render-stability at
//!   the same bits implies the fresh forest stores the same bits).
//!
//! Branch *removal* needs no separate check: a removed branch referenced a
//! tuple that changed, which already trips the conditions above. With all
//! conditions met, the fresh exploration visits the same nodes in the same
//! order with the same branch lists, so keeping the memoized forest (and
//! any `cached: true` answers derived from it) is sound.

use std::collections::HashSet;

use routes_core::RouteForest;
use routes_model::{Instance, Side, TupleId, Value, ValuePool};

use crate::apply::EditApply;

/// Whether a raw value renders identically under both pools (with bounds
/// guards: a symbol or null id the new pool never interned fails cheaply).
fn value_stable(old_pool: &ValuePool, new_pool: &ValuePool, v: Value) -> bool {
    match v {
        Value::Int(_) => true,
        Value::Str(s) => {
            (s.0 as usize) < new_pool.num_strings()
                && old_pool.value_to_string(v) == new_pool.value_to_string(v)
        }
        Value::Null(n) => {
            (n.0 as usize) < new_pool.num_nulls()
                && old_pool.value_to_string(v) == new_pool.value_to_string(v)
        }
    }
}

/// Whether `forest` (built before the batch) is still byte-identical to
/// what a fresh computation over `apply.scenario` would produce.
pub fn forest_survives(
    forest: &RouteForest,
    apply: &EditApply,
    old_pool: &ValuePool,
    new_source: &Instance,
    new_target: &Instance,
) -> bool {
    if apply.mapping_changed {
        return false;
    }
    let new_pool = &apply.scenario.pool;
    let tgt_ok = |t: &TupleId| {
        t.row < new_target.rel_len(t.rel)
            && !apply.touched_tgt.contains(t)
            && !apply.seed_affected.contains(t)
    };
    let src_ok = |t: &TupleId| t.row < new_source.rel_len(t.rel) && !apply.touched_src.contains(t);
    if !forest.roots.iter().all(tgt_ok) {
        return false;
    }
    for (node, branches) in &forest.branches {
        if !tgt_ok(node) {
            return false;
        }
        for branch in branches {
            if !branch.rhs_tuples.iter().all(tgt_ok) {
                return false;
            }
            for fact in &branch.lhs_facts {
                let ok = match fact.side {
                    Side::Source => src_ok(&fact.id),
                    Side::Target => tgt_ok(&fact.id),
                };
                if !ok {
                    return false;
                }
            }
            if !branch
                .hom
                .iter()
                .all(|&v| value_stable(old_pool, new_pool, v))
            {
                return false;
            }
        }
    }
    true
}

/// Partition a cache's selections: which survive the batch. Returns the
/// keys to keep (callers drop the rest).
pub fn surviving_selections<'a, I>(
    forests: I,
    apply: &EditApply,
    old_pool: &ValuePool,
) -> Vec<Vec<TupleId>>
where
    I: IntoIterator<Item = (&'a Vec<TupleId>, &'a RouteForest)>,
{
    let mut keep = Vec::new();
    let mut seen: HashSet<Vec<TupleId>> = HashSet::new();
    for (selection, forest) in forests {
        if seen.insert(selection.clone())
            && forest_survives(
                forest,
                apply,
                old_pool,
                &apply.scenario.source,
                &apply.scenario.target,
            )
        {
            keep.push(selection.clone());
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_batch;
    use crate::memo::IncrState;
    use routes_chase::ChaseOptions;
    use routes_cli::{load_scenario_str, prepare_scenario_with, PreparedScenario};
    use routes_core::{compute_all_routes, RouteEnv};
    use routes_pool::Pool;
    use routes_store::EditOp;

    const BASE: &str = "\
source schema:
  S(a, b)
  M(a)
target schema:
  T(a, b)
  V(a)
dependencies:
  j: S(x, y) & S(y, z) -> T(x, z)
  cp: M(x) -> V(x)
source data:
  S(0, 1)
  S(1, 2)
  S(2, 3)
  M(7)
";

    fn prepare(text: &str) -> PreparedScenario {
        let loaded = load_scenario_str(text).unwrap();
        prepare_scenario_with(loaded, ChaseOptions::fresh(), &Pool::sequential()).unwrap()
    }

    fn forest_for(p: &PreparedScenario, sel: &[TupleId]) -> RouteForest {
        let env = RouteEnv::new(&p.mapping, &p.source, &p.target);
        compute_all_routes(env, sel)
    }

    #[test]
    fn untouched_forest_survives_and_equals_fresh_recompute() {
        let old = prepare(BASE);
        let v = old.mapping.target().rel_id("V").unwrap();
        let v7 = old.target.find(v, &[routes_model::Value::Int(7)]).unwrap();
        let forest = forest_for(&old, &[v7]);

        // An edit far away from M/V: insert an S row.
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &[EditOp::InsertTuple {
                line: "S(8, 9)".into(),
            }],
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert!(forest_survives(
            &forest,
            &apply,
            &old.pool,
            &apply.scenario.source,
            &apply.scenario.target
        ));
        // The survivor is byte-identical to a fresh forest on the edited
        // session.
        let fresh = forest_for(&apply.scenario, &[v7]);
        assert_eq!(forest.roots, fresh.roots);
        assert_eq!(forest.order, fresh.order);
        assert_eq!(forest.branches, fresh.branches);
    }

    #[test]
    fn touched_and_mapping_changed_forests_die() {
        let old = prepare(BASE);
        let t = old.mapping.target().rel_id("T").unwrap();
        let t02 = old
            .target
            .find(
                t,
                &[routes_model::Value::Int(0), routes_model::Value::Int(2)],
            )
            .unwrap();
        let forest = forest_for(&old, &[t02]);

        // Deleting S(1, 2) kills T(0, 2)'s branch (and the tuple).
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &[EditOp::DeleteTuple {
                relation: "S".into(),
                row: 1,
            }],
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert!(!forest_survives(
            &forest,
            &apply,
            &old.pool,
            &apply.scenario.source,
            &apply.scenario.target
        ));

        // Any mapping change invalidates wholesale.
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &[EditOp::AddTgd {
                line: "g1: M(x) -> T(x, x)".into(),
            }],
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert!(!forest_survives(
            &forest,
            &apply,
            &old.pool,
            &apply.scenario.source,
            &apply.scenario.target
        ));
    }

    #[test]
    fn forest_whose_node_gains_a_branch_dies() {
        let old = prepare(BASE);
        let v = old.mapping.target().rel_id("V").unwrap();
        let v7 = old.target.find(v, &[routes_model::Value::Int(7)]).unwrap();
        let forest = forest_for(&old, &[v7]);
        // Inserting S(0, 9) and S(9, 2) creates the new j-match
        // S(0,9) & S(9,2) -> T(0, 2): a second branch on the *existing*
        // tuple T(0, 2), whose forest must die, while V(7)'s survives.
        let t = old.mapping.target().rel_id("T").unwrap();
        let t02 = old
            .target
            .find(
                t,
                &[routes_model::Value::Int(0), routes_model::Value::Int(2)],
            )
            .unwrap();
        let forest_t = forest_for(&old, &[t02]);
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &[
                EditOp::InsertTuple {
                    line: "S(0, 9)".into(),
                },
                EditOp::InsertTuple {
                    line: "S(9, 2)".into(),
                },
            ],
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        assert!(apply.seed_affected.contains(&t02), "T(0,2) gains a branch");
        assert!(!forest_survives(
            &forest_t,
            &apply,
            &old.pool,
            &apply.scenario.source,
            &apply.scenario.target
        ));
        // The V(7) forest is untouched by the same batch.
        assert!(forest_survives(
            &forest,
            &apply,
            &old.pool,
            &apply.scenario.source,
            &apply.scenario.target
        ));
    }
}
