//! Incremental maintenance for live route-debugging sessions.
//!
//! The paper's workflow is debug–edit–re-run: the user inspects routes,
//! adjusts the mapping or the data, and looks again. This crate makes the
//! edit step *live* — a batch of [`EditOp`](routes_store::EditOp)s applied
//! to a prepared session without re-chasing from scratch — while keeping
//! the one invariant the whole workspace is built on: every observable
//! byte (solution, statistics, routes) equals what a from-scratch load of
//! the edited scenario would produce, at every worker count.
//!
//! * [`edit`] — the text-edit engine. The session's canonical state is its
//!   scenario text; ops are text edits, validated by re-parsing.
//! * [`memo`] — per-tgd LHS match memos as pool-independent row vectors,
//!   maintained semi-naively: survivors are remapped, only *inserted* rows
//!   are joined, and one sort restores the engine's enumeration order.
//! * [`apply`] — the batch pipeline: edit text → re-parse → maintain memos
//!   → replay the chase through
//!   [`chase_with_st_matches`](routes_chase::chase_with_st_matches) →
//!   diff the solutions and compute the invalidation change-sets.
//! * [`invalidate`] — surgical route-forest invalidation: a cached forest
//!   survives iff a fresh computation would reproduce it byte for byte.

pub mod apply;
pub mod edit;
pub mod invalidate;
pub mod memo;

pub use apply::{apply_batch, EditApply};
pub use edit::{apply_edits, EditError};
pub use invalidate::{forest_survives, surviving_selections};
pub use memo::{IncrState, TgdMemo};
