//! Applying an edit batch to a prepared session: re-parse, delta-chase over
//! memoized matches, and change-set extraction for forest invalidation.
//!
//! The pipeline (per batch, not per op):
//!
//! 1. Apply the ops to the scenario text and re-parse it — the re-parsed
//!    pool/mapping/source are *canonical*: exactly what a from-scratch load
//!    produces.
//! 2. Diff the source instances by content (type-tagged canonical renders;
//!    set semantics make renders unique per relation) into a row mapping,
//!    the inserted-row set, and the touched-row set.
//! 3. Maintain each s-t tgd's match memo: remap survivors to new row ids,
//!    join only the inserted rows for new matches
//!    ([`delta_vectors`](crate::memo::delta_vectors)), and sort the union
//!    into the engine's enumeration order. Unknown or re-signed tgds fall
//!    back to a full single-tgd enumeration.
//! 4. Replay the chase through
//!    [`chase_with_st_matches`](routes_chase::chase_with_st_matches), which
//!    fires the memoized matches in order — producing a solution
//!    byte-identical to a from-scratch chase of the edited scenario, by
//!    construction, at every worker count.
//! 5. Diff the old and new solutions and compute the seed set of target
//!    tuples that may have *gained* branches, for surgical route-forest
//!    invalidation (see [`crate::invalidate`]).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use routes_chase::{canon_value, chase_with_st_matches, target_row_diff, ChaseOptions};
use routes_cli::PreparedScenario;
use routes_core::{AnchorSide, FindHom, RouteEnv};
use routes_mapping::{is_weakly_acyclic, tgd_to_string, TgdId};
use routes_model::{Fact, Instance, RelId, TupleId, ValuePool};
use routes_pool::Pool;
use routes_query::Bindings;
use routes_store::EditOp;

use crate::edit::{apply_edits, EditError};
use crate::memo::{
    delta_vectors, full_vectors, sort_to_plan_order, vectors_to_bindings, IncrState, TgdMemo,
};

/// The result of applying one edit batch.
pub struct EditApply {
    /// The edited scenario text (the session's new canonical state).
    pub text: String,
    /// The re-prepared scenario (chased incrementally).
    pub scenario: PreparedScenario,
    /// Updated match memos for the next batch.
    pub state: IncrState,
    /// How many s-t tgds were maintained from a warm memo.
    pub memo_hits: usize,
    /// How many needed a full re-enumeration (cold, renamed, or re-signed).
    pub memo_misses: usize,
    /// Whether the batch changed the dependency set (add/drop tgd); forests
    /// are invalidated wholesale in that case.
    pub mapping_changed: bool,
    /// Source rows (old coordinates) that were deleted or index-shifted:
    /// any forest referencing one is stale.
    pub touched_src: HashSet<TupleId>,
    /// Target rows (old coordinates) whose content changed or vanished.
    pub touched_tgt: HashSet<TupleId>,
    /// Target rows (new coordinates) that may have *gained* a branch: rhs
    /// images of homs anchored on inserted source rows or on changed/new
    /// target rows. A forest containing one of these (at a stable
    /// coordinate) would be missing branches.
    pub seed_affected: HashSet<TupleId>,
    /// Inserted source rows, for reporting.
    pub source_inserted: usize,
    /// Deleted source rows, for reporting.
    pub source_deleted: usize,
}

/// Per-relation content maps between two instances (keyed by canonical row
/// render, which set semantics make unique within a relation).
struct SourceDiff {
    /// `old_to_new[rel][old_row]` — the old row's new coordinate, if it
    /// still exists.
    old_to_new: Vec<Vec<Option<u32>>>,
    /// New-coordinate rows with no old counterpart, per relation.
    inserted: HashMap<RelId, HashSet<u32>>,
    /// Old-coordinate rows that were deleted or shifted.
    touched: HashSet<TupleId>,
    deleted: usize,
}

fn render_rows(inst: &Instance, pool: &ValuePool, rel: RelId) -> HashMap<String, u32> {
    let mut map = HashMap::new();
    for (tid, vals) in inst.rel_tuples(rel) {
        let render: Vec<String> = vals.iter().map(|&v| canon_value(pool, v)).collect();
        map.insert(render.join(","), tid.row);
    }
    map
}

fn diff_sources(
    old: &Instance,
    old_pool: &ValuePool,
    new: &Instance,
    new_pool: &ValuePool,
    schema: &routes_model::Schema,
) -> SourceDiff {
    let mut diff = SourceDiff {
        old_to_new: Vec::new(),
        inserted: HashMap::new(),
        touched: HashSet::new(),
        deleted: 0,
    };
    for (rel, _) in schema.iter() {
        let new_map = render_rows(new, new_pool, rel);
        let mut matched_new: HashSet<u32> = HashSet::new();
        let mut map = vec![None; old.rel_len(rel) as usize];
        for (tid, vals) in old.rel_tuples(rel) {
            let render: Vec<String> = vals.iter().map(|&v| canon_value(old_pool, v)).collect();
            match new_map.get(&render.join(",")) {
                Some(&new_row) => {
                    map[tid.row as usize] = Some(new_row);
                    matched_new.insert(new_row);
                    if new_row != tid.row {
                        diff.touched.insert(tid);
                    }
                }
                None => {
                    diff.touched.insert(tid);
                    diff.deleted += 1;
                }
            }
        }
        let fresh: HashSet<u32> = (0..new.rel_len(rel))
            .filter(|r| !matched_new.contains(r))
            .collect();
        if !fresh.is_empty() {
            diff.inserted.insert(rel, fresh);
        }
        debug_assert!(diff.old_to_new.len() == rel.0 as usize);
        diff.old_to_new.push(map);
    }
    diff
}

/// Apply one batch of ops to a session. `old_text` must be the text that
/// produced `old` (under the same `options`), and `state` the memo from the
/// previous batch (empty on the first edit). On error the session is
/// untouched — all outputs are freshly built.
pub fn apply_batch(
    old_text: &str,
    old: &PreparedScenario,
    state: &IncrState,
    ops: &[EditOp],
    options: ChaseOptions,
    workers: &Pool,
) -> Result<EditApply, EditError> {
    let (text, loaded) = apply_edits(old_text, ops)?;
    let mut pool = loaded.pool;
    let mapping = loaded.mapping;
    let source = loaded.source;

    let sdiff = diff_sources(&old.source, &old.pool, &source, &pool, mapping.source());
    let mapping_changed = ops
        .iter()
        .any(|op| matches!(op, EditOp::AddTgd { .. } | EditOp::DropTgd { .. }));

    // Maintain per-tgd match memos.
    let mut next = IncrState::default();
    let mut match_lists: Vec<Vec<Bindings>> = Vec::with_capacity(mapping.st_tgds().len());
    let (mut memo_hits, mut memo_misses) = (0usize, 0usize);
    for tgd in mapping.st_tgds() {
        let sig = tgd_to_string(&pool, mapping.source(), mapping.target(), tgd);
        let warm = state.memos.get(tgd.name()).filter(|m| m.sig == sig);
        let mut vectors = match warm {
            Some(memo) => {
                memo_hits += 1;
                let mut vs: Vec<Vec<u32>> = memo
                    .vectors
                    .iter()
                    .filter_map(|v| {
                        v.iter()
                            .zip(tgd.lhs())
                            .map(|(&row, atom)| sdiff.old_to_new[atom.rel.0 as usize][row as usize])
                            .collect()
                    })
                    .collect();
                vs.extend(delta_vectors(&source, tgd, &sdiff.inserted));
                vs
            }
            None => {
                memo_misses += 1;
                full_vectors(&source, tgd)
            }
        };
        sort_to_plan_order(&source, tgd, &mut vectors);
        match_lists.push(vectors_to_bindings(&source, tgd, &vectors));
        next.memos
            .insert(tgd.name().to_owned(), TgdMemo { sig, vectors });
    }

    let start = Instant::now();
    let result =
        chase_with_st_matches(&mapping, &source, &mut pool, options, workers, &match_lists)
            .map_err(|e| EditError::Chase(e.to_string()))?;
    let chase_wall = start.elapsed();
    let stats = result.stats();
    let target = result.target;
    let egd_log = result.egd_log;

    let tdiff = target_row_diff(mapping.target(), &old.target, &old.pool, &target, &pool);

    // Seed set: target tuples that may have gained a branch. Every new
    // branch references at least one inserted source row or changed/new
    // target row, so anchoring findHom on those rows and collecting rhs
    // images covers all of them.
    let mut seed_affected: HashSet<TupleId> = HashSet::new();
    {
        let env = RouteEnv::new(&mapping, &source, &target);
        let mut probe_rhs_images = |id: TgdId, side: AnchorSide, probe: Fact| {
            let homs = FindHom::new(env, id, side, probe).collect_dedup();
            for hom in homs {
                if let Some(rhs) = env.rhs_tuples(id, &hom) {
                    seed_affected.extend(rhs);
                }
            }
        };
        for (rel, rows) in &sdiff.inserted {
            for &row in rows {
                let probe = Fact::source(TupleId { rel: *rel, row });
                for ti in 0..mapping.st_tgds().len() as u32 {
                    probe_rhs_images(TgdId::St(ti), AnchorSide::Lhs, probe);
                }
            }
        }
        for &tid in &tdiff.new {
            let probe = Fact::target(tid);
            for ti in 0..mapping.st_tgds().len() as u32 {
                probe_rhs_images(TgdId::St(ti), AnchorSide::Rhs, probe);
            }
            for ti in 0..mapping.target_tgds().len() as u32 {
                probe_rhs_images(TgdId::Target(ti), AnchorSide::Rhs, probe);
                probe_rhs_images(TgdId::Target(ti), AnchorSide::Lhs, probe);
            }
        }
    }

    let weakly_acyclic = is_weakly_acyclic(&mapping);
    let source_inserted = sdiff.inserted.values().map(HashSet::len).sum();
    let scenario = PreparedScenario {
        pool,
        mapping,
        source,
        target,
        egd_log,
        chase_stats: Some(stats),
        nested_target: None,
        weakly_acyclic,
        chase_wall: Some(chase_wall),
    };
    Ok(EditApply {
        text,
        scenario,
        state: next,
        memo_hits,
        memo_misses,
        mapping_changed,
        touched_src: sdiff.touched,
        touched_tgt: tdiff.old.iter().copied().collect(),
        seed_affected,
        source_inserted,
        source_deleted: sdiff.deleted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_cli::{load_scenario_str, prepare_scenario_with};

    const BASE: &str = "\
source schema:
  S(a, b)
  M(a)
target schema:
  T(a, b)
  V(a)
  U(a, b)
dependencies:
  j: S(x, y) & S(y, z) -> T(x, z)
  cp: M(x) -> V(x)
  ex: S(x, y) -> exists W: U(x, W)
  tt: T(x, z) -> V(z)
source data:
  S(0, 1)
  S(1, 2)
  S(2, 3)
  M(7)
";

    fn prepare(text: &str) -> PreparedScenario {
        let loaded = load_scenario_str(text).unwrap();
        prepare_scenario_with(loaded, ChaseOptions::fresh(), &Pool::sequential()).unwrap()
    }

    fn dump(p: &PreparedScenario) -> String {
        let mut out = String::new();
        for (rel, r) in p.mapping.target().iter() {
            for (tid, vals) in p.target.rel_tuples(rel) {
                let vs: Vec<String> = vals.iter().map(|&v| canon_value(&p.pool, v)).collect();
                out.push_str(&format!("{}[{}]: {}\n", r.name(), tid.row, vs.join(", ")));
            }
        }
        out
    }

    #[test]
    fn incremental_apply_matches_from_scratch_prepare() {
        let old = prepare(BASE);
        let batches: Vec<Vec<EditOp>> = vec![
            vec![EditOp::InsertTuple {
                line: "S(3, 0)".into(),
            }],
            vec![
                EditOp::DeleteTuple {
                    relation: "S".into(),
                    row: 1,
                },
                EditOp::InsertTuple {
                    line: "M(9)".into(),
                },
            ],
            vec![EditOp::AddTgd {
                line: "g1: M(x) -> T(x, x)".into(),
            }],
            vec![EditOp::DropTgd { name: "g1".into() }],
        ];
        let mut text = BASE.to_owned();
        let mut scn = old;
        let mut state = IncrState::default();
        for (k, ops) in batches.iter().enumerate() {
            let apply = apply_batch(
                &text,
                &scn,
                &state,
                ops,
                ChaseOptions::fresh(),
                &Pool::sequential(),
            )
            .unwrap();
            let fresh = prepare(&apply.text);
            assert_eq!(dump(&apply.scenario), dump(&fresh), "batch {k}");
            assert_eq!(apply.scenario.chase_stats, fresh.chase_stats, "batch {k}");
            assert_eq!(
                apply.scenario.pool.num_nulls(),
                fresh.pool.num_nulls(),
                "batch {k}"
            );
            text = apply.text;
            scn = apply.scenario;
            state = apply.state;
        }
        // After the first batch, tgds are warm.
        assert!(state.memos.contains_key("j"));
    }

    #[test]
    fn change_sets_identify_touched_rows() {
        let old = prepare(BASE);
        let ops = vec![EditOp::DeleteTuple {
            relation: "S".into(),
            row: 0,
        }];
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &ops,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        let s = apply.scenario.mapping.source().rel_id("S").unwrap();
        // Row 0 deleted; rows 1 and 2 shifted down — all three touched.
        assert_eq!(apply.source_deleted, 1);
        assert!(apply.touched_src.contains(&TupleId { rel: s, row: 0 }));
        assert!(apply.touched_src.contains(&TupleId { rel: s, row: 2 }));
        // T(0, 2) (the only j-derived tuple from S(0,1),S(1,2)) is gone.
        assert!(!apply.touched_tgt.is_empty());
        assert!(!apply.mapping_changed);
    }

    #[test]
    fn seed_set_covers_new_branch_hosts() {
        // Insert S(9, 2): `j` derives a new T(9, 3), and tt re-derives
        // V(3) — which already exists (from T(1, 3)). The *existing* V(3)
        // gains a branch and must be in the seed set.
        let old = prepare(BASE);
        let ops = vec![EditOp::InsertTuple {
            line: "S(9, 2)".into(),
        }];
        let apply = apply_batch(
            BASE,
            &old,
            &IncrState::default(),
            &ops,
            ChaseOptions::fresh(),
            &Pool::sequential(),
        )
        .unwrap();
        let scn = &apply.scenario;
        let v = scn.mapping.target().rel_id("V").unwrap();
        let v3 = scn
            .target
            .find(v, &[routes_model::Value::Int(3)])
            .expect("V(3) exists before and after the edit");
        assert!(
            apply.seed_affected.contains(&v3),
            "seed: {:?}",
            apply.seed_affected
        );
    }
}
