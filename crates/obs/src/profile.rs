//! A sampling wall-clock self-profiler over the span stack.
//!
//! The tracer already names every interesting interval with a [`span`]
//! guard; this module maintains, per thread, the stack of *currently
//! open* span names and lets a ticker thread snapshot every stack into
//! flamegraph-collapsed counts (`request;chase;chase_round 123`). No
//! signal handling is involved: workers push and pop plain `&'static
//! str` frames under their own tiny mutex, and the sampler reads those
//! stacks from outside — a cooperative design that is safe in std-only
//! Rust and costs nothing when disabled.
//!
//! ## Overhead discipline
//!
//! The global [`enabled`] flag gates every hook: disabled (the default),
//! [`push_frame`] is one relaxed atomic load and nothing else — no clock
//! read, no allocation, no lock. Enabled, a push/pop is one thread-local
//! access plus one uncontended mutex lock on the thread's own stack;
//! contention only happens for the microseconds the sampler spends
//! copying a stack. The `micro prof` bench holds sampler-on overhead to
//! the same ≤5% bar as the rest of the observability layer.
//!
//! ## Sampling model
//!
//! Every tick ([`Sampler`] at `ROUTES_PROFILE_HZ`), each thread with a
//! non-empty stack contributes one count to the collapsed key joining
//! its frames with `;`. Counts are therefore *weights in ticks*: a frame
//! seen in 40 of 100 ticks spent ~40% of the wall clock on that path.
//! Stacks are cumulative since process start; a scraper that wants rates
//! asks for the delta since the previous delta scrape.
//!
//! [`span`]: crate::trace::span

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// Environment variable setting the sampler frequency in Hz; `0` (the
/// default) leaves the profiler off entirely.
pub const PROFILE_HZ_ENV: &str = "ROUTES_PROFILE_HZ";

/// Upper clamp on the sampler frequency: past this the sampler spends
/// more time locking stacks than the stacks spend changing.
pub const MAX_PROFILE_HZ: u32 = 1000;

/// The sampler frequency from the environment: `ROUTES_PROFILE_HZ`
/// parsed as Hz, clamped to [`MAX_PROFILE_HZ`], defaulting to 0 (off).
pub fn profile_hz_from_env() -> u32 {
    std::env::var(PROFILE_HZ_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(0, |hz| hz.min(MAX_PROFILE_HZ))
}

/// Whether frame hooks are live. Off ⇒ [`push_frame`] is a single
/// relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The frequency of the running sampler (0 when none), for scrapes.
static HZ: AtomicU32 = AtomicU32::new(0);

/// Sampler iterations taken since process start (monotone; survives
/// sampler restarts so delta scrapes stay correct).
static TICKS: AtomicU64 = AtomicU64::new(0);

/// One thread's stack of currently-open span names.
struct ThreadFrames {
    stack: Mutex<Vec<&'static str>>,
}

/// Every live thread that ever pushed a frame. Entries are weak: a
/// finished worker thread drops its `Arc` and the sampler prunes the
/// dangling entry on its next pass.
static REGISTRY: Mutex<Vec<Weak<ThreadFrames>>> = Mutex::new(Vec::new());

thread_local! {
    static FRAMES: RefCell<Option<Arc<ThreadFrames>>> = const { RefCell::new(None) };
}

/// Cumulative collapsed-stack counts plus the high-water mark of the
/// last delta scrape.
#[derive(Default)]
struct SampleCounts {
    cumulative: HashMap<String, u64>,
    last_scrape: HashMap<String, u64>,
    last_ticks: u64,
}

fn counts() -> &'static Mutex<SampleCounts> {
    static COUNTS: OnceLock<Mutex<SampleCounts>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(SampleCounts::default()))
}

/// Whether the profiler hooks are currently live.
pub fn profiler_enabled() -> bool {
    ENABLED.load(Relaxed)
}

fn with_thread_frames<R>(f: impl FnOnce(&Arc<ThreadFrames>) -> R) -> R {
    FRAMES.with(|cell| {
        let mut slot = cell.borrow_mut();
        let frames = slot.get_or_insert_with(|| {
            let frames = Arc::new(ThreadFrames {
                stack: Mutex::new(Vec::with_capacity(8)),
            });
            REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::downgrade(&frames));
            frames
        });
        f(frames)
    })
}

/// Push an open-span frame onto this thread's stack. Returns whether a
/// frame was pushed — the caller must pop iff it pushed, so a profiler
/// enabled mid-span can never pop someone else's frame.
pub fn push_frame(name: &'static str) -> bool {
    if !ENABLED.load(Relaxed) {
        return false;
    }
    with_thread_frames(|frames| {
        frames
            .stack
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(name);
    });
    true
}

/// Pop the frame a matching [`push_frame`] pushed.
pub fn pop_frame() {
    FRAMES.with(|cell| {
        if let Some(frames) = cell.borrow().as_ref() {
            frames.stack.lock().unwrap_or_else(|e| e.into_inner()).pop();
        }
    });
}

/// RAII frame: pushes on construction (when enabled), pops on drop.
/// Used for roots that are not spans (the `request` envelope) — spans
/// push their own frames.
pub struct FrameGuard {
    pushed: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.pushed {
            pop_frame();
        }
    }
}

/// Open a profiler frame named `name` for the guard's lifetime.
pub fn profile_frame(name: &'static str) -> FrameGuard {
    FrameGuard {
        pushed: push_frame(name),
    }
}

/// Snapshot this thread's open frames so a pool worker can adopt them
/// as its stack prefix; `None` when the profiler is off or the stack is
/// empty (adoption is then free).
pub fn snapshot_frames() -> Option<Vec<&'static str>> {
    if !ENABLED.load(Relaxed) {
        return None;
    }
    FRAMES.with(|cell| {
        let borrowed = cell.borrow();
        let frames = borrowed.as_ref()?;
        let stack = frames.stack.lock().unwrap_or_else(|e| e.into_inner());
        if stack.is_empty() {
            None
        } else {
            Some(stack.clone())
        }
    })
}

/// A worker-side guard holding an adopted stack prefix (see
/// [`snapshot_frames`]); pops exactly what it pushed on drop.
pub struct AdoptedFrames {
    pushed: usize,
}

/// Adopt a parent thread's frames as this thread's stack prefix, so
/// samples taken on pool workers attribute to the request path that
/// spawned them (`request;chase;…` rather than a rootless `chase`).
pub fn adopt_frames(frames: Option<Vec<&'static str>>) -> AdoptedFrames {
    let Some(frames) = frames else {
        return AdoptedFrames { pushed: 0 };
    };
    if !ENABLED.load(Relaxed) {
        return AdoptedFrames { pushed: 0 };
    }
    let pushed = frames.len();
    with_thread_frames(|thread| {
        thread
            .stack
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(frames);
    });
    AdoptedFrames { pushed }
}

impl Drop for AdoptedFrames {
    fn drop(&mut self) {
        if self.pushed == 0 {
            return;
        }
        FRAMES.with(|cell| {
            if let Some(frames) = cell.borrow().as_ref() {
                let mut stack = frames.stack.lock().unwrap_or_else(|e| e.into_inner());
                let keep = stack.len().saturating_sub(self.pushed);
                stack.truncate(keep);
            }
        });
    }
}

/// Take one sample: every thread with a non-empty stack contributes one
/// count to its collapsed key. Public so tests (and the bench harness)
/// can sample deterministically without a ticker thread.
pub fn sample_once() {
    let mut keys: Vec<String> = Vec::new();
    {
        let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        registry.retain(|weak| {
            let Some(frames) = weak.upgrade() else {
                return false; // thread exited; prune
            };
            let stack = frames.stack.lock().unwrap_or_else(|e| e.into_inner());
            if !stack.is_empty() {
                keys.push(stack.join(";"));
            }
            true
        });
    }
    let mut counts = counts().lock().unwrap_or_else(|e| e.into_inner());
    for key in keys {
        *counts.cumulative.entry(key).or_insert(0) += 1;
    }
    drop(counts);
    TICKS.fetch_add(1, Relaxed);
}

/// A scrape of the profiler: collapsed stacks sorted by key, sampler
/// state, and the tick count the stacks cover.
pub struct ProfileSnapshot {
    pub enabled: bool,
    /// The running sampler's frequency (0 when sampling is manual/off).
    pub hz: u32,
    /// Sampler iterations covered by `stacks` (delta scrapes cover only
    /// the ticks since the previous delta scrape).
    pub ticks: u64,
    /// `(collapsed_key, samples)` sorted by key — deterministic output
    /// for goldens and diffing.
    pub stacks: Vec<(String, u64)>,
}

impl ProfileSnapshot {
    /// The flamegraph-collapsed text form: one `a;b;c 123` line per
    /// stack (feed straight into `flamegraph.pl`).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (key, count) in &self.stacks {
            out.push_str(key);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Total samples across all stacks.
    pub fn total_samples(&self) -> u64 {
        self.stacks.iter().map(|(_, n)| n).sum()
    }
}

/// Scrape the collapsed-stack counts. `delta` subtracts (and then
/// advances) the previous delta scrape's counts, so two consecutive
/// delta scrapes partition time; a plain scrape is cumulative since
/// process start and moves no state.
pub fn collect(delta: bool) -> ProfileSnapshot {
    let ticks_now = TICKS.load(Relaxed);
    let mut counts = counts().lock().unwrap_or_else(|e| e.into_inner());
    let mut stacks: Vec<(String, u64)> = if delta {
        let out = counts
            .cumulative
            .iter()
            .filter_map(|(key, &n)| {
                let prev = counts.last_scrape.get(key).copied().unwrap_or(0);
                (n > prev).then(|| (key.clone(), n - prev))
            })
            .collect();
        counts.last_scrape = counts.cumulative.clone();
        out
    } else {
        counts
            .cumulative
            .iter()
            .map(|(key, &n)| (key.clone(), n))
            .collect()
    };
    let ticks = if delta {
        let covered = ticks_now.saturating_sub(counts.last_ticks);
        counts.last_ticks = ticks_now;
        covered
    } else {
        ticks_now
    };
    drop(counts);
    stacks.sort();
    ProfileSnapshot {
        enabled: ENABLED.load(Relaxed),
        hz: HZ.load(Relaxed),
        ticks,
        stacks,
    }
}

/// Clear accumulated samples and delta state (bench/test isolation).
pub fn reset_samples() {
    let mut counts = counts().lock().unwrap_or_else(|e| e.into_inner());
    counts.cumulative.clear();
    counts.last_scrape.clear();
    counts.last_ticks = TICKS.load(Relaxed);
}

/// A running ticker thread sampling every live stack at a fixed
/// frequency. Dropping (or [`Sampler::stop`]) disables the hooks and
/// joins the thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Start sampling at `hz` (clamped to 1..=[`MAX_PROFILE_HZ`]); `None`
/// when `hz` is 0 — the caller treats "no sampler" and "profiler off"
/// identically. Enables the frame hooks as a side effect.
pub fn start_sampler(hz: u32) -> Option<Sampler> {
    if hz == 0 {
        return None;
    }
    let hz = hz.min(MAX_PROFILE_HZ);
    ENABLED.store(true, Relaxed);
    HZ.store(hz, Relaxed);
    let stop = Arc::new(AtomicBool::new(false));
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("spiderd-profiler".to_owned())
            .spawn(move || {
                while !stop.load(Relaxed) {
                    std::thread::sleep(period);
                    if stop.load(Relaxed) {
                        break;
                    }
                    sample_once();
                }
            })
            .ok()?
    };
    Some(Sampler {
        stop,
        handle: Some(handle),
    })
}

impl Sampler {
    /// Disable the hooks and join the ticker.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        ENABLED.store(false, Relaxed);
        HZ.store(0, Relaxed);
        self.stop.store(true, Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Enable the frame hooks without a ticker (tests drive [`sample_once`]
/// by hand). Returns a guard restoring the previous state on drop.
pub struct ManualProfile {
    was_enabled: bool,
}

pub fn manual_profile() -> ManualProfile {
    let was_enabled = ENABLED.swap(true, Relaxed);
    ManualProfile { was_enabled }
}

impl Drop for ManualProfile {
    fn drop(&mut self) {
        ENABLED.store(self.was_enabled, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{scoped, span, Tracer};
    use std::sync::Arc as StdArc;

    // The profiler state is process-global, so the tests here run under
    // one mutex to avoid cross-talk (cargo runs tests in parallel).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_profiler_pushes_nothing() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!profiler_enabled());
        assert!(!push_frame("chase"));
        let guard = profile_frame("request");
        assert!(!guard.pushed);
    }

    #[test]
    fn manual_sampling_collapses_open_spans() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _on = manual_profile();
        reset_samples();
        let tracer = StdArc::new(Tracer::new(16, 0));
        let ctx = tracer.begin(Some("prof-test"));
        let _scope = scoped(Some(ctx));
        {
            let _root = profile_frame("request");
            let _chase = span("chase");
            sample_once();
            sample_once();
            {
                let _round = span("chase_round");
                sample_once();
            }
        }
        sample_once(); // stack is empty again: contributes nothing
        let snap = collect(false);
        assert!(snap.enabled);
        let stacks: HashMap<&str, u64> =
            snap.stacks.iter().map(|(k, n)| (k.as_str(), *n)).collect();
        assert_eq!(stacks.get("request;chase"), Some(&2));
        assert_eq!(stacks.get("request;chase;chase_round"), Some(&1));
        assert_eq!(snap.total_samples(), 3);
        let collapsed = snap.collapsed();
        assert!(collapsed.contains("request;chase 2\n"));
        assert!(collapsed.contains("request;chase;chase_round 1\n"));
    }

    #[test]
    fn delta_scrapes_partition_time() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _on = manual_profile();
        reset_samples();
        {
            let _root = profile_frame("request");
            sample_once();
            let first = collect(true);
            assert_eq!(first.total_samples(), 1);
            sample_once();
            sample_once();
            let second = collect(true);
            assert_eq!(second.total_samples(), 2, "only the new ticks");
            assert_eq!(second.ticks, 2);
            let third = collect(true);
            assert_eq!(third.total_samples(), 0, "nothing since last scrape");
        }
    }

    #[test]
    fn adopted_frames_prefix_worker_stacks() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _on = manual_profile();
        reset_samples();
        let _root = profile_frame("request");
        let _chase = profile_frame("chase");
        let snapshot = snapshot_frames();
        assert_eq!(snapshot.as_deref(), Some(&["request", "chase"][..]));
        std::thread::scope(|s| {
            s.spawn(|| {
                let _adopt = adopt_frames(snapshot.clone());
                let _leaf = profile_frame("chase_round");
                sample_once();
            })
            .join()
            .unwrap();
        });
        let snap = collect(false);
        let worker = snap
            .stacks
            .iter()
            .find(|(k, _)| k == "request;chase;chase_round");
        assert!(worker.is_some(), "worker stack carries the parent prefix");
    }

    #[test]
    fn sampler_ticks_and_stops() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_samples();
        let sampler = start_sampler(500).expect("sampler starts");
        assert!(profiler_enabled());
        let _root = profile_frame("request");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while collect(false).total_samples() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        assert!(!profiler_enabled());
        let snap = collect(false);
        assert!(snap.total_samples() > 0, "the ticker sampled the stack");
        assert!(snap.stacks.iter().any(|(k, _)| k == "request"));
        reset_samples();
    }

    #[test]
    fn zero_hz_means_no_sampler() {
        let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(start_sampler(0).is_none());
        std::env::remove_var(PROFILE_HZ_ENV);
        assert_eq!(profile_hz_from_env(), 0);
    }
}
