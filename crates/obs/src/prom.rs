//! Prometheus text exposition format (version 0.0.4) rendering helpers.
//!
//! The server's `/metrics?format=prometheus` endpoint renders every
//! counter and histogram it serves as JSON through this writer, so the
//! two forms stay reconciled: same snapshot in, both renderings out.
//!
//! Layout rules implemented here (the subset the format mandates):
//!
//! * every family is announced once with `# HELP` then `# TYPE`;
//! * label values escape `\`, `"`, and newline; `# HELP` text escapes
//!   `\` and newline;
//! * histograms render **cumulative** `_bucket` series with `le` labels,
//!   a final `le="+Inf"` bucket, a `_count` equal to the `+Inf` bucket,
//!   and `_sum` when the producer tracks one.

/// The content type a Prometheus scraper expects.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// An in-progress text exposition.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Announce a family: `# HELP` then `# TYPE`. Call once per family,
    /// before its samples. `kind` is `counter`, `gauge`, or `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&escape_help(help));
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// One sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.push_series(name, labels, None);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Cumulative histogram samples for one label set: `_bucket` lines
    /// (bounds then `+Inf`), `_count`, and `_sum` when tracked.
    /// `counts` are per-bucket (non-cumulative), one per bound plus the
    /// final unbounded bucket — the layout the JSON form uses.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        counts: &[u64],
        sum: Option<u64>,
    ) {
        debug_assert_eq!(counts.len(), bounds.len() + 1);
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            cumulative += count;
            let le = bounds
                .get(i)
                .map_or_else(|| "+Inf".to_owned(), |b| b.to_string());
            self.push_series(&format!("{name}_bucket"), labels, Some(("le", &le)));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        if let Some(sum) = sum {
            self.push_series(&format!("{name}_sum"), labels, None);
            self.out.push(' ');
            self.out.push_str(&sum.to_string());
            self.out.push('\n');
        }
        self.push_series(&format!("{name}_count"), labels, None);
        self.out.push(' ');
        self.out.push_str(&cumulative.to_string());
        self.out.push('\n');
    }

    /// [`PromText::histogram`] with an optional latency exemplar per
    /// bucket: `exemplars[i]`, when present, annotates bucket `i`'s line
    /// OpenMetrics-style — `… 7 # {trace_id="abc"} 1234` — linking the
    /// bucket to the trace of its slowest recent occupant (the exemplar
    /// value is that occupant's duration in µs). Scrapers that predate
    /// exemplars treat everything after `#` as a comment, so the lines
    /// stay parseable either way.
    pub fn histogram_with_exemplars(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        counts: &[u64],
        sum: Option<u64>,
        exemplars: &[Option<(String, u64)>],
    ) {
        debug_assert_eq!(counts.len(), bounds.len() + 1);
        debug_assert_eq!(exemplars.len(), counts.len());
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            cumulative += count;
            let le = bounds
                .get(i)
                .map_or_else(|| "+Inf".to_owned(), |b| b.to_string());
            self.push_series(&format!("{name}_bucket"), labels, Some(("le", &le)));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            if let Some((trace, dur_us)) = exemplars[i].as_ref() {
                self.out.push_str(" # {trace_id=\"");
                self.out.push_str(&escape_label(trace));
                self.out.push_str("\"} ");
                self.out.push_str(&dur_us.to_string());
            }
            self.out.push('\n');
        }
        if let Some(sum) = sum {
            self.push_series(&format!("{name}_sum"), labels, None);
            self.out.push(' ');
            self.out.push_str(&sum.to_string());
            self.out.push('\n');
        }
        self.push_series(&format!("{name}_count"), labels, None);
        self.out.push(' ');
        self.out.push_str(&cumulative.to_string());
        self.out.push('\n');
    }

    fn push_series(&mut self, name: &str, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
        self.out.push_str(name);
        let total = labels.len() + usize::from(extra.is_some());
        if total > 0 {
            self.out.push('{');
            let mut first = true;
            for (k, v) in labels.iter().copied().chain(extra) {
                if !first {
                    self.out.push(',');
                }
                first = false;
                debug_assert!(valid_label_name(k), "bad label name {k}");
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && !name.as_bytes()[0].is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_and_help_escaping() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_help("a\\b\"c\nd"), "a\\\\b\"c\\nd");
    }

    #[test]
    fn families_samples_and_labels_render() {
        let mut w = PromText::new();
        w.family(
            "routes_requests_total",
            "counter",
            "Total \"requests\".\nSecond line.",
        );
        w.sample("routes_requests_total", &[], 42);
        w.family("routes_shard_hits_total", "counter", "Per-shard hits.");
        w.sample(
            "routes_shard_hits_total",
            &[("shard", "0"), ("mode", "a\"b")],
            7,
        );
        let text = w.finish();
        assert_eq!(
            text,
            "# HELP routes_requests_total Total \"requests\".\\nSecond line.\n\
             # TYPE routes_requests_total counter\n\
             routes_requests_total 42\n\
             # HELP routes_shard_hits_total Per-shard hits.\n\
             # TYPE routes_shard_hits_total counter\n\
             routes_shard_hits_total{shard=\"0\",mode=\"a\\\"b\"} 7\n"
        );
    }

    #[test]
    fn exemplar_trace_ids_are_escaped_on_bucket_lines() {
        let mut w = PromText::new();
        w.family("routes_lat_us", "histogram", "Latency.");
        // A hostile "trace id" with every escapable character; real ids
        // are [A-Za-z0-9._-] but the renderer must not rely on that.
        w.histogram_with_exemplars(
            "routes_lat_us",
            &[],
            &[100],
            &[2, 1],
            None,
            &[Some(("a\"b\\c\nd".to_owned(), 42)), None],
        );
        let text = w.finish();
        assert!(
            text.contains(
                "routes_lat_us_bucket{le=\"100\"} 2 # {trace_id=\"a\\\"b\\\\c\\nd\"} 42\n"
            ),
            "exemplar escaped: {text}"
        );
        assert!(
            text.contains("routes_lat_us_bucket{le=\"+Inf\"} 3\n"),
            "bucket without exemplar has no annotation: {text}"
        );
        assert!(text.contains("routes_lat_us_count 3\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_count_and_sum() {
        let mut w = PromText::new();
        w.family("routes_lat_us", "histogram", "Latency.");
        w.histogram(
            "routes_lat_us",
            &[("phase", "chase")],
            &[100, 500],
            &[3, 2, 1],
            Some(900),
        );
        let text = w.finish();
        assert_eq!(
            text,
            "# HELP routes_lat_us Latency.\n\
             # TYPE routes_lat_us histogram\n\
             routes_lat_us_bucket{phase=\"chase\",le=\"100\"} 3\n\
             routes_lat_us_bucket{phase=\"chase\",le=\"500\"} 5\n\
             routes_lat_us_bucket{phase=\"chase\",le=\"+Inf\"} 6\n\
             routes_lat_us_sum{phase=\"chase\"} 900\n\
             routes_lat_us_count{phase=\"chase\"} 6\n"
        );
    }
}
