//! `routes-obs` — the observability substrate for the route-debugging
//! service, std-only like the rest of the workspace (DESIGN.md §5).
//!
//! Three small pieces, each usable on its own:
//!
//! * [`log`] — leveled structured logging: one JSON object per line on
//!   stderr, filtered by `ROUTES_LOG` / [`log::set_level`]. Log lines
//!   automatically carry the emitting thread's trace ID.
//! * [`trace`] — span-based request tracing: deterministic SplitMix64
//!   trace IDs, a thread-local trace context propagated across
//!   `routes-pool` workers, and a fixed-capacity preallocated ring buffer
//!   of completed spans (`GET /trace` serves it).
//! * [`prom`] — Prometheus text-format exposition helpers (`# HELP` /
//!   `# TYPE` families, label escaping, cumulative histogram buckets,
//!   bucket exemplars) for `GET /metrics?format=prometheus`.
//! * [`profile`] — a sampling wall-clock self-profiler: a ticker thread
//!   snapshots every worker's open-span stack into flamegraph-collapsed
//!   counts (`GET /profile` serves them). Off by default; off ⇒ every
//!   hook is a single relaxed atomic load.
//!
//! This crate sits below `routes-pool`, `routes-store`, and
//! `routes-server` in the dependency graph and depends on nothing, so any
//! layer can emit spans and logs without cycles.

pub mod log;
pub mod profile;
pub mod prom;
pub mod trace;

pub use log::{log, set_level, set_sink, Level, Value, LOG_ENV};
pub use profile::{
    adopt_frames, collect as profile_collect, manual_profile, profile_frame, profile_hz_from_env,
    profiler_enabled, reset_samples, sample_once, snapshot_frames, start_sampler, AdoptedFrames,
    FrameGuard, ProfileSnapshot, Sampler, MAX_PROFILE_HZ, PROFILE_HZ_ENV,
};
pub use prom::{escape_help, escape_label, PromText, PROMETHEUS_CONTENT_TYPE};
pub use trace::{
    current, current_trace_id, record_current, scoped, set_current, slow_threshold_from_env, span,
    ScopedCtx, Span, SpanRecord, TraceCtx, TraceId, TraceIdGen, Tracer, DEFAULT_SLOW_MS,
    DEFAULT_TRACE_SPANS, MAX_TRACE_ID_LEN, SLOW_MS_ENV, TRACE_ENV, TRACE_SEED_ENV, TRACE_SPANS_ENV,
};
