//! `routes-obs` — the observability substrate for the route-debugging
//! service, std-only like the rest of the workspace (DESIGN.md §5).
//!
//! Three small pieces, each usable on its own:
//!
//! * [`log`] — leveled structured logging: one JSON object per line on
//!   stderr, filtered by `ROUTES_LOG` / [`log::set_level`]. Log lines
//!   automatically carry the emitting thread's trace ID.
//! * [`trace`] — span-based request tracing: deterministic SplitMix64
//!   trace IDs, a thread-local trace context propagated across
//!   `routes-pool` workers, and a fixed-capacity preallocated ring buffer
//!   of completed spans (`GET /trace` serves it).
//! * [`prom`] — Prometheus text-format exposition helpers (`# HELP` /
//!   `# TYPE` families, label escaping, cumulative histogram buckets) for
//!   `GET /metrics?format=prometheus`.
//!
//! This crate sits below `routes-pool`, `routes-store`, and
//! `routes-server` in the dependency graph and depends on nothing, so any
//! layer can emit spans and logs without cycles.

pub mod log;
pub mod prom;
pub mod trace;

pub use log::{log, set_level, set_sink, Level, Value, LOG_ENV};
pub use prom::{escape_help, escape_label, PromText, PROMETHEUS_CONTENT_TYPE};
pub use trace::{
    current, current_trace_id, record_current, scoped, set_current, slow_threshold_from_env, span,
    ScopedCtx, Span, SpanRecord, TraceCtx, TraceId, TraceIdGen, Tracer, DEFAULT_SLOW_MS,
    DEFAULT_TRACE_SPANS, MAX_TRACE_ID_LEN, SLOW_MS_ENV, TRACE_ENV, TRACE_SEED_ENV, TRACE_SPANS_ENV,
};
