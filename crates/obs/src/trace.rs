//! Span-based request tracing with deterministic trace IDs.
//!
//! ## Trace IDs
//!
//! Every request gets a [`TraceId`]: the client's `X-Trace-Id` header when
//! it supplies a well-formed one, otherwise an ID minted by [`TraceIdGen`]
//! — the workspace's SplitMix64 mix (the same constants as
//! `routes-gen`'s RNG) applied to an atomic counter. There is no wall
//! clock and no OS randomness in the minting path, so a fixed seed yields
//! a fixed ID sequence: tests and replay runs are deterministic.
//!
//! ## Spans
//!
//! A span is a named interval measured on the monotonic clock
//! ([`std::time::Instant`]) and recorded **on completion** into the
//! tracer's fixed-capacity ring buffer. The ring is a mutex around
//! preallocated [`SpanRecord`] slots — records are `Copy`, a push is a
//! slot overwrite, and the hot path allocates nothing after startup. At
//! capacity the ring overwrites oldest-first.
//!
//! ## Context propagation
//!
//! The current request's [`TraceCtx`] lives in a thread-local. The server
//! installs it for the duration of a request ([`scoped`]); instrumented
//! seams call [`span`], which is a no-op (no clock read, no clone) when no
//! context is installed or tracing is disabled; `routes-pool` carries the
//! context onto its scoped workers so spans opened inside a parallel
//! region still land under the request's trace ID.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable disabling tracing (`0` / `off` / `false`).
pub const TRACE_ENV: &str = "ROUTES_TRACE";

/// Environment variable sizing the span ring buffer.
pub const TRACE_SPANS_ENV: &str = "ROUTES_TRACE_SPANS";

/// Environment variable seeding minted trace IDs (tests pin sequences).
pub const TRACE_SEED_ENV: &str = "ROUTES_TRACE_SEED";

/// Environment variable for the slow-request threshold in milliseconds.
pub const SLOW_MS_ENV: &str = "ROUTES_SLOW_MS";

/// Default slow-request threshold (milliseconds).
pub const DEFAULT_SLOW_MS: u64 = 500;

/// Default ring capacity: at ~88 bytes a slot this is a fixed ~90 KiB.
pub const DEFAULT_TRACE_SPANS: usize = 1024;

/// Longest accepted client-supplied trace ID (bytes); IDs are stored
/// inline in ring slots, so this bounds the slot size.
pub const MAX_TRACE_ID_LEN: usize = 64;

/// The slow-request threshold: `ROUTES_SLOW_MS` or [`DEFAULT_SLOW_MS`].
pub fn slow_threshold_from_env() -> Duration {
    let ms = std::env::var(SLOW_MS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SLOW_MS);
    Duration::from_millis(ms)
}

/// A trace identifier, stored inline (no allocation on the hot path).
/// Client-supplied IDs are accepted when 1..=[`MAX_TRACE_ID_LEN`] bytes of
/// `[A-Za-z0-9._-]`; minted IDs are 16 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TraceId {
    bytes: [u8; MAX_TRACE_ID_LEN],
    len: u8,
}

impl TraceId {
    /// Accept a client-supplied ID, or reject (`None`) anything that could
    /// not round-trip through a header and a JSON log line unescaped.
    pub fn parse(s: &str) -> Option<TraceId> {
        let raw = s.as_bytes();
        if raw.is_empty() || raw.len() > MAX_TRACE_ID_LEN {
            return None;
        }
        if !raw
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        {
            return None;
        }
        let mut bytes = [0u8; MAX_TRACE_ID_LEN];
        bytes[..raw.len()].copy_from_slice(raw);
        Some(TraceId {
            bytes,
            len: raw.len() as u8,
        })
    }

    fn from_u64(x: u64) -> TraceId {
        let mut bytes = [0u8; MAX_TRACE_ID_LEN];
        for (i, slot) in bytes.iter_mut().take(16).enumerate() {
            let nibble = ((x >> (60 - 4 * i)) & 0xF) as u8;
            *slot = if nibble < 10 {
                b'0' + nibble
            } else {
                b'a' + (nibble - 10)
            };
        }
        TraceId { bytes, len: 16 }
    }

    pub fn as_str(&self) -> &str {
        // Construction only admits ASCII, so this cannot fail.
        std::str::from_utf8(&self.bytes[..usize::from(self.len)]).unwrap_or("")
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceId({})", self.as_str())
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The SplitMix64 output mix — the same constants as `routes-gen`'s RNG,
/// re-stated here so `routes-obs` stays dependency-free.
fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SPLITMIX_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic trace-ID minting: the k-th minted ID is
/// `splitmix64(seed + k * GOLDEN)`, exactly the k-th output of the
/// workspace RNG seeded with `seed`.
pub struct TraceIdGen {
    seed: u64,
    counter: AtomicU64,
}

impl TraceIdGen {
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen {
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Mint the next ID (16 hex digits). Allocation-free.
    pub fn mint(&self) -> TraceId {
        let k = self.counter.fetch_add(1, Relaxed).wrapping_add(1);
        TraceId::from_u64(splitmix64(
            self.seed.wrapping_add(SPLITMIX_GOLDEN.wrapping_mul(k)),
        ))
    }
}

/// One completed span. `Copy`, fixed-size: ring slots are preallocated and
/// a push is a slot overwrite.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    pub trace: TraceId,
    /// Span name (a static seam name: `request`, `chase`, `wal_fsync`, …).
    pub name: &'static str,
    /// Start offset (µs) on the tracer's monotonic clock.
    pub start_us: u64,
    /// Duration in microseconds (truncated).
    pub dur_us: u64,
}

struct Ring {
    slots: Vec<SpanRecord>,
    capacity: usize,
    /// Next slot to overwrite.
    next: usize,
    /// Slots holding real records (== capacity once wrapped).
    filled: usize,
}

impl Ring {
    fn push(&mut self, record: SpanRecord) {
        self.slots[self.next] = record;
        self.next = (self.next + 1) % self.capacity;
        self.filled = (self.filled + 1).min(self.capacity);
    }

    /// The most recent `min(limit, filled)` records in chronological
    /// (oldest-first) order. Copies only what it returns — `GET /trace`
    /// with a small `?limit=` no longer clones the whole ring under the
    /// mutex.
    fn recent_limited(&self, limit: usize) -> Vec<SpanRecord> {
        let take = limit.min(self.filled);
        let mut out = Vec::with_capacity(take);
        let oldest = (self.next + self.capacity - take) % self.capacity;
        for i in 0..take {
            out.push(self.slots[(oldest + i) % self.capacity]);
        }
        out
    }

    fn recent(&self) -> Vec<SpanRecord> {
        self.recent_limited(self.filled)
    }
}

/// The span sink: an enabled flag, a monotonic origin, the ID generator,
/// and the ring buffer of completed spans.
pub struct Tracer {
    enabled: bool,
    origin: Instant,
    ids: TraceIdGen,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// An enabled tracer with `capacity` ring slots (clamped to ≥ 1) and a
    /// fixed minting seed.
    pub fn new(capacity: usize, seed: u64) -> Tracer {
        let capacity = capacity.max(1);
        let blank = SpanRecord {
            trace: TraceId::from_u64(0),
            name: "",
            start_us: 0,
            dur_us: 0,
        };
        Tracer {
            enabled: true,
            origin: Instant::now(),
            ids: TraceIdGen::new(seed),
            ring: Mutex::new(Ring {
                slots: vec![blank; capacity],
                capacity,
                next: 0,
                filled: 0,
            }),
        }
    }

    /// A tracer that mints IDs but records no spans (tracing off).
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            ..Tracer::new(1, 0)
        }
    }

    /// Configure from the environment: capacity from `ROUTES_TRACE_SPANS`
    /// (unless `capacity_override` is `Some`), seed from
    /// `ROUTES_TRACE_SEED` (default 0), disabled when `ROUTES_TRACE` is
    /// `0` / `off` / `false`.
    pub fn from_env(capacity_override: Option<usize>) -> Tracer {
        let capacity = capacity_override.unwrap_or_else(|| {
            std::env::var(TRACE_SPANS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_TRACE_SPANS)
        });
        let seed = std::env::var(TRACE_SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let off = std::env::var(TRACE_ENV)
            .map(|v| {
                matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "off" | "false"
                )
            })
            .unwrap_or(false);
        let mut tracer = Tracer::new(capacity, seed);
        tracer.enabled = !off;
        tracer
    }

    /// Whether spans are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).capacity
    }

    /// Begin a trace context for one request: honor a well-formed supplied
    /// ID, else mint. IDs are minted even when tracing is disabled — every
    /// response carries `X-Trace-Id` regardless.
    pub fn begin(self: &Arc<Tracer>, supplied: Option<&str>) -> TraceCtx {
        let id = supplied
            .and_then(TraceId::parse)
            .unwrap_or_else(|| self.ids.mint());
        TraceCtx {
            tracer: Arc::clone(self),
            id,
        }
    }

    /// Record a completed span. No-op when disabled; otherwise one mutex
    /// acquisition and one slot overwrite — no allocation.
    pub fn record(&self, trace: TraceId, name: &'static str, start: Instant, dur: Duration) {
        if !self.enabled {
            return;
        }
        let start_us = start
            .checked_duration_since(self.origin)
            .unwrap_or(Duration::ZERO)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = dur.as_micros().min(u128::from(u64::MAX)) as u64;
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanRecord {
                trace,
                name,
                start_us,
                dur_us,
            });
    }

    /// Completed spans, oldest first (what `GET /trace` serves).
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).recent()
    }

    /// The most recent `limit` completed spans, oldest first. Copies at
    /// most `limit` records under the ring mutex.
    pub fn recent_limited(&self, limit: usize) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .recent_limited(limit)
    }

    /// Sum the in-ring durations of `names[i]`-named spans belonging to
    /// `trace`, returning one total (µs) per name. One pass under the
    /// ring mutex with no cloning — cheap enough for the slow-request
    /// log path.
    pub fn phase_totals_us(&self, trace: TraceId, names: &[&'static str]) -> Vec<u64> {
        let mut totals = vec![0u64; names.len()];
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        for slot in ring.slots.iter().take(ring.filled.min(ring.capacity)) {
            if slot.trace != trace {
                continue;
            }
            if let Some(i) = names.iter().position(|&n| n == slot.name) {
                totals[i] = totals[i].saturating_add(slot.dur_us);
            }
        }
        totals
    }
}

/// One request's trace identity: the tracer plus the request's ID.
/// Cloning is an `Arc` bump and a fixed-size copy — no allocation.
#[derive(Clone)]
pub struct TraceCtx {
    tracer: Arc<Tracer>,
    id: TraceId,
}

impl TraceCtx {
    pub fn id(&self) -> TraceId {
        self.id
    }

    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Record a completed span under this trace.
    pub fn record(&self, name: &'static str, start: Instant, dur: Duration) {
        self.tracer.record(self.id, name, start, dur);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// Replace the thread's current trace context, returning the previous one.
pub fn set_current(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx))
}

/// The thread's current trace context, if any.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The current trace ID, if a context is installed (used to stamp error
/// bodies and log lines).
pub fn current_trace_id() -> Option<TraceId> {
    CURRENT.with(|c| c.borrow().as_ref().map(TraceCtx::id))
}

/// Record an already-measured interval as a span under the thread's
/// current context, if any. This is the hot-path alternative to [`span`]
/// for seams that measure the interval anyway (e.g. lock-wait stats): no
/// extra clock reads, no context clone — just the ring push when a
/// context is installed and tracing is on.
pub fn record_current(name: &'static str, start: Instant, dur: Duration) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.record(name, start, dur);
        }
    });
}

/// RAII installation of a trace context: restores the previous context on
/// drop (nesting-safe, including across `routes-pool` workers).
pub struct ScopedCtx {
    prev: Option<TraceCtx>,
}

/// Install `ctx` as the thread's current context for the returned guard's
/// lifetime.
pub fn scoped(ctx: Option<TraceCtx>) -> ScopedCtx {
    ScopedCtx {
        prev: set_current(ctx),
    }
}

impl Drop for ScopedCtx {
    fn drop(&mut self) {
        set_current(self.prev.take());
    }
}

/// An in-flight span guard: records into the current context's ring on
/// drop. Inert (no clock read, no context clone) when no context is
/// installed or its tracer is disabled. When the sampling profiler is
/// on, the span's name is also held on the thread's frame stack for the
/// guard's lifetime, independent of whether tracing records it.
pub struct Span {
    active: Option<(TraceCtx, Instant)>,
    name: &'static str,
    frame_pushed: bool,
}

/// Open a span named `name` under the thread's current trace context.
pub fn span(name: &'static str) -> Span {
    let active = CURRENT.with(|c| {
        let ctx = c.borrow();
        match ctx.as_ref() {
            Some(t) if t.tracer.enabled => Some((t.clone(), Instant::now())),
            _ => None,
        }
    });
    let frame_pushed = crate::profile::push_frame(name);
    Span {
        active,
        name,
        frame_pushed,
    }
}

impl Span {
    /// Whether this span will record (context installed, tracing on).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.frame_pushed {
            crate::profile::pop_frame();
        }
        if let Some((ctx, start)) = self.active.take() {
            ctx.record(self.name, start, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_match_the_workspace_splitmix64_sequence() {
        // routes-gen's rng.rs pins seed 0's first output to this value;
        // the trace-ID generator must agree digit for digit.
        let ids = TraceIdGen::new(0);
        assert_eq!(ids.mint().as_str(), "e220a8397b1dcdaf");
        // Deterministic: a fresh generator with the same seed repeats.
        let again = TraceIdGen::new(0);
        assert_eq!(again.mint().as_str(), "e220a8397b1dcdaf");
        // Distinct seeds, distinct streams.
        assert_ne!(TraceIdGen::new(1).mint(), TraceIdGen::new(2).mint());
    }

    #[test]
    fn client_ids_are_validated_and_stored_inline() {
        assert_eq!(
            TraceId::parse("abc-DEF_0.9").unwrap().as_str(),
            "abc-DEF_0.9"
        );
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("has space").is_none());
        assert!(TraceId::parse("quote\"").is_none());
        assert!(TraceId::parse(&"x".repeat(MAX_TRACE_ID_LEN)).is_some());
        assert!(TraceId::parse(&"x".repeat(MAX_TRACE_ID_LEN + 1)).is_none());
    }

    #[test]
    fn ring_evicts_oldest_first_at_capacity() {
        let tracer = Arc::new(Tracer::new(4, 0));
        let t0 = Instant::now();
        for k in 0..7u64 {
            let ctx = tracer.begin(None);
            tracer.record(ctx.id(), "request", t0, Duration::from_micros(k));
        }
        let recent = tracer.recent();
        assert_eq!(recent.len(), 4);
        let durs: Vec<u64> = recent.iter().map(|s| s.dur_us).collect();
        assert_eq!(durs, vec![3, 4, 5, 6], "oldest three were overwritten");
    }

    #[test]
    fn spans_record_under_the_scoped_context_only() {
        let tracer = Arc::new(Tracer::new(16, 7));
        let ctx = tracer.begin(Some("my-trace"));
        assert_eq!(ctx.id().as_str(), "my-trace");
        {
            let _guard = scoped(Some(ctx.clone()));
            assert_eq!(current_trace_id().unwrap().as_str(), "my-trace");
            let _span = span("chase");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(current_trace_id().is_none(), "guard restored the context");
        let inert = span("ignored");
        assert!(!inert.is_recording());
        drop(inert);
        let spans = tracer.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "chase");
        assert_eq!(spans[0].trace.as_str(), "my-trace");
        assert!(spans[0].dur_us >= 1_000);
    }

    #[test]
    fn disabled_tracer_mints_ids_but_records_nothing() {
        let tracer = Arc::new(Tracer::disabled());
        let ctx = tracer.begin(None);
        assert_eq!(ctx.id().as_str().len(), 16);
        let _guard = scoped(Some(ctx.clone()));
        {
            let s = span("chase");
            assert!(!s.is_recording());
        }
        ctx.record("request", Instant::now(), Duration::from_millis(2));
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn malformed_supplied_ids_fall_back_to_minting() {
        let tracer = Arc::new(Tracer::new(4, 0));
        let ctx = tracer.begin(Some("bad header value"));
        assert_eq!(ctx.id().as_str(), "e220a8397b1dcdaf");
    }
}
