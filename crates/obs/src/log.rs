//! Leveled structured logging: one JSON object per line, on stderr by
//! default.
//!
//! Every line is a flat JSON object with at least `ts_us` (wall-clock
//! microseconds since the Unix epoch), `level`, and `event`; when a trace
//! context is installed on the emitting thread (see [`crate::trace`]) the
//! line also carries `trace_id`, tying the log to the request's spans.
//! Fields never contain raw newlines — the escaper guarantees exactly one
//! line per record — so stderr is parseable by any JSON-lines consumer
//! (the tier-1 gate pipes a `spiderd` boot through one).
//!
//! The level filter is process-global: `ROUTES_LOG` (error | warn | info |
//! debug | trace, default `info`) read on first use, overridable at any
//! time with [`set_level`] (the `--log-level` flag). The sink is stderr
//! unless a test or benchmark installs its own with [`set_sink`].

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable selecting the minimum level (`--log-level` wins).
pub const LOG_ENV: &str = "ROUTES_LOG";

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    /// The lowercase name rendered into the `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            4 => Level::Trace,
            _ => Level::Info,
        }
    }
}

/// Sentinel meaning "not initialized from the environment yet".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The current minimum level (lazily initialized from [`LOG_ENV`]).
pub fn level() -> Level {
    let raw = LEVEL.load(Relaxed);
    if raw != LEVEL_UNSET {
        return Level::from_u8(raw);
    }
    let from_env = std::env::var(LOG_ENV)
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    // A racing set_level wins: only replace the sentinel.
    let _ = LEVEL.compare_exchange(LEVEL_UNSET, from_env as u8, Relaxed, Relaxed);
    Level::from_u8(LEVEL.load(Relaxed))
}

/// Override the minimum level (the `--log-level` flag).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Relaxed);
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level <= self::level()
}

/// A field value. `From` impls cover the common primitives so call sites
/// read `("key", value.into())`.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    Str(&'a str),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<u16> for Value<'_> {
    fn from(v: u16) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: &Value<'_>) {
    match *v {
        Value::Str(s) => push_json_string(out, s),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if b { "true" } else { "false" }),
    }
}

/// The installed sink; `None` means stderr.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Redirect log output (tests capture, benchmarks discard). `None`
/// restores stderr.
pub fn set_sink(sink: Option<Box<dyn Write + Send>>) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Emit one structured record at `level`. Fields are rendered in call
/// order after the standard `ts_us` / `level` / `event` / `trace_id`
/// prefix; a duplicate of a standard key is the caller's bug, not checked.
pub fn log(level: Level, event: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(96 + 24 * fields.len());
    line.push_str("{\"ts_us\":");
    line.push_str(&ts_us.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"event\":");
    push_json_string(&mut line, event);
    if let Some(id) = crate::trace::current_trace_id() {
        line.push_str(",\"trace_id\":");
        push_json_string(&mut line, id.as_str());
    }
    for (key, value) in fields {
        line.push(',');
        push_json_string(&mut line, key);
        line.push(':');
        push_value(&mut line, value);
    }
    line.push_str("}\n");
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    match sink.as_mut() {
        Some(w) => {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn levels_order_parse_and_render() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
            assert_eq!(Level::parse(&l.as_str().to_uppercase()), Some(l));
        }
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn escaping_keeps_one_record_per_line() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn records_render_as_json_lines_and_respect_the_filter() {
        let buf = Capture(Arc::new(StdMutex::new(Vec::new())));
        set_sink(Some(Box::new(buf.clone())));
        set_level(Level::Info);
        log(
            Level::Info,
            "unit \"test\"",
            &[
                ("count", 3u64.into()),
                ("what", "line\nbreak".into()),
                ("ok", true.into()),
            ],
        );
        log(Level::Debug, "filtered", &[]);
        set_sink(None);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug is below the info filter");
        let line = lines[0];
        assert!(line.starts_with("{\"ts_us\":"), "line: {line}");
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"unit \\\"test\\\"\""));
        assert!(line.contains("\"count\":3"));
        assert!(line.contains("\"what\":\"line\\nbreak\""));
        assert!(line.contains("\"ok\":true"));
    }
}
