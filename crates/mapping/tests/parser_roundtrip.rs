//! Property test: rendering a random well-formed dependency and re-parsing
//! it yields the same dependency (display ∘ parse = id).

use proptest::prelude::*;
use routes_mapping::{egd_to_string, parse_egd, parse_st_tgd, tgd_to_string, Egd, Tgd};
use routes_model::{Atom, RelId, Schema, Term, Value, ValuePool, Var};

/// A random tgd description: per-atom (relation, terms), where a term is a
/// variable index or a constant.
#[derive(Debug, Clone)]
struct TgdSpec {
    lhs: Vec<(usize, Vec<TermSpec>)>,
    rhs: Vec<(usize, Vec<TermSpec>)>,
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(u32),
    Int(i64),
    Str(u8),
}

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        4 => (0u32..6).prop_map(TermSpec::Var),
        1 => (-20i64..100).prop_map(TermSpec::Int),
        1 => (0u8..4).prop_map(TermSpec::Str),
    ]
}

fn atoms_strategy(nrels: usize, arity: usize, count: std::ops::Range<usize>)
    -> impl Strategy<Value = Vec<(usize, Vec<TermSpec>)>> {
    prop::collection::vec(
        (0..nrels, prop::collection::vec(term_strategy(), arity)),
        count,
    )
}

fn schemas() -> (Schema, Schema) {
    let mut s = Schema::new();
    for k in 0..3 {
        s.rel(&format!("S{k}"), &["a", "b"]);
    }
    let mut t = Schema::new();
    for k in 0..3 {
        t.rel(&format!("T{k}"), &["a", "b"]);
    }
    (s, t)
}

/// Build a Tgd from a spec, compacting variables to a dense space.
fn build_tgd(spec: &TgdSpec, pool: &mut ValuePool) -> Option<Tgd> {
    let strings = ["alpha", "beta", "with space", "quo#te"];
    let mut names: Vec<String> = Vec::new();
    let mut remap: Vec<Option<Var>> = vec![None; 6];
    let convert = |atoms: &[(usize, Vec<TermSpec>)],
                       base: u32,
                       pool: &mut ValuePool,
                       names: &mut Vec<String>,
                       remap: &mut Vec<Option<Var>>|
     -> Vec<Atom> {
        atoms
            .iter()
            .map(|(rel, terms)| {
                Atom::new(
                    RelId(*rel as u32 + base),
                    terms
                        .iter()
                        .map(|t| match t {
                            TermSpec::Var(v) => {
                                let slot = &mut remap[*v as usize];
                                let nv = match slot {
                                    Some(nv) => *nv,
                                    None => {
                                        let nv = Var(names.len() as u32);
                                        names.push(format!("v{v}"));
                                        *slot = Some(nv);
                                        nv
                                    }
                                };
                                Term::Var(nv)
                            }
                            TermSpec::Int(n) => Term::Const(Value::Int(*n)),
                            TermSpec::Str(k) => Term::Const(pool.str(strings[*k as usize])),
                        })
                        .collect(),
                )
            })
            .collect()
    };
    let lhs = convert(&spec.lhs, 0, pool, &mut names, &mut remap);
    let rhs = convert(&spec.rhs, 0, pool, &mut names, &mut remap);
    Tgd::new("m", lhs, rhs, names).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tgd_display_parse_roundtrip(spec in (atoms_strategy(3, 2, 1..3), atoms_strategy(3, 2, 1..3))
        .prop_map(|(lhs, rhs)| TgdSpec { lhs, rhs }))
    {
        let (s, t) = schemas();
        let mut pool = ValuePool::new();
        let Some(tgd) = build_tgd(&spec, &mut pool) else { return Ok(()) };
        // Interpret LHS rels over source, RHS over target: rebuild with the
        // correct schemas by rendering and parsing as s-t tgd.
        let rendered = tgd_to_string(&pool, &s, &t, &tgd);
        let reparsed = parse_st_tgd(&s, &t, &mut pool, &rendered)
            .unwrap_or_else(|e| panic!("rendered tgd must reparse: {e}\n{rendered}"));
        prop_assert_eq!(&tgd, &reparsed, "{}", rendered);
        // And the rendering is a fixpoint.
        let rendered2 = tgd_to_string(&pool, &s, &t, &reparsed);
        prop_assert_eq!(rendered, rendered2);
    }

    #[test]
    fn egd_display_parse_roundtrip(
        lhs in atoms_strategy(3, 2, 1..3),
        eq_pick in (0usize..4, 0usize..4),
    ) {
        let (_, t) = schemas();
        let mut pool = ValuePool::new();
        let spec = TgdSpec { lhs, rhs: vec![] };
        // Build LHS atoms only (reuse the tgd builder with a fake rhs, then
        // strip) — simpler: inline conversion via build_tgd is awkward, so
        // construct directly.
        let strings = ["alpha", "beta", "with space", "quo#te"];
        let mut names: Vec<String> = Vec::new();
        let mut remap: Vec<Option<Var>> = vec![None; 6];
        let atoms: Vec<Atom> = spec
            .lhs
            .iter()
            .map(|(rel, terms)| {
                Atom::new(
                    RelId(*rel as u32),
                    terms
                        .iter()
                        .map(|term| match term {
                            TermSpec::Var(v) => {
                                let slot = &mut remap[*v as usize];
                                let nv = match slot {
                                    Some(nv) => *nv,
                                    None => {
                                        let nv = Var(names.len() as u32);
                                        names.push(format!("v{v}"));
                                        *slot = Some(nv);
                                        nv
                                    }
                                };
                                Term::Var(nv)
                            }
                            TermSpec::Int(n) => Term::Const(Value::Int(*n)),
                            TermSpec::Str(k) => Term::Const(pool.str(strings[*k as usize])),
                        })
                        .collect(),
                )
            })
            .collect();
        if names.len() < 2 {
            return Ok(());
        }
        let x = Var((eq_pick.0 % names.len()) as u32);
        let y = Var((eq_pick.1 % names.len()) as u32);
        let Ok(egd) = Egd::new("e", atoms, (x, y), names) else { return Ok(()) };
        let rendered = egd_to_string(&pool, &t, &egd);
        let reparsed = parse_egd(&t, &mut pool, &rendered)
            .unwrap_or_else(|e| panic!("rendered egd must reparse: {e}\n{rendered}"));
        prop_assert_eq!(&egd, &reparsed, "{}", rendered);
    }
}
