//! Property test: rendering a random well-formed dependency and re-parsing
//! it yields the same dependency (display ∘ parse = id).
//!
//! Ported from `proptest` to seeded deterministic loops over the in-repo
//! PRNG; the original case counts (256 per property) are preserved.

use routes_gen::Rng;
use routes_mapping::{egd_to_string, parse_egd, parse_st_tgd, tgd_to_string, Egd, Tgd};
use routes_model::{Atom, RelId, Schema, Term, Value, ValuePool, Var};

/// A random tgd description: per-atom (relation, terms), where a term is a
/// variable index or a constant.
#[derive(Debug, Clone)]
struct TgdSpec {
    lhs: Vec<(usize, Vec<TermSpec>)>,
    rhs: Vec<(usize, Vec<TermSpec>)>,
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(u32),
    Int(i64),
    Str(u8),
}

/// The proptest term strategy, reified: 4:1:1 var/int/string weights.
fn random_term(rng: &mut Rng) -> TermSpec {
    match rng.gen_range(0..6usize) {
        0..=3 => TermSpec::Var(rng.gen_range(0..6u32)),
        4 => TermSpec::Int(rng.gen_range(-20..100i64)),
        _ => TermSpec::Str(rng.gen_range(0..4u8)),
    }
}

fn random_atoms(
    rng: &mut Rng,
    nrels: usize,
    arity: usize,
    count: std::ops::Range<usize>,
) -> Vec<(usize, Vec<TermSpec>)> {
    (0..rng.gen_range(count))
        .map(|_| {
            (
                rng.gen_range(0..nrels),
                (0..arity).map(|_| random_term(rng)).collect(),
            )
        })
        .collect()
}

fn schemas() -> (Schema, Schema) {
    let mut s = Schema::new();
    for k in 0..3 {
        s.rel(&format!("S{k}"), &["a", "b"]);
    }
    let mut t = Schema::new();
    for k in 0..3 {
        t.rel(&format!("T{k}"), &["a", "b"]);
    }
    (s, t)
}

const STRINGS: [&str; 4] = ["alpha", "beta", "with space", "quo#te"];

/// Convert a spec atom list, compacting variables to a dense space.
fn convert_atoms(
    atoms: &[(usize, Vec<TermSpec>)],
    pool: &mut ValuePool,
    names: &mut Vec<String>,
    remap: &mut [Option<Var>],
) -> Vec<Atom> {
    atoms
        .iter()
        .map(|(rel, terms)| {
            Atom::new(
                RelId(*rel as u32),
                terms
                    .iter()
                    .map(|t| match t {
                        TermSpec::Var(v) => {
                            let slot = &mut remap[*v as usize];
                            let nv = match slot {
                                Some(nv) => *nv,
                                None => {
                                    let nv = Var(names.len() as u32);
                                    names.push(format!("v{v}"));
                                    *slot = Some(nv);
                                    nv
                                }
                            };
                            Term::Var(nv)
                        }
                        TermSpec::Int(n) => Term::Const(Value::Int(*n)),
                        TermSpec::Str(k) => Term::Const(pool.str(STRINGS[*k as usize])),
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Build a Tgd from a spec, compacting variables to a dense space.
fn build_tgd(spec: &TgdSpec, pool: &mut ValuePool) -> Option<Tgd> {
    let mut names: Vec<String> = Vec::new();
    let mut remap: Vec<Option<Var>> = vec![None; 6];
    let lhs = convert_atoms(&spec.lhs, pool, &mut names, &mut remap);
    let rhs = convert_atoms(&spec.rhs, pool, &mut names, &mut remap);
    Tgd::new("m", lhs, rhs, names).ok()
}

#[test]
fn tgd_display_parse_roundtrip() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x76D + case);
        let spec = TgdSpec {
            lhs: random_atoms(&mut rng, 3, 2, 1..3),
            rhs: random_atoms(&mut rng, 3, 2, 1..3),
        };
        let (s, t) = schemas();
        let mut pool = ValuePool::new();
        let Some(tgd) = build_tgd(&spec, &mut pool) else {
            continue;
        };
        // Interpret LHS rels over source, RHS over target: rebuild with the
        // correct schemas by rendering and parsing as s-t tgd.
        let rendered = tgd_to_string(&pool, &s, &t, &tgd);
        let reparsed = parse_st_tgd(&s, &t, &mut pool, &rendered)
            .unwrap_or_else(|e| panic!("case {case}: rendered tgd must reparse: {e}\n{rendered}"));
        assert_eq!(&tgd, &reparsed, "case {case}: {rendered}");
        // And the rendering is a fixpoint.
        let rendered2 = tgd_to_string(&pool, &s, &t, &reparsed);
        assert_eq!(rendered, rendered2, "case {case}");
    }
}

#[test]
fn egd_display_parse_roundtrip() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xE6D + case);
        let lhs = random_atoms(&mut rng, 3, 2, 1..3);
        let eq_pick = (rng.gen_range(0..4usize), rng.gen_range(0..4usize));

        let (_, t) = schemas();
        let mut pool = ValuePool::new();
        let mut names: Vec<String> = Vec::new();
        let mut remap: Vec<Option<Var>> = vec![None; 6];
        let atoms = convert_atoms(&lhs, &mut pool, &mut names, &mut remap);
        if names.len() < 2 {
            continue;
        }
        let x = Var((eq_pick.0 % names.len()) as u32);
        let y = Var((eq_pick.1 % names.len()) as u32);
        let Ok(egd) = Egd::new("e", atoms, (x, y), names) else {
            continue;
        };
        let rendered = egd_to_string(&pool, &t, &egd);
        let reparsed = parse_egd(&t, &mut pool, &rendered)
            .unwrap_or_else(|e| panic!("case {case}: rendered egd must reparse: {e}\n{rendered}"));
        assert_eq!(&egd, &reparsed, "case {case}: {rendered}");
    }
}
