//! Rendering dependencies back to the paper's text syntax.

use routes_model::{Atom, Schema, Term, ValuePool};

use crate::dep::{Egd, Tgd};

fn atom_to_string(
    pool: &ValuePool,
    schema: &Schema,
    atom: &Atom,
    var_name: impl Fn(u32) -> String,
) -> String {
    let mut out = String::new();
    out.push_str(schema.relation(atom.rel).name());
    out.push('(');
    for (i, term) in atom.terms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match term {
            Term::Var(v) => out.push_str(&var_name(v.0)),
            Term::Const(c) => match c {
                routes_model::Value::Int(n) => out.push_str(&n.to_string()),
                routes_model::Value::Str(s) => {
                    out.push('\'');
                    out.push_str(pool.resolve(*s));
                    out.push('\'');
                }
                routes_model::Value::Null(n) => out.push_str(pool.null_label(*n)),
            },
        }
    }
    out.push(')');
    out
}

/// Render a tgd as `name: lhs -> exists e1, e2: rhs` (existential clause
/// omitted when there are no existential variables).
pub fn tgd_to_string(
    pool: &ValuePool,
    lhs_schema: &Schema,
    rhs_schema: &Schema,
    tgd: &Tgd,
) -> String {
    let var_name = |i: u32| tgd.var_name(routes_model::Var(i)).to_owned();
    let lhs = tgd
        .lhs()
        .iter()
        .map(|a| atom_to_string(pool, lhs_schema, a, var_name))
        .collect::<Vec<_>>()
        .join(" & ");
    let rhs = tgd
        .rhs()
        .iter()
        .map(|a| atom_to_string(pool, rhs_schema, a, var_name))
        .collect::<Vec<_>>()
        .join(" & ");
    let existentials: Vec<String> = tgd
        .existential_vars()
        .map(|v| tgd.var_name(v).to_owned())
        .collect();
    if existentials.is_empty() {
        format!("{}: {} -> {}", tgd.name(), lhs, rhs)
    } else {
        format!(
            "{}: {} -> exists {}: {}",
            tgd.name(),
            lhs,
            existentials.join(", "),
            rhs
        )
    }
}

/// Render an egd as `name: lhs -> x = y`.
pub fn egd_to_string(pool: &ValuePool, target_schema: &Schema, egd: &Egd) -> String {
    let var_name = |i: u32| egd.var_name(routes_model::Var(i)).to_owned();
    let lhs = egd
        .lhs()
        .iter()
        .map(|a| atom_to_string(pool, target_schema, a, var_name))
        .collect::<Vec<_>>()
        .join(" & ");
    let (x, y) = egd.equated();
    format!(
        "{}: {} -> {} = {}",
        egd.name(),
        lhs,
        egd.var_name(x),
        egd.var_name(y)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_egd, parse_st_tgd};
    use routes_model::Schema;

    #[test]
    fn tgd_roundtrips_through_parser() {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b", "c"]);
        let mut pool = ValuePool::new();
        let text = "m: S(x, y) & S(y, 3) -> exists Z: T(x, y, Z) & T(x, 'lit', Z)";
        let tgd = parse_st_tgd(&s, &t, &mut pool, text).unwrap();
        let rendered = tgd_to_string(&pool, &s, &t, &tgd);
        let tgd2 = parse_st_tgd(&s, &t, &mut pool, &rendered).unwrap();
        assert_eq!(tgd, tgd2);
    }

    #[test]
    fn egd_roundtrips_through_parser() {
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        let mut pool = ValuePool::new();
        let text = "e: T(x, y) & T(x, z) -> y = z";
        let egd = parse_egd(&t, &mut pool, text).unwrap();
        let rendered = egd_to_string(&pool, &t, &egd);
        let egd2 = parse_egd(&t, &mut pool, &rendered).unwrap();
        assert_eq!(egd, egd2);
    }
}
