//! Text syntax for dependencies, mirroring the paper's notation.
//!
//! Examples (paper Figure 1):
//!
//! ```text
//! m1: Cards(cn,l,s,n,m,sal,loc) -> exists A: Accounts(cn,l,s) & Clients(s,m,m,sal,A)
//! m4: Accounts(a,l,s) -> exists N, M, I, A: Clients(s,N,M,I,A)
//! m6: Accounts(a,l,s) & Accounts(a2,l2,s) -> l = l2
//! ```
//!
//! Lexical conventions:
//! * **Bare identifiers are variables** (the paper's `cn`, `s`, `A`, `M1`).
//! * **String constants are quoted** (`'Seattle'` or `"Seattle"`), integer
//!   constants are numeric literals (`15`, `-3`).
//! * Conjunction is `&`, `∧`, or the literal word `and`.
//! * The implication arrow is `->` or `→`.
//! * The existential prefix is optional — existential variables are inferred
//!   as the RHS variables absent from the LHS — but when written (`exists
//!   A, M:` or `∃A ∃M:`) the declared variables are checked against the LHS.
//! * A trailing `.` is allowed; `#` starts a comment to end of line.

use routes_model::{Atom, Schema, Term, Value, ValuePool, Var};

use crate::dep::{Dependency, Egd, Tgd};
use crate::error::MappingError;

/// Parse a source-to-target tgd: LHS relations resolve in `source`, RHS
/// relations in `target`.
pub fn parse_st_tgd(
    source: &Schema,
    target: &Schema,
    pool: &mut ValuePool,
    text: &str,
) -> Result<Tgd, MappingError> {
    let raw = RawDep::parse(text, pool)?;
    raw.into_tgd(source, target)
}

/// Parse a target tgd: both sides resolve in `target`.
pub fn parse_target_tgd(
    target: &Schema,
    pool: &mut ValuePool,
    text: &str,
) -> Result<Tgd, MappingError> {
    let raw = RawDep::parse(text, pool)?;
    raw.into_tgd(target, target)
}

/// Parse a target egd (`φ(x) -> x1 = x2`).
pub fn parse_egd(target: &Schema, pool: &mut ValuePool, text: &str) -> Result<Egd, MappingError> {
    let raw = RawDep::parse(text, pool)?;
    raw.into_egd(target)
}

/// Parse any dependency, auto-detecting its kind:
/// * RHS of the form `x = y` ⇒ target egd;
/// * otherwise, if every LHS relation resolves in the source schema (and the
///   resolution is unambiguous) ⇒ s-t tgd; if every LHS relation resolves in
///   the target ⇒ target tgd.
pub fn parse_dependency(
    source: &Schema,
    target: &Schema,
    pool: &mut ValuePool,
    text: &str,
) -> Result<Dependency, MappingError> {
    let raw = RawDep::parse(text, pool)?;
    if raw.is_egd() {
        return raw.into_egd(target).map(Dependency::Egd);
    }
    let in_source = raw.lhs_resolves_in(source);
    let in_target = raw.lhs_resolves_in(target);
    match (in_source, in_target) {
        (true, false) => raw.into_tgd(source, target).map(Dependency::StTgd),
        (false, true) => raw.into_tgd(target, target).map(Dependency::TargetTgd),
        (true, true) => Err(MappingError::Parse {
            message: format!(
                "dependency `{}` is ambiguous: its LHS relations exist in both schemas; \
                 use parse_st_tgd or parse_target_tgd",
                raw.name
            ),
            offset: 0,
        }),
        (false, false) => Err(MappingError::UnknownRelation {
            dep: raw.name.clone(),
            relation: raw.first_unresolvable(source, target),
            schema: "source or target".into(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Internal: tokenization and raw (schema-unresolved) parse structure.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Amp,
    Arrow,
    Colon,
    Eq,
    Dot,
    Exists,
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, MappingError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    // Track byte offset approximately via char count (fine for errors).
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '&' | '∧' => {
                toks.push((Tok::Amp, i));
                i += 1;
            }
            ':' => {
                toks.push((Tok::Colon, i));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '→' => {
                toks.push((Tok::Arrow, i));
                i += 1;
            }
            '∃' => {
                toks.push((Tok::Exists, i));
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    toks.push((Tok::Arrow, i));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let start = i;
                    i += 1;
                    let mut num = String::from("-");
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        num.push(bytes[i]);
                        i += 1;
                    }
                    toks.push((
                        Tok::Int(num.parse().map_err(|_| MappingError::Parse {
                            message: format!("invalid integer `{num}`"),
                            offset: start,
                        })?),
                        start,
                    ));
                } else {
                    return Err(MappingError::Parse {
                        message: "unexpected `-`".into(),
                        offset: i,
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != quote {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(MappingError::Parse {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                i += 1; // closing quote
                toks.push((Tok::Str(s), start));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut num = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    num.push(bytes[i]);
                    i += 1;
                }
                toks.push((
                    Tok::Int(num.parse().map_err(|_| MappingError::Parse {
                        message: format!("invalid integer `{num}`"),
                        offset: start,
                    })?),
                    start,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut id = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    id.push(bytes[i]);
                    i += 1;
                }
                match id.as_str() {
                    "exists" => toks.push((Tok::Exists, start)),
                    "and" => toks.push((Tok::Amp, start)),
                    _ => toks.push((Tok::Ident(id), start)),
                }
            }
            other => {
                return Err(MappingError::Parse {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                });
            }
        }
    }
    Ok(toks)
}

/// A term before schema resolution.
#[derive(Debug, Clone)]
enum RawTerm {
    Var(String),
    Const(Value),
}

#[derive(Debug, Clone)]
struct RawAtom {
    rel_name: String,
    terms: Vec<RawTerm>,
}

/// Conclusion of a dependency: atoms (tgd) or an equality (egd).
#[derive(Debug, Clone)]
enum RawRhs {
    Atoms(Vec<RawAtom>),
    Equality(String, String),
}

#[derive(Debug)]
struct RawDep {
    name: String,
    lhs: Vec<RawAtom>,
    rhs: RawRhs,
    declared_existentials: Vec<String>,
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, o)| *o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), MappingError> {
        let off = self.offset();
        match self.bump() {
            Some(t) if &t == want => Ok(()),
            other => Err(MappingError::Parse {
                message: format!("expected {what}, found {other:?}"),
                offset: off,
            }),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, MappingError> {
        Err(MappingError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn atom(&mut self, pool: &mut ValuePool) -> Result<RawAtom, MappingError> {
        let offset = self.offset();
        let rel_name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            other => {
                return Err(MappingError::Parse {
                    message: format!("expected relation name, found {other:?}"),
                    offset,
                })
            }
        };
        self.expect(&Tok::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            let t = match self.bump() {
                Some(Tok::Ident(v)) => RawTerm::Var(v),
                Some(Tok::Int(n)) => RawTerm::Const(Value::Int(n)),
                Some(Tok::Str(s)) => RawTerm::Const(pool.str(&s)),
                other => {
                    return self.err(format!("expected term, found {other:?}"));
                }
            };
            terms.push(t);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return self.err(format!("expected `,` or `)`, found {other:?}")),
            }
        }
        let _ = offset;
        Ok(RawAtom { rel_name, terms })
    }

    fn conj(&mut self, pool: &mut ValuePool) -> Result<Vec<RawAtom>, MappingError> {
        let mut atoms = vec![self.atom(pool)?];
        while self.peek() == Some(&Tok::Amp) {
            self.bump();
            atoms.push(self.atom(pool)?);
        }
        Ok(atoms)
    }
}

impl RawDep {
    fn parse(text: &str, pool: &mut ValuePool) -> Result<RawDep, MappingError> {
        let toks = tokenize(text)?;
        let mut p = P { toks, pos: 0 };

        // Optional `name :` prefix: an identifier immediately followed by a
        // colon (and not by `(`).
        let mut name = String::from("<anon>");
        if p.toks.len() >= 2 {
            if let (Tok::Ident(id), Tok::Colon) = (&p.toks[0].0, &p.toks[1].0) {
                name = id.clone();
                p.pos = 2;
            }
        }

        let lhs = p.conj(pool)?;
        p.expect(&Tok::Arrow, "`->`")?;

        // Optional existential prefix: (exists|∃) idents [, idents]* [:|.]
        let mut declared_existentials = Vec::new();
        while p.peek() == Some(&Tok::Exists) {
            p.bump();
            loop {
                match p.peek().cloned() {
                    Some(Tok::Ident(v)) => {
                        declared_existentials.push(v);
                        p.bump();
                        if p.peek() == Some(&Tok::Comma) {
                            p.bump();
                            continue;
                        }
                        break;
                    }
                    other => {
                        return p.err(format!("expected existential variable, found {other:?}"))
                    }
                }
            }
        }
        if !declared_existentials.is_empty()
            && matches!(p.peek(), Some(Tok::Colon) | Some(Tok::Dot))
        {
            p.bump();
        }

        // Equality conclusion (egd) or atom conjunction (tgd)?
        // Lookahead: Ident Eq ⇒ egd.
        let rhs = if matches!(
            (p.peek(), p.toks.get(p.pos + 1).map(|(t, _)| t)),
            (Some(Tok::Ident(_)), Some(Tok::Eq))
        ) {
            let x = match p.bump() {
                Some(Tok::Ident(v)) => v,
                _ => unreachable!("checked by lookahead"),
            };
            p.bump(); // Eq
            let y = match p.bump() {
                Some(Tok::Ident(v)) => v,
                other => return p.err(format!("expected variable after `=`, found {other:?}")),
            };
            RawRhs::Equality(x, y)
        } else {
            RawRhs::Atoms(p.conj(pool)?)
        };

        // Optional trailing dot, then end of input.
        if p.peek() == Some(&Tok::Dot) {
            p.bump();
        }
        if p.peek().is_some() {
            return p.err("unexpected trailing input");
        }

        Ok(RawDep {
            name,
            lhs,
            rhs,
            declared_existentials,
        })
    }

    fn is_egd(&self) -> bool {
        matches!(self.rhs, RawRhs::Equality(_, _))
    }

    fn lhs_resolves_in(&self, schema: &Schema) -> bool {
        self.lhs
            .iter()
            .all(|a| schema.rel_id(&a.rel_name).is_some())
    }

    fn first_unresolvable(&self, source: &Schema, target: &Schema) -> String {
        self.lhs
            .iter()
            .find(|a| source.rel_id(&a.rel_name).is_none() && target.rel_id(&a.rel_name).is_none())
            .map(|a| a.rel_name.clone())
            .unwrap_or_default()
    }

    /// Resolve into a tgd against explicit LHS/RHS schemas.
    fn into_tgd(self, lhs_schema: &Schema, rhs_schema: &Schema) -> Result<Tgd, MappingError> {
        let RawRhs::Atoms(rhs_atoms) = self.rhs else {
            return Err(MappingError::Parse {
                message: format!("dependency `{}` is an egd, not a tgd", self.name),
                offset: 0,
            });
        };
        let mut var_names: Vec<String> = Vec::new();
        let resolve_var = |name: &str, var_names: &mut Vec<String>| -> Var {
            if let Some(i) = var_names.iter().position(|n| n == name) {
                Var(i as u32)
            } else {
                var_names.push(name.to_owned());
                Var((var_names.len() - 1) as u32)
            }
        };
        let build = |atoms: &[RawAtom],
                     schema: &Schema,
                     schema_desc: &str,
                     var_names: &mut Vec<String>|
         -> Result<Vec<Atom>, MappingError> {
            atoms
                .iter()
                .map(|a| {
                    let rel = schema.rel_id(&a.rel_name).ok_or_else(|| {
                        MappingError::UnknownRelation {
                            dep: self.name.clone(),
                            relation: a.rel_name.clone(),
                            schema: schema_desc.into(),
                        }
                    })?;
                    let terms = a
                        .terms
                        .iter()
                        .map(|t| match t {
                            RawTerm::Var(v) => Term::Var(resolve_var(v, var_names)),
                            RawTerm::Const(c) => Term::Const(*c),
                        })
                        .collect();
                    Ok(Atom::new(rel, terms))
                })
                .collect()
        };
        let lhs = build(&self.lhs, lhs_schema, "LHS", &mut var_names)?;
        let lhs_var_count = var_names.len();
        let rhs = build(&rhs_atoms, rhs_schema, "RHS", &mut var_names)?;
        // Check declared existentials against the (actual) LHS variables.
        for ex in &self.declared_existentials {
            if var_names[..lhs_var_count].iter().any(|n| n == ex) {
                return Err(MappingError::ExistentialInLhs {
                    dep: self.name,
                    var: ex.clone(),
                });
            }
        }
        let tgd = Tgd::new(self.name, lhs, rhs, var_names)?;
        tgd.validate(lhs_schema, rhs_schema)?;
        Ok(tgd)
    }

    fn into_egd(self, target: &Schema) -> Result<Egd, MappingError> {
        let RawRhs::Equality(x, y) = &self.rhs else {
            return Err(MappingError::Parse {
                message: format!("dependency `{}` is a tgd, not an egd", self.name),
                offset: 0,
            });
        };
        let mut var_names: Vec<String> = Vec::new();
        let resolve_var = |name: &str, var_names: &mut Vec<String>| -> Var {
            if let Some(i) = var_names.iter().position(|n| n == name) {
                Var(i as u32)
            } else {
                var_names.push(name.to_owned());
                Var((var_names.len() - 1) as u32)
            }
        };
        let lhs: Vec<Atom> =
            self.lhs
                .iter()
                .map(|a| {
                    let rel = target.rel_id(&a.rel_name).ok_or_else(|| {
                        MappingError::UnknownRelation {
                            dep: self.name.clone(),
                            relation: a.rel_name.clone(),
                            schema: "target".into(),
                        }
                    })?;
                    let terms = a
                        .terms
                        .iter()
                        .map(|t| match t {
                            RawTerm::Var(v) => Term::Var(resolve_var(v, &mut var_names)),
                            RawTerm::Const(c) => Term::Const(*c),
                        })
                        .collect();
                    Ok(Atom::new(rel, terms))
                })
                .collect::<Result<_, MappingError>>()?;
        let vx = resolve_var(x, &mut var_names);
        let vy = resolve_var(y, &mut var_names);
        let egd = Egd::new(self.name, lhs, (vx, vy), var_names)?;
        egd.validate(target)?;
        Ok(egd)
    }
}

/// Parse a pipeline stage header of the form `stage <name>:` (the
/// multi-stage scenario syntax). The caller decides a line *is* a stage
/// header (its first word is `stage`, case-insensitively); this function
/// validates the shape and returns the stage name. The name must be a bare
/// identifier — pipeline endpoints echo it back in JSON unescaped.
pub fn parse_stage_header(line: &str) -> Result<String, MappingError> {
    let malformed = |message: &str| MappingError::MalformedStageHeader {
        header: line.to_owned(),
        message: message.to_owned(),
    };
    let trimmed = line.trim();
    let rest = trimmed
        .strip_prefix("stage")
        .or_else(|| trimmed.strip_prefix("Stage"))
        .or_else(|| trimmed.strip_prefix("STAGE"))
        .ok_or_else(|| malformed("expected the keyword `stage`"))?;
    if !rest.starts_with(char::is_whitespace) {
        return Err(malformed("expected whitespace after `stage`"));
    }
    let body = rest.trim();
    let Some(name) = body.strip_suffix(':') else {
        return Err(malformed("expected a trailing `:`"));
    };
    let name = name.trim();
    if name.is_empty() {
        return Err(malformed("expected a stage name before `:`"));
    }
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_alphabetic() || c == '_');
    if !head_ok || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(malformed("stage name must be a bare identifier"));
    }
    Ok(name.to_owned())
}

/// Reject duplicate stage names in a pipeline chain (stage names key the
/// per-stage blocks of stitched-route answers, so they must be unique).
pub fn validate_stage_names<S: AsRef<str>>(names: &[S]) -> Result<(), MappingError> {
    let mut seen = std::collections::HashSet::new();
    for name in names {
        if !seen.insert(name.as_ref()) {
            return Err(MappingError::DuplicateStage {
                stage: name.as_ref().to_owned(),
            });
        }
    }
    Ok(())
}

/// Check that consecutive pipeline stages compose: `next_source` (the
/// source schema of stage `stage`) must declare exactly the relations of
/// `prev_target` (the target schema of stage `previous`), with matching
/// arities. Relation declaration *order* may differ — the pipeline runner
/// rebinds instances by relation name.
pub fn check_stage_compatibility(
    previous: &str,
    prev_target: &Schema,
    stage: &str,
    next_source: &Schema,
) -> Result<(), MappingError> {
    let mismatch = |relation: &str, detail: String| MappingError::StageSchemaMismatch {
        stage: stage.to_owned(),
        previous: previous.to_owned(),
        relation: relation.to_owned(),
        detail,
    };
    for (_, rel) in prev_target.iter() {
        match next_source.rel_id(rel.name()) {
            None => {
                return Err(mismatch(
                    rel.name(),
                    "is missing from the source schema".into(),
                ))
            }
            Some(id) => {
                let got = next_source.relation(id).arity();
                let expected = rel.arity();
                if got != expected {
                    return Err(mismatch(
                        rel.name(),
                        format!("has arity {expected} upstream but {got} here"),
                    ));
                }
            }
        }
    }
    for (_, rel) in next_source.iter() {
        if prev_target.rel_id(rel.name()).is_none() {
            return Err(mismatch(
                rel.name(),
                "does not exist in the upstream target schema".into(),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fargo_schemas() -> (Schema, Schema) {
        let mut s = Schema::new();
        s.rel(
            "Cards",
            &[
                "cardNo",
                "limit",
                "ssn",
                "name",
                "maidenName",
                "salary",
                "location",
            ],
        );
        s.rel("SupplementaryCards", &["accNo", "ssn", "name", "address"]);
        let mut t = Schema::new();
        t.rel("Accounts", &["accNo", "limit", "accHolder"]);
        t.rel(
            "Clients",
            &["ssn", "name", "maidenName", "income", "address"],
        );
        (s, t)
    }

    #[test]
    fn parses_paper_m1() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let tgd = parse_st_tgd(
            &s,
            &t,
            &mut pool,
            "m1: Cards(cn,l,s,n,m,sal,loc) -> exists A: Accounts(cn,l,s) & Clients(s,m,m,sal,A)",
        )
        .unwrap();
        assert_eq!(tgd.name(), "m1");
        assert_eq!(tgd.lhs().len(), 1);
        assert_eq!(tgd.rhs().len(), 2);
        assert_eq!(tgd.var_count(), 8);
        let ex: Vec<_> = tgd
            .existential_vars()
            .map(|v| tgd.var_name(v).to_owned())
            .collect();
        assert_eq!(ex, ["A"]);
        // Variable `m` is repeated in Clients(s, m, m, ...).
        let clients = &tgd.rhs()[1];
        assert_eq!(clients.terms[1], clients.terms[2]);
    }

    #[test]
    fn parses_paper_m6_egd() {
        let (_, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let egd = parse_egd(
            &t,
            &mut pool,
            "m6: Accounts(a,l,s) & Accounts(a2,l2,s) -> l = l2",
        )
        .unwrap();
        assert_eq!(egd.name(), "m6");
        assert_eq!(egd.lhs().len(), 2);
        let (x, y) = egd.equated();
        assert_eq!(egd.var_name(x), "l");
        assert_eq!(egd.var_name(y), "l2");
    }

    #[test]
    fn auto_detects_kinds() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let st = parse_dependency(
            &s,
            &t,
            &mut pool,
            "SupplementaryCards(an,s,n,a) -> exists M, I: Clients(s,n,M,I,a)",
        )
        .unwrap();
        assert!(matches!(st, Dependency::StTgd(_)));
        let tt = parse_dependency(
            &s,
            &t,
            &mut pool,
            "m5: Clients(s,n,m,i,a) -> exists N, L: Accounts(N,L,s)",
        )
        .unwrap();
        assert!(matches!(tt, Dependency::TargetTgd(_)));
        let egd = parse_dependency(
            &s,
            &t,
            &mut pool,
            "Accounts(a,l,s) & Accounts(b,l2,s) -> l = l2",
        )
        .unwrap();
        assert!(matches!(egd, Dependency::Egd(_)));
    }

    #[test]
    fn constants_are_quoted_or_numeric() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let tgd = parse_st_tgd(
            &s,
            &t,
            &mut pool,
            "Cards(cn, 15, s, 'J. Long', m, sal, loc) -> Accounts(cn, 15, s)",
        )
        .unwrap();
        assert_eq!(tgd.var_count(), 5); // cn, s, m, sal, loc
        let sym = pool.lookup("J. Long").expect("string constant interned");
        assert!(tgd.lhs()[0]
            .terms
            .iter()
            .any(|t| matches!(t, Term::Const(Value::Str(sy)) if *sy == sym)));
    }

    #[test]
    fn unicode_syntax_accepted() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let tgd = parse_st_tgd(
            &s,
            &t,
            &mut pool,
            "SupplementaryCards(an,s,n,a) → ∃M ∃I Clients(s,n,M,I,a)",
        )
        .unwrap();
        let ex: Vec<_> = tgd
            .existential_vars()
            .map(|v| tgd.var_name(v).to_owned())
            .collect();
        // Existentials are reported in variable-index order (first occurrence).
        assert_eq!(ex, ["M", "I"]);
    }

    #[test]
    fn errors_are_reported() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        assert!(matches!(
            parse_st_tgd(&s, &t, &mut pool, "Nope(x) -> Accounts(x, x, x)"),
            Err(MappingError::UnknownRelation { .. })
        ));
        assert!(matches!(
            parse_st_tgd(&s, &t, &mut pool, "Cards(a,b,c) -> Accounts(a,b,c)"),
            Err(MappingError::ArityMismatch { .. })
        ));
        assert!(matches!(
            parse_st_tgd(
                &s,
                &t,
                &mut pool,
                "SupplementaryCards(an,s,n,a) -> exists s: Clients(s,n,s,s,a)"
            ),
            Err(MappingError::ExistentialInLhs { .. })
        ));
        assert!(matches!(
            parse_st_tgd(&s, &t, &mut pool, "Cards(a,b,c,d,e,f,g -> Accounts(a,b,c)"),
            Err(MappingError::Parse { .. })
        ));
        assert!(matches!(
            parse_egd(&t, &mut pool, "Accounts(a,l,s) -> Accounts(a,l,s)"),
            Err(MappingError::Parse { .. })
        ));
    }

    #[test]
    fn comments_and_trailing_dot() {
        let (s, t) = fargo_schemas();
        let mut pool = ValuePool::new();
        let tgd = parse_st_tgd(
            &s,
            &t,
            &mut pool,
            "SupplementaryCards(an,s,n,a) -> Clients(s,n,n,s,a). # copy supp cards",
        )
        .unwrap();
        assert_eq!(tgd.rhs().len(), 1);
    }

    #[test]
    fn stage_headers_parse() {
        assert_eq!(parse_stage_header("stage clean:").unwrap(), "clean");
        assert_eq!(parse_stage_header("  Stage  hop_2 :  ").unwrap(), "hop_2");
    }

    #[test]
    fn malformed_stage_headers_are_typed_errors() {
        for bad in [
            "stage:",         // no name
            "stage clean",    // no colon
            "stage one two:", // not a bare identifier
            "stage 2fast:",   // identifier must not start with a digit
            "stages clean:",  // keyword must be exactly `stage`
            "stage 'x':",     // quoted names rejected
        ] {
            let err = parse_stage_header(bad).unwrap_err();
            assert!(
                matches!(err, MappingError::MalformedStageHeader { ref header, .. } if header == bad),
                "{bad} -> {err}"
            );
        }
    }

    #[test]
    fn duplicate_stage_names_are_typed_errors() {
        assert!(validate_stage_names(&["clean", "publish"]).is_ok());
        let err = validate_stage_names(&["clean", "publish", "clean"]).unwrap_err();
        assert!(matches!(err, MappingError::DuplicateStage { ref stage } if stage == "clean"));
    }

    #[test]
    fn stage_arity_mismatches_are_typed_errors() {
        let mut prev = Schema::new();
        prev.rel("T", &["a", "b"]);
        prev.rel("U", &["a"]);

        // Identical relations in a different declaration order are fine.
        let mut next = Schema::new();
        next.rel("U", &["a"]);
        next.rel("T", &["a", "b"]);
        check_stage_compatibility("one", &prev, "two", &next).unwrap();

        // Arity drift is a typed error naming the relation and both stages.
        let mut narrowed = Schema::new();
        narrowed.rel("T", &["a"]);
        narrowed.rel("U", &["a"]);
        let err = check_stage_compatibility("one", &prev, "two", &narrowed).unwrap_err();
        match err {
            MappingError::StageSchemaMismatch {
                stage,
                previous,
                relation,
                detail,
            } => {
                assert_eq!((stage.as_str(), previous.as_str()), ("two", "one"));
                assert_eq!(relation, "T");
                assert!(
                    detail.contains("arity 2") && detail.contains('1'),
                    "{detail}"
                );
            }
            other => panic!("expected StageSchemaMismatch, got {other}"),
        }

        // A missing relation and an extra relation are both rejected.
        let mut missing = Schema::new();
        missing.rel("T", &["a", "b"]);
        assert!(matches!(
            check_stage_compatibility("one", &prev, "two", &missing),
            Err(MappingError::StageSchemaMismatch { ref relation, .. }) if relation == "U"
        ));
        let mut extra = Schema::new();
        extra.rel("T", &["a", "b"]);
        extra.rel("U", &["a"]);
        extra.rel("V", &["a"]);
        assert!(matches!(
            check_stage_compatibility("one", &prev, "two", &extra),
            Err(MappingError::StageSchemaMismatch { ref relation, .. }) if relation == "V"
        ));
    }
}
