//! The schema-mapping container `M = (S, T, Σst, Σt)`.

use routes_model::Schema;

use crate::dep::{Dependency, Egd, Tgd, TgdId};
use crate::error::MappingError;

/// A schema mapping: source and target schemas plus the dependency sets
/// `Σst` (s-t tgds) and `Σt` (target tgds and target egds).
///
/// Dependencies are validated against the schemas as they are added, so a
/// constructed mapping is always well-formed.
#[derive(Debug, Clone)]
pub struct SchemaMapping {
    source: Schema,
    target: Schema,
    st_tgds: Vec<Tgd>,
    target_tgds: Vec<Tgd>,
    egds: Vec<Egd>,
}

impl SchemaMapping {
    /// Create a mapping with no dependencies yet.
    pub fn new(source: Schema, target: Schema) -> Self {
        SchemaMapping {
            source,
            target,
            st_tgds: Vec::new(),
            target_tgds: Vec::new(),
            egds: Vec::new(),
        }
    }

    /// The source schema `S`.
    pub fn source(&self) -> &Schema {
        &self.source
    }

    /// The target schema `T`.
    pub fn target(&self) -> &Schema {
        &self.target
    }

    /// Add a source-to-target tgd (validated). Returns its id.
    pub fn add_st_tgd(&mut self, tgd: Tgd) -> Result<TgdId, MappingError> {
        tgd.validate(&self.source, &self.target)?;
        self.st_tgds.push(tgd);
        Ok(TgdId::St((self.st_tgds.len() - 1) as u32))
    }

    /// Add a target tgd (validated). Returns its id.
    pub fn add_target_tgd(&mut self, tgd: Tgd) -> Result<TgdId, MappingError> {
        tgd.validate(&self.target, &self.target)?;
        self.target_tgds.push(tgd);
        Ok(TgdId::Target((self.target_tgds.len() - 1) as u32))
    }

    /// Add a target egd (validated).
    pub fn add_egd(&mut self, egd: Egd) -> Result<(), MappingError> {
        egd.validate(&self.target)?;
        self.egds.push(egd);
        Ok(())
    }

    /// Add any parsed dependency.
    pub fn add_dependency(&mut self, dep: Dependency) -> Result<Option<TgdId>, MappingError> {
        match dep {
            Dependency::StTgd(t) => self.add_st_tgd(t).map(Some),
            Dependency::TargetTgd(t) => self.add_target_tgd(t).map(Some),
            Dependency::Egd(e) => self.add_egd(e).map(|()| None),
        }
    }

    /// The s-t tgds `Σst`.
    pub fn st_tgds(&self) -> &[Tgd] {
        &self.st_tgds
    }

    /// The target tgds (the tgd part of `Σt`).
    pub fn target_tgds(&self) -> &[Tgd] {
        &self.target_tgds
    }

    /// The target egds (the egd part of `Σt`).
    pub fn egds(&self) -> &[Egd] {
        &self.egds
    }

    /// Resolve a tgd id.
    ///
    /// # Panics
    /// Panics if the id is out of range for this mapping.
    pub fn tgd(&self, id: TgdId) -> &Tgd {
        match id {
            TgdId::St(i) => &self.st_tgds[i as usize],
            TgdId::Target(i) => &self.target_tgds[i as usize],
        }
    }

    /// Iterate over all tgd ids, s-t first (the order `ComputeOneRoute`
    /// tries them: paper Fig. 7 considers s-t tgds before target tgds).
    pub fn tgd_ids(&self) -> impl Iterator<Item = TgdId> {
        let st = (0..self.st_tgds.len() as u32).map(TgdId::St);
        let tt = (0..self.target_tgds.len() as u32).map(TgdId::Target);
        st.chain(tt)
    }

    /// Look up a tgd by display name.
    pub fn tgd_by_name(&self, name: &str) -> Option<TgdId> {
        if let Some(i) = self.st_tgds.iter().position(|t| t.name() == name) {
            return Some(TgdId::St(i as u32));
        }
        self.target_tgds
            .iter()
            .position(|t| t.name() == name)
            .map(|i| TgdId::Target(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{Atom, RelId, Term, Var};

    fn var_atom(rel: RelId, vars: &[u32]) -> Atom {
        Atom::new(rel, vars.iter().map(|&v| Term::Var(Var(v))).collect())
    }

    fn two_schemas() -> (Schema, Schema) {
        let mut s = Schema::new();
        s.rel("S", &["a"]);
        let mut t = Schema::new();
        t.rel("T", &["a"]);
        t.rel("U", &["a"]);
        (s, t)
    }

    #[test]
    fn add_and_resolve_tgds() {
        let (s, t) = two_schemas();
        let sr = s.rel_id("S").unwrap();
        let tr = t.rel_id("T").unwrap();
        let ur = t.rel_id("U").unwrap();
        let mut m = SchemaMapping::new(s, t);
        let id1 = m
            .add_st_tgd(
                Tgd::new(
                    "m1",
                    vec![var_atom(sr, &[0])],
                    vec![var_atom(tr, &[0])],
                    vec!["x".into()],
                )
                .unwrap(),
            )
            .unwrap();
        let id2 = m
            .add_target_tgd(
                Tgd::new(
                    "m2",
                    vec![var_atom(tr, &[0])],
                    vec![var_atom(ur, &[0])],
                    vec!["x".into()],
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(m.tgd(id1).name(), "m1");
        assert_eq!(m.tgd(id2).name(), "m2");
        assert_eq!(m.tgd_by_name("m2"), Some(id2));
        assert_eq!(m.tgd_by_name("zzz"), None);
        let ids: Vec<_> = m.tgd_ids().collect();
        assert_eq!(ids, [id1, id2]);
    }

    #[test]
    fn validation_happens_on_add() {
        let (s, t) = two_schemas();
        let sr = s.rel_id("S").unwrap();
        let mut m = SchemaMapping::new(s, t);
        // RHS relation id 5 does not exist in the target schema.
        let bad = Tgd::new(
            "bad",
            vec![var_atom(sr, &[0])],
            vec![var_atom(RelId(5), &[0])],
            vec!["x".into()],
        )
        .unwrap();
        assert!(m.add_st_tgd(bad).is_err());
        assert!(m.st_tgds().is_empty());
    }
}
