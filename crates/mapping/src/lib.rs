//! Schema mappings `M = (S, T, Σst, Σt)` in the formalism of the paper:
//! source-to-target tuple-generating dependencies (tgds), target tgds, and
//! target equality-generating dependencies (egds).
//!
//! * [`Tgd`] / [`Egd`] — dependency syntax with named variables, plus
//!   well-formedness validation against the schemas.
//! * [`SchemaMapping`] — the full mapping; the object the debugger debugs.
//! * [`parser`] — a text syntax mirroring the paper's notation, e.g.
//!   `m2: SupplementaryCards(an,s,n,a) -> exists M, I: Clients(s,n,M,I,a)`.
//!   Bare identifiers are variables; string constants are quoted, integers
//!   are numeric literals.
//! * [`satisfy`] — checks whether a pair `(I, J)` satisfies a dependency or
//!   a whole mapping (the definition of *solution*, paper §2).

pub mod acyclicity;
pub mod dep;
pub mod display;
pub mod error;
pub mod generate;
pub mod mapping;
pub mod parser;
pub mod satisfy;

pub use acyclicity::{is_weakly_acyclic, position_edges, weak_acyclicity_violations, PositionEdge};
pub use dep::{Dependency, Egd, Tgd, TgdId, TgdKind};
pub use display::{egd_to_string, tgd_to_string};
pub use error::MappingError;
pub use generate::{fk_tgds, generate_mapping, generate_st_tgds, Correspondence, ForeignKey};
pub use mapping::SchemaMapping;
pub use parser::{
    check_stage_compatibility, parse_dependency, parse_egd, parse_st_tgd, parse_stage_header,
    parse_target_tgd, validate_stage_names,
};
pub use satisfy::{check_mapping, check_tgd, Violation};
