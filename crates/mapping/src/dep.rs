//! Dependencies: tuple-generating dependencies (tgds) and
//! equality-generating dependencies (egds).
//!
//! A tgd `∀x φ(x) → ∃y ψ(x, y)` is stored as its LHS atoms `φ` and RHS atoms
//! `ψ` over a shared dense variable space; the universal variables are
//! exactly those occurring in the LHS, the existential ones those occurring
//! only in the RHS. Variables carry user-facing names for display and for
//! rendering homomorphisms in the debugger.

use routes_model::{Atom, Schema, Term, Value, Var};

use crate::error::MappingError;

/// Whether a tgd is source-to-target or target-to-target.
///
/// This determines which instance the LHS is evaluated over in `findHom`
/// (paper Fig. 4): `K = I` for s-t tgds, `K = J` for target tgds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TgdKind {
    /// LHS over the source schema, RHS over the target schema.
    SourceToTarget,
    /// Both sides over the target schema.
    Target,
}

/// Identity of a tgd within a [`crate::SchemaMapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TgdId {
    /// Index into the mapping's s-t tgds.
    St(u32),
    /// Index into the mapping's target tgds.
    Target(u32),
}

impl TgdId {
    /// The kind of tgd this id refers to.
    pub fn kind(self) -> TgdKind {
        match self {
            TgdId::St(_) => TgdKind::SourceToTarget,
            TgdId::Target(_) => TgdKind::Target,
        }
    }
}

/// A tuple-generating dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    name: String,
    lhs: Vec<Atom>,
    rhs: Vec<Atom>,
    var_names: Vec<String>,
    /// `universal[v]` iff `Var(v)` occurs in the LHS.
    universal: Vec<bool>,
}

impl Tgd {
    /// Build a tgd from raw parts. Variable indices in the atoms must be
    /// dense in `0..var_names.len()`.
    ///
    /// # Errors
    /// Rejects empty sides and labeled-null constants. (Arity/relation
    /// validation happens against schemas in [`Tgd::validate`].)
    pub fn new(
        name: impl Into<String>,
        lhs: Vec<Atom>,
        rhs: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Self, MappingError> {
        let name = name.into();
        if lhs.is_empty() {
            return Err(MappingError::EmptySide {
                dep: name,
                side: "LHS",
            });
        }
        if rhs.is_empty() {
            return Err(MappingError::EmptySide {
                dep: name,
                side: "RHS",
            });
        }
        for atom in lhs.iter().chain(rhs.iter()) {
            for term in &atom.terms {
                if let Term::Const(Value::Null(_)) = term {
                    return Err(MappingError::NullConstant { dep: name });
                }
            }
        }
        let mut universal = vec![false; var_names.len()];
        for atom in &lhs {
            for v in atom.vars() {
                universal[v.0 as usize] = true;
            }
        }
        // Every declared variable must occur in some atom: findHom relies on
        // assignments being total over the variable space.
        let mut used = vec![false; var_names.len()];
        for atom in lhs.iter().chain(rhs.iter()) {
            for v in atom.vars() {
                used[v.0 as usize] = true;
            }
        }
        if let Some(idx) = used.iter().position(|u| !u) {
            return Err(MappingError::UnusedVariable {
                dep: name,
                var: var_names[idx].clone(),
            });
        }
        Ok(Tgd {
            name,
            lhs,
            rhs,
            var_names,
            universal,
        })
    }

    /// The dependency's display name (e.g. `m1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// LHS atoms (`φ`).
    pub fn lhs(&self) -> &[Atom] {
        &self.lhs
    }

    /// RHS atoms (`ψ`).
    pub fn rhs(&self) -> &[Atom] {
        &self.rhs
    }

    /// Total number of variables (universal + existential).
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Whether `v` is universal (occurs in the LHS).
    pub fn is_universal(&self, v: Var) -> bool {
        self.universal[v.0 as usize]
    }

    /// Iterate over the existential variables (those occurring only in the
    /// RHS), in index order.
    pub fn existential_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.rhs
            .iter()
            .flat_map(Atom::vars)
            .filter(|v| !self.is_universal(*v))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
    }

    /// Number of LHS atoms minus one: the paper's "number of joins" measure
    /// for tgd complexity (Figure 9 / Figure 10(c)).
    pub fn join_count(&self) -> usize {
        self.lhs.len().saturating_sub(1)
    }

    /// Validate atom arities and relation ids against the schemas the two
    /// sides range over.
    pub fn validate(&self, lhs_schema: &Schema, rhs_schema: &Schema) -> Result<(), MappingError> {
        for (atoms, schema) in [(&self.lhs, lhs_schema), (&self.rhs, rhs_schema)] {
            for atom in atoms.iter() {
                if (atom.rel.0 as usize) >= schema.len() {
                    return Err(MappingError::UnknownRelation {
                        dep: self.name.clone(),
                        relation: format!("#{}", atom.rel.0),
                        schema: "declared".into(),
                    });
                }
                let rel = schema.relation(atom.rel);
                if rel.arity() != atom.arity() {
                    return Err(MappingError::ArityMismatch {
                        dep: self.name.clone(),
                        relation: rel.name().to_owned(),
                        expected: rel.arity(),
                        got: atom.arity(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// An equality-generating dependency `∀x φ(x) → x1 = x2` over the target
/// schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Egd {
    name: String,
    lhs: Vec<Atom>,
    eq: (Var, Var),
    var_names: Vec<String>,
}

impl Egd {
    /// Build an egd.
    ///
    /// # Errors
    /// Rejects empty LHS, null constants, and equated variables that do not
    /// occur in the LHS.
    pub fn new(
        name: impl Into<String>,
        lhs: Vec<Atom>,
        eq: (Var, Var),
        var_names: Vec<String>,
    ) -> Result<Self, MappingError> {
        let name = name.into();
        if lhs.is_empty() {
            return Err(MappingError::EmptySide {
                dep: name,
                side: "LHS",
            });
        }
        for atom in &lhs {
            for term in &atom.terms {
                if let Term::Const(Value::Null(_)) = term {
                    return Err(MappingError::NullConstant { dep: name });
                }
            }
        }
        for v in [eq.0, eq.1] {
            if !lhs.iter().any(|a| a.vars().any(|w| w == v)) {
                let var = var_names
                    .get(v.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("v{}", v.0));
                return Err(MappingError::EgdVarNotInLhs { dep: name, var });
            }
        }
        Ok(Egd {
            name,
            lhs,
            eq,
            var_names,
        })
    }

    /// The dependency's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// LHS atoms.
    pub fn lhs(&self) -> &[Atom] {
        &self.lhs
    }

    /// The pair of variables the egd equates.
    pub fn equated(&self) -> (Var, Var) {
        self.eq
    }

    /// Total number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Validate against the target schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), MappingError> {
        for atom in &self.lhs {
            if (atom.rel.0 as usize) >= schema.len() {
                return Err(MappingError::UnknownRelation {
                    dep: self.name.clone(),
                    relation: format!("#{}", atom.rel.0),
                    schema: "target".into(),
                });
            }
            let rel = schema.relation(atom.rel);
            if rel.arity() != atom.arity() {
                return Err(MappingError::ArityMismatch {
                    dep: self.name.clone(),
                    relation: rel.name().to_owned(),
                    expected: rel.arity(),
                    got: atom.arity(),
                });
            }
        }
        Ok(())
    }
}

/// Either kind of dependency, as returned by the auto-detecting parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dependency {
    /// A source-to-target tgd.
    StTgd(Tgd),
    /// A target tgd.
    TargetTgd(Tgd),
    /// A target egd.
    Egd(Egd),
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::RelId;

    fn atom(rel: u32, vars: &[u32]) -> Atom {
        Atom::new(
            RelId(rel),
            vars.iter().map(|&v| Term::Var(Var(v))).collect(),
        )
    }

    #[test]
    fn universal_and_existential_vars() {
        // S(x, y) -> T(y, z): x,y universal; z existential.
        let tgd = Tgd::new(
            "m",
            vec![atom(0, &[0, 1])],
            vec![atom(0, &[1, 2])],
            vec!["x".into(), "y".into(), "z".into()],
        )
        .unwrap();
        assert!(tgd.is_universal(Var(0)));
        assert!(tgd.is_universal(Var(1)));
        assert!(!tgd.is_universal(Var(2)));
        let ex: Vec<_> = tgd.existential_vars().collect();
        assert_eq!(ex, [Var(2)]);
        assert_eq!(tgd.join_count(), 0);
    }

    #[test]
    fn empty_sides_rejected() {
        let err = Tgd::new("m", vec![], vec![atom(0, &[0])], vec!["x".into()]).unwrap_err();
        assert!(matches!(err, MappingError::EmptySide { side: "LHS", .. }));
        let err = Tgd::new("m", vec![atom(0, &[0])], vec![], vec!["x".into()]).unwrap_err();
        assert!(matches!(err, MappingError::EmptySide { side: "RHS", .. }));
    }

    #[test]
    fn egd_vars_must_occur_in_lhs() {
        let err = Egd::new(
            "e",
            vec![atom(0, &[0, 1])],
            (Var(1), Var(2)),
            vec!["x".into(), "y".into(), "z".into()],
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::EgdVarNotInLhs { .. }));

        let ok = Egd::new(
            "e",
            vec![atom(0, &[0, 1]), atom(0, &[0, 2])],
            (Var(1), Var(2)),
            vec!["x".into(), "y".into(), "z".into()],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn validate_checks_arity() {
        let mut s = Schema::new();
        s.rel("R", &["a", "b"]);
        let tgd = Tgd::new(
            "m",
            vec![atom(0, &[0])], // wrong arity: R has 2 attrs
            vec![atom(0, &[0, 0])],
            vec!["x".into()],
        )
        .unwrap();
        assert!(matches!(
            tgd.validate(&s, &s),
            Err(MappingError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn join_count_counts_lhs_atoms_minus_one() {
        let tgd = Tgd::new(
            "m",
            vec![atom(0, &[0, 1]), atom(0, &[1, 2]), atom(0, &[2, 3])],
            vec![atom(0, &[0, 3])],
            (0..4).map(|i| format!("v{i}")).collect(),
        )
        .unwrap();
        assert_eq!(tgd.join_count(), 2);
    }

    #[test]
    fn tgd_id_kind() {
        assert_eq!(TgdId::St(0).kind(), TgdKind::SourceToTarget);
        assert_eq!(TgdId::Target(3).kind(), TgdKind::Target);
    }
}
