//! Errors for dependency construction, validation, and parsing.

use std::fmt;

/// Errors raised while building, validating, or parsing dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// An atom's term count does not match the relation's declared arity.
    ArityMismatch {
        /// Dependency name (if known).
        dep: String,
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Terms supplied.
        got: usize,
    },
    /// A relation name could not be resolved in the expected schema.
    UnknownRelation {
        /// Dependency name (if known).
        dep: String,
        /// The unresolvable relation name.
        relation: String,
        /// Which schema was searched ("source", "target", or "source or target").
        schema: String,
    },
    /// A dependency has an empty left- or right-hand side.
    EmptySide {
        /// Dependency name.
        dep: String,
        /// "LHS" or "RHS".
        side: &'static str,
    },
    /// A labeled null was used as a constant inside a dependency.
    NullConstant {
        /// Dependency name.
        dep: String,
    },
    /// An egd equates a variable that does not occur in its LHS.
    EgdVarNotInLhs {
        /// Dependency name.
        dep: String,
        /// The offending variable's name.
        var: String,
    },
    /// A variable slot in the dependency's variable space occurs in no atom.
    UnusedVariable {
        /// Dependency name.
        dep: String,
        /// The unused variable's name.
        var: String,
    },
    /// A declared existential variable also occurs in the LHS.
    ExistentialInLhs {
        /// Dependency name.
        dep: String,
        /// The offending variable's name.
        var: String,
    },
    /// Generic parse error with a human-readable message and byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input where the error was detected.
        offset: usize,
    },
    /// A pipeline stage header is not of the form `stage <name>:`.
    MalformedStageHeader {
        /// The offending header text.
        header: String,
        /// What is wrong with it.
        message: String,
    },
    /// Two pipeline stages share a name.
    DuplicateStage {
        /// The repeated stage name.
        stage: String,
    },
    /// A stage's source schema is not the previous stage's target schema.
    StageSchemaMismatch {
        /// The stage whose source schema is incompatible.
        stage: String,
        /// The stage it must consume from.
        previous: String,
        /// The offending relation name.
        relation: String,
        /// What is incompatible (missing, extra, or an arity difference).
        detail: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ArityMismatch {
                dep,
                relation,
                expected,
                got,
            } => write!(
                f,
                "in dependency `{dep}`: relation `{relation}` has arity {expected}, atom has {got} terms"
            ),
            MappingError::UnknownRelation { dep, relation, schema } => {
                write!(f, "in dependency `{dep}`: relation `{relation}` not found in {schema} schema")
            }
            MappingError::EmptySide { dep, side } => {
                write!(f, "dependency `{dep}` has an empty {side}")
            }
            MappingError::NullConstant { dep } => {
                write!(f, "dependency `{dep}` uses a labeled null as a constant")
            }
            MappingError::EgdVarNotInLhs { dep, var } => {
                write!(f, "egd `{dep}` equates variable `{var}` which does not occur in its LHS")
            }
            MappingError::UnusedVariable { dep, var } => {
                write!(f, "dependency `{dep}` declares variable `{var}` but never uses it")
            }
            MappingError::ExistentialInLhs { dep, var } => {
                write!(f, "dependency `{dep}` declares `{var}` existential but it occurs in the LHS")
            }
            MappingError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            MappingError::MalformedStageHeader { header, message } => {
                write!(f, "malformed stage header `{header}`: {message}")
            }
            MappingError::DuplicateStage { stage } => {
                write!(f, "duplicate stage name `{stage}`")
            }
            MappingError::StageSchemaMismatch {
                stage,
                previous,
                relation,
                detail,
            } => write!(
                f,
                "stage `{stage}` source schema does not match stage `{previous}` target \
                 schema: relation `{relation}` {detail}"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = MappingError::UnknownRelation {
            dep: "m1".into(),
            relation: "Cards".into(),
            schema: "source".into(),
        };
        let s = e.to_string();
        assert!(s.contains("m1") && s.contains("Cards") && s.contains("source"));
    }
}
