//! Generating schema mappings from value correspondences — the front half
//! of the Clio workflow the paper sits on top of.
//!
//! In Clio, "a user gets to make associations between source and target
//! schema elements by specifying value correspondences ... Clio then
//! interprets these value correspondences into s-t tgds" (paper §2). This
//! module implements that interpretation for the relational case, following
//! the logical-association scheme of Popa et al. (*Translating Web Data*,
//! the paper's reference [18]):
//!
//! 1. Every relation anchors a **logical association**: the relation plus
//!    the chase of the schema's foreign keys (each child atom joined to its
//!    parent atom on the key columns).
//! 2. For every pair of a source and a target association that some
//!    correspondence connects, emit an s-t tgd: the source association is
//!    the LHS; the target association is the RHS with corresponded positions
//!    reusing LHS variables and every other position existentially
//!    quantified.
//! 3. Pairs whose correspondence set is strictly subsumed by another pair
//!    with the same anchor are pruned.
//!
//! [`fk_tgds`] additionally turns foreign keys into target tgds — exactly
//! how the paper built `Σt` for its real scenarios ("we used the foreign
//! key constraints of the target schemas as target tgds").
//!
//! The point of generating mappings here is the paper's motivation: the
//! generated mapping reflects the *correspondences*, and wrong or missing
//! correspondences (Figure 1's `maidenName → name`) yield exactly the bugs
//! the route debugger then finds.

use std::collections::{BTreeSet, HashMap};

use routes_model::{Atom, RelId, Schema, Term, Var};

use crate::dep::Tgd;
use crate::error::MappingError;
use crate::mapping::SchemaMapping;

/// A foreign key: `child_cols` of `child` reference `parent_cols` of
/// `parent` (positionally aligned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Display name (e.g. the paper's `f1`).
    pub name: String,
    /// Referencing relation.
    pub child: RelId,
    /// Referencing columns.
    pub child_cols: Vec<u32>,
    /// Referenced relation.
    pub parent: RelId,
    /// Referenced (key) columns.
    pub parent_cols: Vec<u32>,
}

/// A value correspondence: one arrow of paper Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Correspondence {
    /// Source (relation, column).
    pub source: (RelId, u32),
    /// Target (relation, column).
    pub target: (RelId, u32),
}

/// A logical association: atoms over one schema joined along foreign keys,
/// with a dense variable space and per-atom variable tables.
#[derive(Debug, Clone)]
struct Association {
    /// The anchoring relation (read by tests; informative in debug output).
    #[cfg_attr(not(test), allow(dead_code))]
    anchor: RelId,
    atoms: Vec<Atom>,
    /// Relations present (first atom per relation wins correspondences).
    rels: BTreeSet<RelId>,
    var_names: Vec<String>,
}

/// Chase the foreign keys from an anchor relation: every atom whose
/// relation is some fk's child gets the parent atom joined in (each fk
/// applied at most once — guards fk cycles).
fn association(schema: &Schema, fks: &[ForeignKey], anchor: RelId) -> Association {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut rels = BTreeSet::new();

    let add_atom = |rel: RelId, preset: &HashMap<u32, Var>, var_names: &mut Vec<String>| -> Atom {
        let relation = schema.relation(rel);
        let terms = (0..relation.arity() as u32)
            .map(|col| {
                Term::Var(match preset.get(&col) {
                    Some(&v) => v,
                    None => {
                        let v = Var(var_names.len() as u32);
                        var_names.push(format!(
                            "{}_{}",
                            relation.name().to_lowercase(),
                            relation.attrs()[col as usize]
                        ));
                        v
                    }
                })
            })
            .collect();
        Atom::new(rel, terms)
    };

    atoms.push(add_atom(anchor, &HashMap::new(), &mut var_names));
    rels.insert(anchor);

    let mut applied: BTreeSet<usize> = BTreeSet::new();
    loop {
        let mut fired = None;
        'search: for (k, fk) in fks.iter().enumerate() {
            if applied.contains(&k) {
                continue;
            }
            for atom in &atoms {
                if atom.rel == fk.child {
                    // Join the parent in, sharing the key variables.
                    let mut preset = HashMap::new();
                    for (cc, pc) in fk.child_cols.iter().zip(&fk.parent_cols) {
                        if let Term::Var(v) = atom.terms[*cc as usize] {
                            preset.insert(*pc, v);
                        }
                    }
                    fired = Some((k, fk.parent, preset));
                    break 'search;
                }
            }
        }
        match fired {
            Some((k, parent, preset)) => {
                applied.insert(k);
                atoms.push(add_atom(parent, &preset, &mut var_names));
                rels.insert(parent);
            }
            None => break,
        }
    }

    Association {
        anchor,
        atoms,
        rels,
        var_names,
    }
}

/// The variable at `(rel, col)` in an association (first atom of that
/// relation).
fn var_at(assoc: &Association, rel: RelId, col: u32) -> Option<Var> {
    assoc
        .atoms
        .iter()
        .find(|a| a.rel == rel)
        .and_then(|a| a.terms.get(col as usize).copied())
        .and_then(|t| t.as_var())
}

/// Generate the s-t tgds induced by `correspondences` (see module docs).
///
/// # Errors
/// Propagates dependency-construction errors (they indicate inconsistent
/// schema/fk inputs).
pub fn generate_st_tgds(
    source: &Schema,
    target: &Schema,
    source_fks: &[ForeignKey],
    target_fks: &[ForeignKey],
    correspondences: &[Correspondence],
) -> Result<Vec<Tgd>, MappingError> {
    let source_assocs: Vec<Association> = source
        .iter()
        .map(|(rel, _)| association(source, source_fks, rel))
        .collect();
    let target_assocs: Vec<Association> = target
        .iter()
        .map(|(rel, _)| association(target, target_fks, rel))
        .collect();

    // Correspondence set per (source assoc, target assoc) pair.
    let mut pairs: Vec<(usize, usize, BTreeSet<Correspondence>)> = Vec::new();
    for (si, sa) in source_assocs.iter().enumerate() {
        for (ti, ta) in target_assocs.iter().enumerate() {
            let corr: BTreeSet<Correspondence> = correspondences
                .iter()
                .filter(|c| sa.rels.contains(&c.source.0) && ta.rels.contains(&c.target.0))
                .copied()
                .collect();
            if !corr.is_empty() {
                pairs.push((si, ti, corr));
            }
        }
    }
    // Prune a pair only against pairs with the SAME source association:
    // either its correspondence set is strictly subsumed there (a larger
    // target association covers more arrows), or the sets are equal and the
    // other pair's target association is smaller (no dangling atoms).
    // Pruning across different source anchors would be wrong — the
    // Cards-only mapping must survive even though the SupplementaryCards ⋈
    // Cards mapping covers a superset of its arrows (cards without
    // supplementary cards still migrate).
    let subsumed = |a: &(usize, usize, BTreeSet<Correspondence>)| {
        pairs.iter().any(|b| {
            b.0 == a.0
                && b.1 != a.1
                && ((b.2.len() > a.2.len() && a.2.is_subset(&b.2))
                    || (b.2 == a.2
                        && target_assocs[b.1].atoms.len() < target_assocs[a.1].atoms.len()))
        })
    };
    let kept: Vec<&(usize, usize, BTreeSet<Correspondence>)> =
        pairs.iter().filter(|p| !subsumed(p)).collect();

    let mut tgds = Vec::new();
    let mut seen_text = BTreeSet::new();
    for (k, (si, ti, corr)) in kept.into_iter().enumerate() {
        let sa = &source_assocs[*si];
        let ta = &target_assocs[*ti];
        // Variable space: source vars first, then one var per target
        // position that is not corresponded (existential) — target fk-shared
        // positions reuse the same target variable.
        let mut var_names = sa.var_names.clone();
        let mut target_var: HashMap<Var, Var> = HashMap::new(); // ta var -> new var
        let mut rhs: Vec<Atom> = Vec::new();
        for atom in &ta.atoms {
            let terms = atom
                .terms
                .iter()
                .enumerate()
                .map(|(col, term)| {
                    let tv = term.as_var().expect("associations are all-variable");
                    // Corresponded position? (first matching correspondence
                    // wins, deterministically by BTreeSet order).
                    let from_corr = corr.iter().find(|c| {
                        c.target == (atom.rel, col as u32)
                            && var_at(ta, c.target.0, c.target.1) == Some(tv)
                    });
                    if let Some(c) = from_corr {
                        if let Some(v) = var_at(sa, c.source.0, c.source.1) {
                            return Term::Var(v);
                        }
                    }
                    // Existential (possibly shared through a target fk).
                    let v = *target_var.entry(tv).or_insert_with(|| {
                        let v = Var(var_names.len() as u32);
                        var_names.push(format!("E_{}", ta.var_names[tv.0 as usize].to_uppercase()));
                        v
                    });
                    Term::Var(v)
                })
                .collect();
            rhs.push(Atom::new(atom.rel, terms));
        }
        let tgd = Tgd::new(format!("gen{k}"), sa.atoms.clone(), rhs, var_names)?;
        // Some variables may be unused if the source association has atoms
        // irrelevant to the correspondences; Tgd::new rejects those — skip
        // such degenerate pairs rather than fail.
        let text = format!("{tgd:?}");
        if seen_text.insert(text) {
            tgds.push(tgd);
        }
    }
    Ok(tgds)
}

/// Turn foreign keys into (target) inclusion tgds:
/// `child(...) → ∃... parent(...)` sharing the key columns.
pub fn fk_tgds(schema: &Schema, fks: &[ForeignKey]) -> Result<Vec<Tgd>, MappingError> {
    fks.iter()
        .map(|fk| {
            let child_rel = schema.relation(fk.child);
            let parent_rel = schema.relation(fk.parent);
            let mut var_names: Vec<String> =
                child_rel.attrs().iter().map(|a| format!("c_{a}")).collect();
            let lhs = vec![Atom::new(
                fk.child,
                (0..child_rel.arity() as u32)
                    .map(|c| Term::Var(Var(c)))
                    .collect(),
            )];
            let rhs_terms = (0..parent_rel.arity() as u32)
                .map(|col| {
                    if let Some(pos) = fk.parent_cols.iter().position(|&pc| pc == col) {
                        Term::Var(Var(fk.child_cols[pos]))
                    } else {
                        let v = Var(var_names.len() as u32);
                        var_names.push(format!(
                            "P_{}",
                            parent_rel.attrs()[col as usize].to_uppercase()
                        ));
                        Term::Var(v)
                    }
                })
                .collect();
            let rhs = vec![Atom::new(fk.parent, rhs_terms)];
            Tgd::new(fk.name.clone(), lhs, rhs, var_names)
        })
        .collect()
}

/// Generate a complete mapping: correspondence-derived s-t tgds plus
/// fk-derived target tgds.
pub fn generate_mapping(
    source: &Schema,
    target: &Schema,
    source_fks: &[ForeignKey],
    target_fks: &[ForeignKey],
    correspondences: &[Correspondence],
) -> Result<SchemaMapping, MappingError> {
    let mut mapping = SchemaMapping::new(source.clone(), target.clone());
    for tgd in generate_st_tgds(source, target, source_fks, target_fks, correspondences)? {
        mapping.add_st_tgd(tgd)?;
    }
    for tgd in fk_tgds(target, target_fks)? {
        mapping.add_target_tgd(tgd)?;
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::ValuePool;

    /// The Figure 1 schemas.
    fn fargo_schemas() -> (Schema, Schema) {
        let mut s = Schema::new();
        s.rel(
            "Cards",
            &[
                "cardNo",
                "limit",
                "ssn",
                "name",
                "maidenName",
                "salary",
                "location",
            ],
        );
        s.rel("SupplementaryCards", &["accNo", "ssn", "name", "address"]);
        s.rel(
            "FBAccounts",
            &["bankNo", "ssn", "name", "income", "address"],
        );
        s.rel("CreditCards", &["cardNo", "creditLimit", "custSSN"]);
        let mut t = Schema::new();
        t.rel("Accounts", &["accNo", "limit", "accHolder"]);
        t.rel(
            "Clients",
            &["ssn", "name", "maidenName", "income", "address"],
        );
        (s, t)
    }

    fn corr(s: &Schema, t: &Schema, src: (&str, &str), dst: (&str, &str)) -> Correspondence {
        let srel = s.rel_id(src.0).unwrap();
        let scol = s.relation(srel).attr_position(src.1).unwrap() as u32;
        let trel = t.rel_id(dst.0).unwrap();
        let tcol = t.relation(trel).attr_position(dst.1).unwrap() as u32;
        Correspondence {
            source: (srel, scol),
            target: (trel, tcol),
        }
    }

    /// The Figure 1 arrows, including the buggy `maidenName → name`.
    fn figure_1_correspondences(s: &Schema, t: &Schema) -> Vec<Correspondence> {
        vec![
            corr(s, t, ("Cards", "cardNo"), ("Accounts", "accNo")),
            corr(s, t, ("Cards", "limit"), ("Accounts", "limit")),
            corr(s, t, ("Cards", "ssn"), ("Accounts", "accHolder")),
            corr(s, t, ("Cards", "ssn"), ("Clients", "ssn")),
            corr(s, t, ("Cards", "maidenName"), ("Clients", "name")), // the bug
            corr(s, t, ("Cards", "maidenName"), ("Clients", "maidenName")),
            corr(s, t, ("Cards", "salary"), ("Clients", "income")),
            corr(s, t, ("SupplementaryCards", "ssn"), ("Clients", "ssn")),
            corr(s, t, ("SupplementaryCards", "name"), ("Clients", "name")),
            corr(
                s,
                t,
                ("SupplementaryCards", "address"),
                ("Clients", "address"),
            ),
            corr(s, t, ("FBAccounts", "ssn"), ("Clients", "ssn")),
            corr(s, t, ("FBAccounts", "name"), ("Clients", "name")),
            corr(s, t, ("FBAccounts", "income"), ("Clients", "income")),
            corr(s, t, ("FBAccounts", "address"), ("Clients", "address")),
            corr(s, t, ("CreditCards", "cardNo"), ("Accounts", "accNo")),
            corr(s, t, ("CreditCards", "creditLimit"), ("Accounts", "limit")),
            corr(s, t, ("CreditCards", "custSSN"), ("Accounts", "accHolder")),
        ]
    }

    fn target_fk(t: &Schema) -> ForeignKey {
        // Accounts.accHolder references Clients.ssn (the m4 direction).
        ForeignKey {
            name: "acc_holder".into(),
            child: t.rel_id("Accounts").unwrap(),
            child_cols: vec![2],
            parent: t.rel_id("Clients").unwrap(),
            parent_cols: vec![0],
        }
    }

    #[test]
    fn fk_tgds_reproduce_m4() {
        let (_, t) = fargo_schemas();
        let tgds = fk_tgds(&t, &[target_fk(&t)]).unwrap();
        assert_eq!(tgds.len(), 1);
        let pool = ValuePool::new();
        let text = crate::display::tgd_to_string(&pool, &t, &t, &tgds[0]);
        // m4: Accounts(a, l, s) -> exists ...: Clients(s, ...).
        assert!(
            text.contains("Accounts(c_accNo, c_limit, c_accHolder)"),
            "{text}"
        );
        assert!(text.contains("Clients(c_accHolder,"), "{text}");
        assert_eq!(tgds[0].existential_vars().count(), 4);
    }

    #[test]
    fn generation_without_f1_reproduces_the_buggy_m2() {
        // Without the SupplementaryCards → Cards fk, the supplementary
        // association is the lone relation: the generated tgd is the
        // paper's (buggy) m2, missing the sponsoring card.
        let (s, t) = fargo_schemas();
        let corrs = figure_1_correspondences(&s, &t);
        let tgds = generate_st_tgds(&s, &t, &[], &[], &corrs).unwrap();
        let pool = ValuePool::new();
        let texts: Vec<String> = tgds
            .iter()
            .map(|g| crate::display::tgd_to_string(&pool, &s, &t, g))
            .collect();
        let m2_like = texts
            .iter()
            .find(|x| x.contains("SupplementaryCards(") && !x.contains("& Cards("))
            .unwrap_or_else(|| panic!("expected a supplementary-only tgd in {texts:#?}"));
        // LHS mentions only SupplementaryCards; RHS only Clients.
        assert!(!m2_like.contains("FBAccounts"));
        assert!(m2_like.contains("-> exists"));
        assert!(
            m2_like.contains("Clients(supplementarycards_ssn, supplementarycards_name,"),
            "{m2_like}"
        );
    }

    #[test]
    fn f1_fixes_m2_and_f2_fixes_m3() {
        let (s, t) = fargo_schemas();
        let corrs = figure_1_correspondences(&s, &t);
        let f1 = ForeignKey {
            name: "f1".into(),
            child: s.rel_id("SupplementaryCards").unwrap(),
            child_cols: vec![0],
            parent: s.rel_id("Cards").unwrap(),
            parent_cols: vec![0],
        };
        let f2 = ForeignKey {
            name: "f2".into(),
            child: s.rel_id("CreditCards").unwrap(),
            child_cols: vec![2],
            parent: s.rel_id("FBAccounts").unwrap(),
            parent_cols: vec![1],
        };
        let tfk = target_fk(&t);
        let tgds = generate_st_tgds(&s, &t, &[f1, f2], std::slice::from_ref(&tfk), &corrs).unwrap();
        let pool = ValuePool::new();
        let texts: Vec<String> = tgds
            .iter()
            .map(|g| crate::display::tgd_to_string(&pool, &s, &t, g))
            .collect();
        // m2'-like: supplementary cards joined with their sponsoring card.
        assert!(
            texts
                .iter()
                .any(|x| x.contains("SupplementaryCards(") && x.contains("& Cards(")),
            "{texts:#?}"
        );
        // m3'-like: credit cards joined with FBAccounts on custSSN, with the
        // shared variable in both atoms.
        let m3 = texts
            .iter()
            .find(|x| x.contains("CreditCards(") && x.contains("FBAccounts("))
            .unwrap_or_else(|| panic!("{texts:#?}"));
        assert!(m3.contains("creditcards_custSSN"), "{m3}");
        assert!(m3.matches("creditcards_custSSN").count() >= 2, "{m3}");
    }

    #[test]
    fn target_fk_pulls_clients_into_account_mappings() {
        // With the accHolder → ssn fk, the Accounts-anchored target
        // association contains Clients, so the Cards tgd gets both atoms —
        // the shape of the paper's m1.
        let (s, t) = fargo_schemas();
        let corrs = figure_1_correspondences(&s, &t);
        let tgds = generate_st_tgds(&s, &t, &[], &[target_fk(&t)], &corrs).unwrap();
        let pool = ValuePool::new();
        let m1 = tgds
            .iter()
            .map(|g| crate::display::tgd_to_string(&pool, &s, &t, g))
            .find(|x| {
                x.starts_with("gen") && x.contains("Cards(cards_cardNo") && x.contains("Accounts(")
            })
            .expect("a Cards → Accounts & Clients tgd");
        assert!(m1.contains("& Clients("), "{m1}");
        // The buggy correspondence propagates: Clients.name gets the
        // maidenName variable.
        assert!(
            m1.contains("Clients(cards_ssn, cards_maidenName, cards_maidenName"),
            "{m1}"
        );
    }

    #[test]
    fn generated_mapping_is_well_formed() {
        let (s, t) = fargo_schemas();
        let corrs = figure_1_correspondences(&s, &t);
        let mapping = generate_mapping(&s, &t, &[], &[target_fk(&t)], &corrs).unwrap();
        assert!(!mapping.st_tgds().is_empty());
        assert_eq!(mapping.target_tgds().len(), 1);
        assert!(crate::acyclicity::is_weakly_acyclic(&mapping));
    }

    #[test]
    fn fk_cycles_terminate() {
        let mut s = Schema::new();
        let a = s.rel("A", &["id", "b_ref"]);
        let b = s.rel("B", &["id", "a_ref"]);
        let fks = [
            ForeignKey {
                name: "ab".into(),
                child: a,
                child_cols: vec![1],
                parent: b,
                parent_cols: vec![0],
            },
            ForeignKey {
                name: "ba".into(),
                child: b,
                child_cols: vec![1],
                parent: a,
                parent_cols: vec![0],
            },
        ];
        let assoc = association(&s, &fks, a);
        // Each fk applied once: A, B (via ab), A again (via ba).
        assert_eq!(assoc.atoms.len(), 3);
        assert_eq!(assoc.anchor, a);
    }
}
