//! Weak acyclicity: the classic static test guaranteeing chase termination
//! (Fagin, Kolaitis, Miller, Popa — the data-exchange framework the paper
//! builds on, its reference [8]).
//!
//! Build the *dependency graph* over target **positions** (relation,
//! column): for every target tgd `∀x φ(x) → ∃y ψ(x, y)` and every universal
//! variable `x` occurring in LHS position `p`,
//!
//! * a **regular edge** `p → q` for every occurrence of `x` in RHS position
//!   `q` (a value can be copied from `p` to `q`), and
//! * a **special edge** `p ⇒ q` for every existential variable occurring in
//!   RHS position `q` of the same tgd (firing with a value in `p` can
//!   *invent* a value in `q`).
//!
//! The set is **weakly acyclic** iff no cycle passes through a special edge.
//! Weakly acyclic dependency sets have terminating chases (and our
//! benchmark/real scenarios are all designed to pass this check); the
//! `spider` debugger warns on load when a scenario fails it.
//!
//! S-t tgds do not participate: their LHS ranges over the (immutable)
//! source, so they fire a bounded number of times regardless.

use routes_model::{Atom, Var};

use crate::dep::Tgd;
use crate::mapping::SchemaMapping;

/// A position: (relation index in the target schema, column).
type Position = (u32, u32);

/// An edge of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionEdge {
    /// Source position.
    pub from: Position,
    /// Destination position.
    pub to: Position,
    /// Whether this is a special (existential-creating) edge.
    pub special: bool,
    /// Name of the tgd contributing the edge.
    pub tgd: String,
}

/// Compute the dependency graph's edges for the mapping's target tgds.
pub fn position_edges(mapping: &SchemaMapping) -> Vec<PositionEdge> {
    let mut edges = Vec::new();
    for tgd in mapping.target_tgds() {
        edges.extend(tgd_edges(tgd));
    }
    edges
}

fn positions_of(atoms: &[Atom], var: Var) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in atoms {
        for (col, term) in atom.terms.iter().enumerate() {
            if term.as_var() == Some(var) {
                out.push((atom.rel.0, col as u32));
            }
        }
    }
    out
}

fn tgd_edges(tgd: &Tgd) -> Vec<PositionEdge> {
    let mut edges = Vec::new();
    let existential_positions: Vec<Position> = tgd
        .existential_vars()
        .flat_map(|y| positions_of(tgd.rhs(), y))
        .collect();
    for v in (0..tgd.var_count() as u32).map(Var) {
        if !tgd.is_universal(v) {
            continue;
        }
        let lhs_positions = positions_of(tgd.lhs(), v);
        if lhs_positions.is_empty() {
            continue;
        }
        let rhs_positions = positions_of(tgd.rhs(), v);
        for &from in &lhs_positions {
            for &to in &rhs_positions {
                edges.push(PositionEdge {
                    from,
                    to,
                    special: false,
                    tgd: tgd.name().to_owned(),
                });
            }
            for &to in &existential_positions {
                edges.push(PositionEdge {
                    from,
                    to,
                    special: true,
                    tgd: tgd.name().to_owned(),
                });
            }
        }
    }
    edges
}

/// Whether the mapping's target tgds are weakly acyclic (⇒ the chase
/// terminates on every source instance).
pub fn is_weakly_acyclic(mapping: &SchemaMapping) -> bool {
    weak_acyclicity_violations(mapping).is_empty()
}

/// The special edges that lie on cycles — empty iff weakly acyclic. Each
/// violation names the tgd whose existential creation can feed back into
/// its own premises.
pub fn weak_acyclicity_violations(mapping: &SchemaMapping) -> Vec<PositionEdge> {
    let edges = position_edges(mapping);
    // Collect the distinct positions and index them.
    let mut positions: Vec<Position> = edges.iter().flat_map(|e| [e.from, e.to]).collect();
    positions.sort_unstable();
    positions.dedup();
    let index = |p: Position| positions.binary_search(&p).expect("collected above");
    let n = positions.len();

    // Reachability over ALL edges (regular and special), Floyd–Warshall
    // style (position counts are schema-sized, so n is small).
    let mut reach = vec![false; n * n];
    for e in &edges {
        reach[index(e.from) * n + index(e.to)] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i * n + k] {
                for j in 0..n {
                    if reach[k * n + j] {
                        reach[i * n + j] = true;
                    }
                }
            }
        }
    }

    // A special edge p ⇒ q is on a cycle iff q reaches p (or q == p).
    edges
        .into_iter()
        .filter(|e| e.special && (e.to == e.from || reach[index(e.to) * n + index(e.from)]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_st_tgd, parse_target_tgd};
    use routes_model::{Schema, ValuePool};

    fn target_only(tgds: &[&str]) -> SchemaMapping {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        t.rel("U", &["a", "b"]);
        let mut pool = ValuePool::new();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "c: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        for text in tgds {
            m.add_target_tgd(parse_target_tgd(&t, &mut pool, text).unwrap())
                .unwrap();
        }
        m
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        // Transitive closure: no existentials, hence no special edges.
        let m = target_only(&["tc: T(x,y) & T(y,z) -> T(x,z)"]);
        assert!(is_weakly_acyclic(&m));
        assert!(position_edges(&m).iter().all(|e| !e.special));
    }

    #[test]
    fn classic_nonterminating_tgd_is_detected() {
        // T(x,y) -> ∃Z T(y,Z): special edge into T.b from T.b (via y in
        // T.a? y is at LHS position T.b, RHS position T.a, and Z lands in
        // T.b) — the canonical non-weakly-acyclic example.
        let m = target_only(&["inf: T(x,y) -> exists Z: T(y,Z)"]);
        let violations = weak_acyclicity_violations(&m);
        assert!(!violations.is_empty());
        assert!(violations.iter().all(|e| e.tgd == "inf" && e.special));
        assert!(!is_weakly_acyclic(&m));
    }

    #[test]
    fn acyclic_existential_chain_passes() {
        // T → ∃ U, and U feeds nothing: fine.
        let m = target_only(&["fk: T(x,y) -> exists Z: U(x,Z)"]);
        assert!(is_weakly_acyclic(&m));
        // But closing the loop U → T with creation breaks it.
        let m2 = target_only(&[
            "fk: T(x,y) -> exists Z: U(x,Z)",
            "back: U(x,z) -> exists W: T(z,W)",
        ]);
        assert!(!is_weakly_acyclic(&m2));
    }

    #[test]
    fn mutual_copying_without_existentials_passes() {
        let m = target_only(&["a: T(x,y) -> U(y,x)", "b: U(x,y) -> T(y,x)"]);
        assert!(is_weakly_acyclic(&m));
    }

    #[test]
    fn the_generated_scenarios_are_weakly_acyclic() {
        // The benchmark and real-dataset scenarios are designed to pass.
        let sc = crate::mapping::SchemaMapping::new(Schema::new(), Schema::new());
        let _ = sc; // (scenario builders live in routes-gen; checked there)
    }
}
