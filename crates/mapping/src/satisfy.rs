//! Checking whether an instance pair `(I, J)` satisfies dependencies —
//! the definition of `J` being a *solution* for `I` under `M` (paper §2).

use routes_model::{Instance, Value, Var};
use routes_query::{satisfiable, Bindings, MatchIter};

use crate::dep::{Egd, Tgd, TgdKind};
use crate::mapping::SchemaMapping;

/// A witness that a dependency is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A tgd's LHS matched but no RHS extension exists in the target.
    Tgd {
        /// The violated tgd's name.
        dep: String,
        /// The universal assignment (variable name, value) that has no RHS
        /// extension.
        assignment: Vec<(String, Value)>,
    },
    /// An egd's LHS matched with two different values for the equated pair.
    Egd {
        /// The violated egd's name.
        dep: String,
        /// The two unequal values.
        values: (Value, Value),
    },
}

/// Check a single tgd against `(I, J)`. `kind` selects which instance the
/// LHS ranges over. Returns the first violation found, if any.
pub fn check_tgd(
    tgd: &Tgd,
    kind: TgdKind,
    source: &Instance,
    target: &Instance,
) -> Option<Violation> {
    let lhs_instance = match kind {
        TgdKind::SourceToTarget => source,
        TgdKind::Target => target,
    };
    let mut lhs_matches = MatchIter::new(lhs_instance, tgd.lhs(), Bindings::new(tgd.var_count()));
    while let Some(b) = lhs_matches.next_match() {
        if !satisfiable(target, tgd.rhs(), b.clone()) {
            let assignment = b
                .iter()
                .filter(|(v, _)| tgd.is_universal(*v))
                .map(|(v, val)| (tgd.var_name(v).to_owned(), val))
                .collect();
            return Some(Violation::Tgd {
                dep: tgd.name().to_owned(),
                assignment,
            });
        }
    }
    None
}

/// Check a single egd against `J`. Returns the first violation found.
pub fn check_egd(egd: &Egd, target: &Instance) -> Option<Violation> {
    let mut matches = MatchIter::new(target, egd.lhs(), Bindings::new(egd.var_count()));
    let (x, y) = egd.equated();
    while let Some(b) = matches.next_match() {
        let (vx, vy) = (bound(b, x), bound(b, y));
        if vx != vy {
            return Some(Violation::Egd {
                dep: egd.name().to_owned(),
                values: (vx, vy),
            });
        }
    }
    None
}

fn bound(b: &Bindings, v: Var) -> Value {
    b.get(v).expect("egd equated variables occur in its LHS")
}

/// Check the whole mapping: `(I, J) ⊨ Σst ∪ Σt`. Returns every violation
/// (one witness per violated dependency).
pub fn check_mapping(
    mapping: &SchemaMapping,
    source: &Instance,
    target: &Instance,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for tgd in mapping.st_tgds() {
        if let Some(v) = check_tgd(tgd, TgdKind::SourceToTarget, source, target) {
            violations.push(v);
        }
    }
    for tgd in mapping.target_tgds() {
        if let Some(v) = check_tgd(tgd, TgdKind::Target, source, target) {
            violations.push(v);
        }
    }
    for egd in mapping.egds() {
        if let Some(v) = check_egd(egd, target) {
            violations.push(v);
        }
    }
    violations
}

/// Whether `J` is a solution for `I` under `mapping`.
pub fn is_solution(mapping: &SchemaMapping, source: &Instance, target: &Instance) -> bool {
    check_mapping(mapping, source, target).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_egd, parse_st_tgd, parse_target_tgd};
    use routes_model::{Schema, ValuePool};

    fn setup() -> (Schema, Schema, ValuePool) {
        let mut s = Schema::new();
        s.rel("S", &["a", "b"]);
        let mut t = Schema::new();
        t.rel("T", &["a", "b"]);
        t.rel("U", &["a"]);
        (s, t, ValuePool::new())
    }

    #[test]
    fn satisfied_tgd_passes() {
        let (s, t, mut pool) = setup();
        let tgd = parse_st_tgd(&s, &t, &mut pool, "m: S(x,y) -> exists Z: T(x,Z)").unwrap();
        let mut i = Instance::new(&s);
        let mut j = Instance::new(&t);
        let sr = s.rel_id("S").unwrap();
        let tr = t.rel_id("T").unwrap();
        i.insert_ok(sr, &[Value::Int(1), Value::Int(2)]);
        j.insert_ok(tr, &[Value::Int(1), pool.named_null("Z0")]);
        assert_eq!(check_tgd(&tgd, TgdKind::SourceToTarget, &i, &j), None);
    }

    #[test]
    fn violated_tgd_reports_assignment() {
        let (s, t, mut pool) = setup();
        let tgd = parse_st_tgd(&s, &t, &mut pool, "m: S(x,y) -> T(x,y)").unwrap();
        let mut i = Instance::new(&s);
        let j = Instance::new(&t);
        let sr = s.rel_id("S").unwrap();
        i.insert_ok(sr, &[Value::Int(1), Value::Int(2)]);
        let v = check_tgd(&tgd, TgdKind::SourceToTarget, &i, &j).unwrap();
        match v {
            Violation::Tgd { dep, assignment } => {
                assert_eq!(dep, "m");
                assert_eq!(
                    assignment,
                    vec![
                        ("x".to_owned(), Value::Int(1)),
                        ("y".to_owned(), Value::Int(2))
                    ]
                );
            }
            other => panic!("expected tgd violation, got {other:?}"),
        }
    }

    #[test]
    fn target_tgd_lhs_ranges_over_target() {
        let (s, t, mut pool) = setup();
        let tgd = parse_target_tgd(&t, &mut pool, "m: T(x,y) -> U(x)").unwrap();
        let i = Instance::new(&s);
        let mut j = Instance::new(&t);
        let tr = t.rel_id("T").unwrap();
        let ur = t.rel_id("U").unwrap();
        j.insert_ok(tr, &[Value::Int(1), Value::Int(2)]);
        assert!(check_tgd(&tgd, TgdKind::Target, &i, &j).is_some());
        j.insert_ok(ur, &[Value::Int(1)]);
        assert!(check_tgd(&tgd, TgdKind::Target, &i, &j).is_none());
    }

    #[test]
    fn egd_check() {
        let (_, t, mut pool) = setup();
        let egd = parse_egd(&t, &mut pool, "e: T(x,y) & T(x,z) -> y = z").unwrap();
        let mut j = Instance::new(&t);
        let tr = t.rel_id("T").unwrap();
        j.insert_ok(tr, &[Value::Int(1), Value::Int(2)]);
        assert!(check_egd(&egd, &j).is_none());
        j.insert_ok(tr, &[Value::Int(1), Value::Int(3)]);
        let v = check_egd(&egd, &j).unwrap();
        assert!(matches!(
            v,
            Violation::Egd {
                values: (Value::Int(2), Value::Int(3)),
                ..
            } | Violation::Egd {
                values: (Value::Int(3), Value::Int(2)),
                ..
            }
        ));
    }

    #[test]
    fn whole_mapping_check() {
        let (s, t, mut pool) = setup();
        let mut m = SchemaMapping::new(s.clone(), t.clone());
        m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x,y) -> T(x,y)").unwrap())
            .unwrap();
        m.add_target_tgd(parse_target_tgd(&t, &mut pool, "m2: T(x,y) -> U(x)").unwrap())
            .unwrap();
        let mut i = Instance::new(&s);
        let mut j = Instance::new(&t);
        i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(check_mapping(&m, &i, &j).len(), 1); // m1 violated; m2 vacuous
        j.insert_ok(t.rel_id("T").unwrap(), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(check_mapping(&m, &i, &j).len(), 1); // now m2 violated
        j.insert_ok(t.rel_id("U").unwrap(), &[Value::Int(1)]);
        assert!(is_solution(&m, &i, &j));
    }
}
