//! Differential property test: the planned, index-backed evaluator must
//! agree exactly (as a set of total assignments) with the naive reference
//! evaluator on randomly generated instances and conjunctive queries.

use proptest::prelude::*;
use routes_model::{Atom, Instance, Schema, Term, Value, Var};
use routes_query::reference::all_matches_naive;
use routes_query::{all_matches, Bindings, EvalOptions, MatchIter};
use std::collections::HashSet;

/// A compact description of a random scenario that proptest can shrink.
#[derive(Debug, Clone)]
struct Scenario {
    /// Arity of each relation (1..=3 relations, arity 1..=3).
    arities: Vec<usize>,
    /// Tuples: (relation index, values in 0..domain).
    tuples: Vec<(usize, Vec<i64>)>,
    /// Atoms: (relation index, terms) where a term is either a variable
    /// 0..4 or a constant 0..domain.
    atoms: Vec<(usize, Vec<TermSpec>)>,
    /// Pre-bound variables: (var, value).
    init: Vec<(u32, i64)>,
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(u32),
    Const(i64),
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let arities = prop::collection::vec(1usize..=3, 1..=3);
    arities.prop_flat_map(|arities| {
        let nrels = arities.len();
        let arities2 = arities.clone();
        let arities3 = arities.clone();
        let tuples = prop::collection::vec(
            (0..nrels).prop_flat_map(move |r| {
                let arity = arities2[r];
                prop::collection::vec(0i64..5, arity).prop_map(move |vals| (r, vals))
            }),
            0..25,
        );
        let atoms = prop::collection::vec(
            (0..nrels).prop_flat_map(move |r| {
                let arity = arities3[r];
                prop::collection::vec(
                    prop_oneof![
                        (0u32..4).prop_map(TermSpec::Var),
                        (0i64..5).prop_map(TermSpec::Const),
                    ],
                    arity,
                )
                .prop_map(move |terms| (r, terms))
            }),
            1..=3,
        );
        let init = prop::collection::vec(((0u32..4), (0i64..5)), 0..2);
        (tuples, atoms, init).prop_map(move |(tuples, atoms, init)| Scenario {
            arities: arities.clone(),
            tuples,
            atoms,
            init,
        })
    })
}

fn build(scenario: &Scenario) -> (Instance, Vec<Atom>, Bindings) {
    let mut schema = Schema::new();
    let attr_names = ["a", "b", "c"];
    let rels: Vec<_> = scenario
        .arities
        .iter()
        .enumerate()
        .map(|(i, &arity)| schema.rel(&format!("R{i}"), &attr_names[..arity]))
        .collect();
    let mut inst = Instance::new(&schema);
    for (r, vals) in &scenario.tuples {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        inst.insert_ok(rels[*r], &values);
    }
    let atoms: Vec<Atom> = scenario
        .atoms
        .iter()
        .map(|(r, terms)| {
            Atom::new(
                rels[*r],
                terms
                    .iter()
                    .map(|t| match t {
                        TermSpec::Var(v) => Term::Var(Var(*v)),
                        TermSpec::Const(c) => Term::Const(Value::Int(*c)),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut init = Bindings::new(4);
    for (v, val) in &scenario.init {
        init.set(Var(*v), Value::Int(*val));
    }
    (inst, atoms, init)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn planned_evaluator_matches_naive_reference(scenario in scenario_strategy()) {
        let (inst, atoms, init) = build(&scenario);
        let fast: HashSet<Bindings> =
            all_matches(&inst, &atoms, init.clone()).into_iter().collect();
        let slow: HashSet<Bindings> =
            all_matches_naive(&inst, &atoms, init).into_iter().collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn composite_index_path_matches_naive_reference(scenario in scenario_strategy()) {
        // Force the composite path whenever two or more columns are bound
        // (threshold 0), and compare against the oracle.
        let (inst, atoms, init) = build(&scenario);
        let options = EvalOptions { composite_threshold: 0 };
        let mut it = MatchIter::with_options(&inst, &atoms, init.clone(), options);
        let mut fast: HashSet<Bindings> = HashSet::new();
        while let Some(b) = it.next_match() {
            fast.insert(b.clone());
        }
        let slow: HashSet<Bindings> =
            all_matches_naive(&inst, &atoms, init).into_iter().collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn matches_actually_satisfy_all_atoms(scenario in scenario_strategy()) {
        let (inst, atoms, init) = build(&scenario);
        for m in all_matches(&inst, &atoms, init) {
            for atom in &atoms {
                // Reconstruct the tuple this atom must match and check it
                // exists in the instance.
                let values: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => m.get(*v).expect("match binds all atom vars"),
                    })
                    .collect();
                prop_assert!(inst.contains(atom.rel, &values));
            }
        }
    }
}
