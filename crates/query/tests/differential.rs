//! Differential property test: the planned, index-backed evaluator must
//! agree exactly (as a set of total assignments) with the naive reference
//! evaluator on randomly generated instances and conjunctive queries.
//!
//! Ported from `proptest` to seeded deterministic loops over the in-repo
//! PRNG; the original case counts (512 per property) are preserved.

use routes_gen::Rng;
use routes_model::{Atom, Instance, Schema, Term, Value, Var};
use routes_query::reference::all_matches_naive;
use routes_query::{all_matches, Bindings, EvalOptions, MatchIter};
use std::collections::HashSet;

/// A compact description of a random scenario.
#[derive(Debug, Clone)]
struct Scenario {
    /// Arity of each relation (1..=3 relations, arity 1..=3).
    arities: Vec<usize>,
    /// Tuples: (relation index, values in 0..domain).
    tuples: Vec<(usize, Vec<i64>)>,
    /// Atoms: (relation index, terms) where a term is either a variable
    /// 0..4 or a constant 0..domain.
    atoms: Vec<(usize, Vec<TermSpec>)>,
    /// Pre-bound variables: (var, value).
    init: Vec<(u32, i64)>,
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(u32),
    Const(i64),
}

/// The proptest strategy, reified over the seeded PRNG.
fn random_scenario(rng: &mut Rng) -> Scenario {
    let arities: Vec<usize> = (0..rng.gen_range(1..=3usize))
        .map(|_| rng.gen_range(1..=3usize))
        .collect();
    let nrels = arities.len();
    let tuples: Vec<(usize, Vec<i64>)> = (0..rng.gen_range(0..25usize))
        .map(|_| {
            let r = rng.gen_range(0..nrels);
            (r, (0..arities[r]).map(|_| rng.gen_range(0..5i64)).collect())
        })
        .collect();
    let atoms: Vec<(usize, Vec<TermSpec>)> = (0..rng.gen_range(1..=3usize))
        .map(|_| {
            let r = rng.gen_range(0..nrels);
            let terms = (0..arities[r])
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        TermSpec::Var(rng.gen_range(0..4u32))
                    } else {
                        TermSpec::Const(rng.gen_range(0..5i64))
                    }
                })
                .collect();
            (r, terms)
        })
        .collect();
    let init: Vec<(u32, i64)> = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(0..4u32), rng.gen_range(0..5i64)))
        .collect();
    Scenario {
        arities,
        tuples,
        atoms,
        init,
    }
}

fn build(scenario: &Scenario) -> (Instance, Vec<Atom>, Bindings) {
    let mut schema = Schema::new();
    let attr_names = ["a", "b", "c"];
    let rels: Vec<_> = scenario
        .arities
        .iter()
        .enumerate()
        .map(|(i, &arity)| schema.rel(&format!("R{i}"), &attr_names[..arity]))
        .collect();
    let mut inst = Instance::new(&schema);
    for (r, vals) in &scenario.tuples {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        inst.insert_ok(rels[*r], &values);
    }
    let atoms: Vec<Atom> = scenario
        .atoms
        .iter()
        .map(|(r, terms)| {
            Atom::new(
                rels[*r],
                terms
                    .iter()
                    .map(|t| match t {
                        TermSpec::Var(v) => Term::Var(Var(*v)),
                        TermSpec::Const(c) => Term::Const(Value::Int(*c)),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut init = Bindings::new(4);
    for (v, val) in &scenario.init {
        init.set(Var(*v), Value::Int(*val));
    }
    (inst, atoms, init)
}

#[test]
fn planned_evaluator_matches_naive_reference() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xD1FF + case);
        let scenario = random_scenario(&mut rng);
        let (inst, atoms, init) = build(&scenario);
        let fast: HashSet<Bindings> = all_matches(&inst, &atoms, init.clone())
            .into_iter()
            .collect();
        let slow: HashSet<Bindings> = all_matches_naive(&inst, &atoms, init).into_iter().collect();
        assert_eq!(fast, slow, "case {case}: {scenario:?}");
    }
}

#[test]
fn composite_index_path_matches_naive_reference() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xC0517 + case);
        let scenario = random_scenario(&mut rng);
        // Force the composite path whenever two or more columns are bound
        // (threshold 0), and compare against the oracle.
        let (inst, atoms, init) = build(&scenario);
        let options = EvalOptions {
            composite_threshold: 0,
        };
        let mut it = MatchIter::with_options(&inst, &atoms, init.clone(), options);
        let mut fast: HashSet<Bindings> = HashSet::new();
        while let Some(b) = it.next_match() {
            fast.insert(b.clone());
        }
        let slow: HashSet<Bindings> = all_matches_naive(&inst, &atoms, init).into_iter().collect();
        assert_eq!(fast, slow, "case {case}: {scenario:?}");
    }
}

#[test]
fn matches_actually_satisfy_all_atoms() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0x5A715 + case);
        let scenario = random_scenario(&mut rng);
        let (inst, atoms, init) = build(&scenario);
        for m in all_matches(&inst, &atoms, init) {
            for atom in &atoms {
                // Reconstruct the tuple this atom must match and check it
                // exists in the instance.
                let values: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => m.get(*v).expect("match binds all atom vars"),
                    })
                    .collect();
                assert!(inst.contains(atom.rel, &values), "case {case}");
            }
        }
    }
}
