//! Differential fuzz gate for the vectorized batch executor.
//!
//! Seeded deterministic loop (in-repo SplitMix64, 96 seeds) over random
//! generator scenarios, each run through three executors:
//!
//! 1. the vectorized batch pipeline ([`batch_all_matches`]),
//! 2. the row-at-a-time lazy [`MatchIter`] facade,
//! 3. the naive reference evaluator (`crates/query/src/reference.rs`),
//!    fed the atoms pre-permuted into plan order so its nested-loop
//!    enumeration follows the same DFS.
//!
//! The three match **sequences** — not just sets — must be byte-identical,
//! for every `composite_threshold` in {0, 64, `usize::MAX`} and every batch
//! size in {1, 5, 1024}. This is the order contract PR 2's parallel
//! determinism and PR 6's delta-chase memos key on; `scripts/ci.sh` runs
//! this gate at `ROUTES_THREADS=2` and `8`.

use routes_gen::Rng;
use routes_model::{Atom, Instance, Schema, Term, Value, Var};
use routes_query::reference::all_matches_naive;
use routes_query::{batch_all_matches, plan, BatchOptions, Bindings, EvalOptions, MatchIter};

/// A compact description of a random scenario (same shape as the set-based
/// differential suite in `tests/differential.rs`).
#[derive(Debug, Clone)]
struct Scenario {
    /// Arity of each relation (1..=3 relations, arity 1..=3).
    arities: Vec<usize>,
    /// Tuples: (relation index, values in 0..domain).
    tuples: Vec<(usize, Vec<i64>)>,
    /// Atoms: (relation index, terms) where a term is either a variable
    /// 0..4 or a constant 0..domain.
    atoms: Vec<(usize, Vec<TermSpec>)>,
    /// Pre-bound variables: (var, value).
    init: Vec<(u32, i64)>,
}

#[derive(Debug, Clone)]
enum TermSpec {
    Var(u32),
    Const(i64),
}

fn random_scenario(rng: &mut Rng) -> Scenario {
    let arities: Vec<usize> = (0..rng.gen_range(1..=3usize))
        .map(|_| rng.gen_range(1..=3usize))
        .collect();
    let nrels = arities.len();
    let tuples: Vec<(usize, Vec<i64>)> = (0..rng.gen_range(0..30usize))
        .map(|_| {
            let r = rng.gen_range(0..nrels);
            (r, (0..arities[r]).map(|_| rng.gen_range(0..5i64)).collect())
        })
        .collect();
    let atoms: Vec<(usize, Vec<TermSpec>)> = (0..rng.gen_range(1..=4usize))
        .map(|_| {
            let r = rng.gen_range(0..nrels);
            let terms = (0..arities[r])
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        TermSpec::Var(rng.gen_range(0..4u32))
                    } else {
                        TermSpec::Const(rng.gen_range(0..5i64))
                    }
                })
                .collect();
            (r, terms)
        })
        .collect();
    let init: Vec<(u32, i64)> = (0..rng.gen_range(0..2usize))
        .map(|_| (rng.gen_range(0..4u32), rng.gen_range(0..5i64)))
        .collect();
    Scenario {
        arities,
        tuples,
        atoms,
        init,
    }
}

fn build(scenario: &Scenario) -> (Instance, Vec<Atom>, Bindings) {
    let mut schema = Schema::new();
    let attr_names = ["a", "b", "c"];
    let rels: Vec<_> = scenario
        .arities
        .iter()
        .enumerate()
        .map(|(i, &arity)| schema.rel(&format!("R{i}"), &attr_names[..arity]))
        .collect();
    let mut inst = Instance::new(&schema);
    for (r, vals) in &scenario.tuples {
        let values: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        inst.insert_ok(rels[*r], &values);
    }
    let atoms: Vec<Atom> = scenario
        .atoms
        .iter()
        .map(|(r, terms)| {
            Atom::new(
                rels[*r],
                terms
                    .iter()
                    .map(|t| match t {
                        TermSpec::Var(v) => Term::Var(Var(*v)),
                        TermSpec::Const(c) => Term::Const(Value::Int(*c)),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut init = Bindings::new(4);
    for (v, val) in &scenario.init {
        init.set(Var(*v), Value::Int(*val));
    }
    (inst, atoms, init)
}

const THRESHOLDS: [usize; 3] = [0, 64, usize::MAX];
const BATCH_SIZES: [usize; 3] = [1, 5, 1024];

#[test]
fn batch_lazy_and_reference_enumerate_identical_sequences() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0xF0220 + case);
        let scenario = random_scenario(&mut rng);
        let (inst, atoms, init) = build(&scenario);

        // The oracle sequence: the naive evaluator over the atoms permuted
        // into plan order scans rows ascending at every level, which is
        // exactly the DFS the planned executors must follow. The plan
        // depends only on the bound-variable set and relation sizes, never
        // on the index options, so one oracle covers every configuration.
        let order = plan(&inst, &atoms, &init);
        let planned: Vec<Atom> = order.iter().map(|&i| atoms[i].clone()).collect();
        let expected = all_matches_naive(&inst, &planned, init.clone());

        for threshold in THRESHOLDS {
            let eval = EvalOptions {
                composite_threshold: threshold,
            };
            // Row-at-a-time facade: drain the lazy iterator.
            let mut it = MatchIter::with_options(&inst, &atoms, init.clone(), eval);
            let mut lazy = Vec::new();
            while let Some(b) = it.next_match() {
                lazy.push(b.clone());
            }
            assert_eq!(
                lazy, expected,
                "case {case} threshold {threshold}: MatchIter diverged \
                 from the reference sequence: {scenario:?}"
            );

            for batch_size in BATCH_SIZES {
                let opts = BatchOptions { eval, batch_size };
                let batched = batch_all_matches(&inst, &atoms, &init, &opts);
                assert_eq!(
                    batched, expected,
                    "case {case} threshold {threshold} batch {batch_size}: \
                     vectorized executor diverged from the reference \
                     sequence: {scenario:?}"
                );
            }
        }
    }
}
