//! Dense partial variable assignments.

use routes_model::{Value, Var};

/// A partial assignment of formula variables to values, stored densely and
/// indexed by [`Var`].
///
/// A `Bindings` of capacity `n` covers variables `Var(0)..Var(n)`. Reading an
/// out-of-range variable returns `None` (unbound); writing one panics, since
/// it indicates the formula's variable space was sized wrong.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bindings {
    vals: Vec<Option<Value>>,
}

impl Bindings {
    /// An all-unbound assignment for `var_count` variables.
    pub fn new(var_count: usize) -> Self {
        Bindings {
            vals: vec![None; var_count],
        }
    }

    /// Number of variable slots.
    pub fn capacity(&self) -> usize {
        self.vals.len()
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: Var) -> Option<Value> {
        self.vals.get(v.0 as usize).copied().flatten()
    }

    /// Whether `v` is bound.
    #[inline]
    pub fn is_bound(&self, v: Var) -> bool {
        self.get(v).is_some()
    }

    /// Bind `v` to `value`, returning the previous value.
    ///
    /// # Panics
    /// Panics if `v` is outside this assignment's variable space.
    #[inline]
    pub fn set(&mut self, v: Var, value: Value) -> Option<Value> {
        self.vals[v.0 as usize].replace(value)
    }

    /// Unbind `v`.
    #[inline]
    pub fn unset(&mut self, v: Var) {
        self.vals[v.0 as usize] = None;
    }

    /// Try to bind `v` to `value`; fails (returns `false`, leaving the
    /// binding untouched) if `v` is already bound to a *different* value.
    /// Binding to an equal value succeeds without change.
    #[inline]
    pub fn unify(&mut self, v: Var, value: Value) -> bool {
        match self.get(v) {
            Some(existing) => existing == value,
            None => {
                self.set(v, value);
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn bound_count(&self) -> usize {
        self.vals.iter().filter(|v| v.is_some()).count()
    }

    /// Whether every slot is bound.
    pub fn is_total(&self) -> bool {
        self.vals.iter().all(Option::is_some)
    }

    /// Iterate over `(Var, Value)` pairs for bound variables in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Value)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| (Var(i as u32), val)))
    }

    /// Extract a total assignment as a dense vector, or `None` if any
    /// variable is unbound.
    pub fn to_total(&self) -> Option<Vec<Value>> {
        self.vals.iter().copied().collect()
    }

    /// Merge `other` into `self`: every binding of `other` must be absent
    /// from or equal to the binding in `self`. Returns `false` (and leaves
    /// `self` partially updated only on the consistent prefix — callers treat
    /// failure as fatal) on conflict.
    pub fn absorb(&mut self, other: &Bindings) -> bool {
        other.iter().all(|(v, val)| self.unify(v, val))
    }
}

/// Unify an atom's terms against a concrete tuple's values, extending `b`.
///
/// Fails (returning `false`) if a constant term differs from the tuple value
/// or a variable is already bound to a different value; on failure `b` is
/// left with whatever bindings were made before the conflict (callers either
/// discard it or track a trail). This is step 1 (`v1`) of the paper's
/// `findHom` and the anchor step of the semi-naive chase.
pub fn unify_atom(atom: &routes_model::Atom, values: &[Value], b: &mut Bindings) -> bool {
    debug_assert_eq!(atom.terms.len(), values.len());
    atom.terms
        .iter()
        .zip(values.iter())
        .all(|(term, &actual)| match term {
            routes_model::Term::Const(c) => *c == actual,
            routes_model::Term::Var(v) => b.unify(*v, actual),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut b = Bindings::new(3);
        assert!(!b.is_bound(Var(1)));
        assert_eq!(b.set(Var(1), Value::Int(5)), None);
        assert_eq!(b.get(Var(1)), Some(Value::Int(5)));
        assert_eq!(b.bound_count(), 1);
        b.unset(Var(1));
        assert!(!b.is_bound(Var(1)));
    }

    #[test]
    fn unify_respects_existing_bindings() {
        let mut b = Bindings::new(2);
        assert!(b.unify(Var(0), Value::Int(1)));
        assert!(b.unify(Var(0), Value::Int(1)));
        assert!(!b.unify(Var(0), Value::Int(2)));
        assert_eq!(b.get(Var(0)), Some(Value::Int(1)));
    }

    #[test]
    fn out_of_range_reads_are_unbound() {
        let b = Bindings::new(1);
        assert_eq!(b.get(Var(7)), None);
    }

    #[test]
    fn totality() {
        let mut b = Bindings::new(2);
        assert!(!b.is_total());
        assert_eq!(b.to_total(), None);
        b.set(Var(0), Value::Int(1));
        b.set(Var(1), Value::Int(2));
        assert!(b.is_total());
        assert_eq!(b.to_total(), Some(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn absorb_merges_and_detects_conflicts() {
        let mut a = Bindings::new(3);
        a.set(Var(0), Value::Int(1));
        let mut b = Bindings::new(3);
        b.set(Var(1), Value::Int(2));
        assert!(a.absorb(&b));
        assert_eq!(a.get(Var(1)), Some(Value::Int(2)));

        let mut c = Bindings::new(3);
        c.set(Var(0), Value::Int(9));
        assert!(!a.absorb(&c));
    }

    #[test]
    fn iter_yields_bound_pairs_in_order() {
        let mut b = Bindings::new(4);
        b.set(Var(2), Value::Int(20));
        b.set(Var(0), Value::Int(0));
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, [(Var(0), Value::Int(0)), (Var(2), Value::Int(20))]);
    }
}
