//! Vectorized batch join evaluation over the columnar instance store.
//!
//! [`MatchIter`](crate::MatchIter) evaluates one candidate binding at a time:
//! every join depth re-plans its access path, re-allocates its bound-column
//! list, and issues `k + 1` locked hash lookups per binding, copying each
//! posting list into a per-depth buffer. That is the right shape for
//! `ComputeOneRoute`, which wants the *first* match as lazily as possible —
//! but the chase saturation loop and wave-parallel `computeAllRoutes` drain
//! entire match sets, where per-binding overhead dominates.
//!
//! This module evaluates a whole *batch* of candidate bindings at once,
//! amortizing everything the lazy iterator pays per binding:
//!
//! - **Compiled stages.** The pipeline classifies each planned atom against
//!   the bound-variable set *once* ([`compile`]): key columns, residual
//!   checks, output layout, and the access path are all fixed before the
//!   first row flows. Morsels reuse per-depth output buffers, so the steady
//!   state allocates nothing.
//! - **Pinned indexes.** Each stage pins its hash index for a whole morsel
//!   ([`Instance::with_col_probe`]): one lock acquisition per morsel instead
//!   of one per row, and probes return posting lists by reference instead of
//!   copying them.
//! - **Duplicate-key memo.** Consecutive input rows with equal probe keys
//!   reuse the previous posting list without re-hashing — many-to-one joins
//!   emit long runs of equal keys, so this removes most probes outright.
//! - **Check elision.** A probed column is equal to its key by construction,
//!   so its re-check is dropped at compile time; a new variable occurring
//!   once needs no gather slot and is copied straight from the column slice.
//!   After elision a pure equijoin extension runs zero per-candidate
//!   comparisons — the inner loop is columnar reads and appends.
//!
//! **Order preservation is load-bearing.** The parallel chase's determinism
//! proof and the incremental memo contract both key on the plan-ordered match
//! sequence, so the batch pipeline must enumerate matches in exactly the
//! order the lazy iterator does. The argument:
//!
//! 1. At each depth, `MatchIter` visits the ascending sequence of rows that
//!    satisfy every bound column of the atom (posting lists are built by
//!    walking rows in order and caught up append-only, so they are ascending;
//!    scans are ascending; a probe-then-filter path visits an ascending
//!    subset). The surviving rows are therefore *the same ascending set no
//!    matter which access path produced the candidates*. Pinning an index
//!    returns the same posting lists the per-row probes would have copied;
//!    the duplicate-key memo reuses a list identical to what a fresh probe
//!    would return; and every check elided at compile time is one the probe
//!    already guarantees — so none of the amortizations can change the
//!    surviving set.
//! 2. Each stage processes input rows in batch order and appends each input
//!    row's surviving candidates in ascending row order, so the output batch
//!    is the concatenation of per-input DFS sequences.
//! 3. The driver recurses over output morsels in order, so chunking never
//!    reorders — exactly the argument [`AnchoredPlan`](crate::AnchoredPlan)
//!    makes for row-parallel chunking.
//!
//! By induction over depths, emitting the final batch in order reproduces the
//! lazy iterator's match sequence byte for byte. The differential fuzz gate
//! (`crates/query/tests/fuzz_differential.rs`) checks this on random
//! scenarios against both `MatchIter` and the naive reference evaluator.

use std::ops::Range;

use routes_model::{joinstats, Atom, Instance, Term, Value, Var};

use crate::bindings::Bindings;
use crate::eval::EvalOptions;
use crate::plan::plan;

/// Tuning for the batch pipeline.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Access-path tuning shared with the row-at-a-time executor.
    pub eval: EvalOptions,
    /// Maximum rows per intermediate morsel: after each extension the output
    /// batch is processed in chunks of this many rows, bounding intermediate
    /// memory to `batch_size × max fan-out` per depth.
    pub batch_size: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            eval: EvalOptions::default(),
            batch_size: 1024,
        }
    }
}

/// Where an atom column's probe-key value comes from, for columns bound
/// before the atom runs. `In(i)` reads column `i` of the input batch.
#[derive(Debug, Clone, Copy)]
enum Key {
    Const(Value),
    In(usize),
}

/// Per-column action when testing a candidate tuple against one input row.
/// Checks the access path already guarantees are elided at compile time.
#[derive(Debug, Clone, Copy)]
enum ColCheck {
    /// Column must equal a constant term.
    Const(Value),
    /// Column must equal input-batch column `i` of the current row.
    In(usize),
    /// First occurrence of a repeated new variable: gather into slot `g`.
    Gather(usize),
    /// Repeated occurrence of a new variable: must equal gathered slot `g`.
    EqualNew(usize),
}

/// Where each output column's value comes from when a candidate survives.
#[derive(Debug, Clone, Copy)]
enum OutSrc {
    /// Copy input-batch column `i` of the current row.
    In(usize),
    /// Read gathered slot `g` (repeated new variables only).
    New(usize),
    /// Read the candidate tuple's column directly (new variables that occur
    /// once — no gather slot needed).
    NewCol(u32),
}

/// Access path of one compiled stage, fixed for the whole pipeline. The
/// probe columns live in [`Stage::key_cols`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    /// No bound columns: candidates are the full relation, shared by every
    /// input row.
    Scan,
    /// One bound column: pin its single-column index.
    Single,
    /// Several bound columns: pin the composite index over all of them.
    Composite,
    /// `composite_threshold == usize::MAX` ablation baseline: per-row
    /// most-selective single-column probe with full re-checks, matching the
    /// row-at-a-time executor with composite indexes disabled.
    Ablation,
}

/// One compiled join depth: an atom classified against the bound-variable
/// set flowing into it, plus reusable scratch. Built once per pipeline by
/// [`compile`]; every morsel at this depth reuses it.
struct Stage<'a> {
    atom: &'a Atom,
    /// The atom relation's column slices (the columnar layout's payoff:
    /// candidate values are read straight from these).
    rel_cols: Vec<&'a [Value]>,
    access: Access,
    /// Probe columns, strictly ascending, aligned with `keys`.
    key_cols: Vec<u32>,
    keys: Vec<Key>,
    /// Residual per-candidate checks, probe-guaranteed columns elided.
    checks: Vec<(u32, ColCheck)>,
    out_srcs: Vec<OutSrc>,
    /// The sorted bound-variable set flowing out of this stage.
    out_bound: Vec<Var>,
    /// Scratch: composite/ablation key under construction, the previous
    /// row's key (duplicate-key memo), gathered values of repeated new
    /// variables, and the ablation path's candidate buffer.
    key_vals: Vec<Value>,
    prev_key: Vec<Value>,
    new_vals: Vec<Value>,
    cand: Vec<u32>,
}

/// Classify `order` (indices into `atoms`) against the evolving bound set,
/// producing one reusable [`Stage`] per depth.
fn compile<'a>(
    inst: &'a Instance,
    atoms: &'a [Atom],
    order: &[usize],
    seed_bound: &[Var],
    composite_threshold: usize,
) -> Vec<Stage<'a>> {
    let mut bound: Vec<Var> = seed_bound.to_vec();
    debug_assert!(bound.windows(2).all(|w| w[0] < w[1]));
    let mut stages = Vec::with_capacity(order.len());
    for &ai in order {
        let atom = &atoms[ai];
        let mut key_cols: Vec<u32> = Vec::new();
        let mut keys: Vec<Key> = Vec::new();
        let mut checks: Vec<(u32, ColCheck)> = Vec::new();
        // (first-occurrence column, referenced by an EqualNew) per new var.
        let mut new_vars: Vec<(Var, u32, bool)> = Vec::new();
        for (col, term) in atom.terms.iter().enumerate() {
            let col = col as u32;
            match term {
                Term::Const(c) => {
                    key_cols.push(col);
                    keys.push(Key::Const(*c));
                    checks.push((col, ColCheck::Const(*c)));
                }
                Term::Var(v) => {
                    if let Ok(pos) = bound.binary_search(v) {
                        key_cols.push(col);
                        keys.push(Key::In(pos));
                        checks.push((col, ColCheck::In(pos)));
                    } else if let Some(g) = new_vars.iter().position(|(nv, _, _)| nv == v) {
                        new_vars[g].2 = true;
                        checks.push((col, ColCheck::EqualNew(g)));
                    } else {
                        checks.push((col, ColCheck::Gather(new_vars.len())));
                        new_vars.push((*v, col, false));
                    }
                }
            }
        }
        let access = if keys.is_empty() {
            Access::Scan
        } else if keys.len() == 1 {
            Access::Single
        } else if composite_threshold != usize::MAX {
            Access::Composite
        } else {
            Access::Ablation
        };
        // Elide the re-checks the access path guarantees: a probed column
        // equals its key by construction, so dropping its check cannot
        // change the surviving candidate set (the order-preservation
        // argument in the module docs). The ablation path probes a
        // different column per row, so it keeps every check.
        match access {
            Access::Single => {
                let probed = key_cols[0];
                checks.retain(|&(col, _)| col != probed);
            }
            Access::Composite => {
                checks.retain(|&(_, ch)| matches!(ch, ColCheck::Gather(_) | ColCheck::EqualNew(_)))
            }
            Access::Scan | Access::Ablation => {}
        }
        // A new variable that occurs once needs no gather slot: its value is
        // read straight from the candidate's column at emit time.
        checks.retain(|&(_, ch)| match ch {
            ColCheck::Gather(g) => new_vars[g].2,
            _ => true,
        });

        let mut out_bound = bound.clone();
        out_bound.extend(new_vars.iter().map(|&(v, _, _)| v));
        out_bound.sort_unstable();
        out_bound.dedup();
        let out_srcs: Vec<OutSrc> = out_bound
            .iter()
            .map(|v| match bound.binary_search(v) {
                Ok(pos) => OutSrc::In(pos),
                Err(_) => {
                    let g = new_vars
                        .iter()
                        .position(|(nv, _, _)| nv == v)
                        .expect("output var is input-bound or new");
                    if new_vars[g].2 {
                        OutSrc::New(g)
                    } else {
                        OutSrc::NewCol(new_vars[g].1)
                    }
                }
            })
            .collect();
        let rel_cols: Vec<&[Value]> = (0..atom.terms.len() as u32)
            .map(|c| inst.col_slice(atom.rel, c))
            .collect();
        let nkeys = keys.len();
        stages.push(Stage {
            atom,
            rel_cols,
            access,
            key_cols,
            keys,
            checks,
            out_srcs,
            out_bound: out_bound.clone(),
            key_vals: Vec::with_capacity(nkeys),
            prev_key: Vec::with_capacity(nkeys),
            new_vals: vec![Value::Int(0); new_vars.len()],
            cand: Vec::new(),
        });
        bound = out_bound;
    }
    stages
}

/// Test `cands` against one input row's checks, appending survivors to
/// `out`. The innermost loop of the executor: after compile-time elision the
/// common equijoin case runs zero comparisons here — just columnar reads and
/// appends.
#[inline]
#[allow(clippy::too_many_arguments)]
fn emit_row(
    rel_cols: &[&[Value]],
    checks: &[(u32, ColCheck)],
    out_srcs: &[OutSrc],
    new_vals: &mut [Value],
    input: &BindingBatch,
    row: usize,
    cands: impl Iterator<Item = u32>,
    out: &mut BindingBatch,
) {
    'cand: for r in cands {
        let r = r as usize;
        for &(col, check) in checks {
            let actual = rel_cols[col as usize][r];
            let ok = match check {
                ColCheck::Const(c) => actual == c,
                ColCheck::In(pos) => actual == input.cols[pos][row],
                ColCheck::Gather(g) => {
                    new_vals[g] = actual;
                    true
                }
                ColCheck::EqualNew(g) => actual == new_vals[g],
            };
            if !ok {
                continue 'cand;
            }
        }
        out.len += 1;
        for (dst, src) in out.cols.iter_mut().zip(out_srcs) {
            dst.push(match *src {
                OutSrc::In(pos) => input.cols[pos][row],
                OutSrc::New(g) => new_vals[g],
                OutSrc::NewCol(col) => rel_cols[col as usize][r],
            });
        }
    }
}

impl<'a> Stage<'a> {
    /// Push rows `range` of `input` through this stage into `out` (cleared
    /// first). Output rows appear in (input row, candidate row) order — the
    /// order-preservation invariant the module docs argue from.
    fn extend(
        &mut self,
        inst: &Instance,
        input: &BindingBatch,
        range: Range<usize>,
        out: &mut BindingBatch,
    ) {
        debug_assert_eq!(out.bound, self.out_bound);
        out.clear();
        let Stage {
            atom,
            rel_cols,
            access,
            key_cols,
            keys,
            checks,
            out_srcs,
            key_vals,
            prev_key,
            new_vals,
            cand,
            out_bound: _,
        } = self;
        let mut rows_probed: u64 = 0;
        let mut index_probes: u64 = 0;
        match *access {
            Access::Scan => {
                let len = inst.rel_len(atom.rel);
                rows_probed += u64::from(len) * range.len() as u64;
                for row in range {
                    emit_row(
                        rel_cols,
                        checks,
                        out_srcs,
                        new_vals,
                        input,
                        row,
                        0..len,
                        out,
                    );
                }
            }
            Access::Single => {
                let key0 = keys[0];
                inst.with_col_probe(atom.rel, key_cols[0], |p| {
                    let mut prev: Option<Value> = None;
                    let mut cands: &[u32] = &[];
                    for row in range {
                        let key = match key0 {
                            Key::Const(c) => c,
                            Key::In(pos) => input.cols[pos][row],
                        };
                        if prev != Some(key) {
                            index_probes += 1;
                            cands = p.probe(key);
                            prev = Some(key);
                        }
                        rows_probed += cands.len() as u64;
                        emit_row(
                            rel_cols,
                            checks,
                            out_srcs,
                            new_vals,
                            input,
                            row,
                            cands.iter().copied(),
                            out,
                        );
                    }
                });
            }
            Access::Composite => {
                inst.with_multi_probe(atom.rel, key_cols, |p| {
                    let mut have_prev = false;
                    let mut cands: &[u32] = &[];
                    for row in range {
                        key_vals.clear();
                        key_vals.extend(keys.iter().map(|&k| match k {
                            Key::Const(c) => c,
                            Key::In(pos) => input.cols[pos][row],
                        }));
                        if !have_prev || key_vals != prev_key {
                            index_probes += 1;
                            cands = p.probe(key_vals);
                            std::mem::swap(prev_key, key_vals);
                            have_prev = true;
                        }
                        rows_probed += cands.len() as u64;
                        emit_row(
                            rel_cols,
                            checks,
                            out_srcs,
                            new_vals,
                            input,
                            row,
                            cands.iter().copied(),
                            out,
                        );
                    }
                });
            }
            Access::Ablation => {
                let mut have_prev = false;
                for row in range {
                    key_vals.clear();
                    key_vals.extend(keys.iter().map(|&k| match k {
                        Key::Const(c) => c,
                        Key::In(pos) => input.cols[pos][row],
                    }));
                    if !have_prev || key_vals != prev_key {
                        // No composite indexes: probe the most selective
                        // single column and filter, exactly like the
                        // row-at-a-time executor with the threshold
                        // disabled.
                        let mut best: Option<(u32, Value, usize)> = None;
                        for (&col, &value) in key_cols.iter().zip(key_vals.iter()) {
                            index_probes += 1;
                            let len = inst.probe_len(atom.rel, col, value);
                            if best.is_none_or(|(_, _, blen)| len < blen) {
                                best = Some((col, value, len));
                            }
                        }
                        let (col, value, _) = best.expect("keys is non-empty");
                        index_probes += 1;
                        cand.clear();
                        inst.probe_into(atom.rel, col, value, cand);
                        std::mem::swap(prev_key, key_vals);
                        have_prev = true;
                    }
                    rows_probed += cand.len() as u64;
                    emit_row(
                        rel_cols,
                        checks,
                        out_srcs,
                        new_vals,
                        input,
                        row,
                        cand.iter().copied(),
                        out,
                    );
                }
            }
        }
        joinstats::record_batch();
        joinstats::record_rows_probed(rows_probed);
        joinstats::record_index_probes(index_probes);
    }
}

/// A batch of partial variable assignments, stored columnarly.
///
/// Every binding in a batch has the *same* bound-variable set (`bound`,
/// sorted); the values live in one vector per bound variable. This is the
/// unit the vectorized executor pushes through an atom sequence.
#[derive(Debug, Clone)]
pub struct BindingBatch {
    /// Variable-space capacity of the bindings this batch represents
    /// (mirrors [`Bindings::capacity`], so emitted bindings compare equal to
    /// the lazy executor's).
    var_space: usize,
    /// The bound variables, sorted ascending.
    bound: Vec<Var>,
    /// One value vector per bound variable, each `len` long.
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl BindingBatch {
    /// An empty batch whose bindings will bind exactly `bound` (deduplicated
    /// and sorted internally) within a variable space of `var_space`.
    pub fn new(var_space: usize, bound: impl IntoIterator<Item = Var>) -> Self {
        let mut bound: Vec<Var> = bound.into_iter().collect();
        bound.sort_unstable();
        bound.dedup();
        let cols = bound.iter().map(|_| Vec::new()).collect();
        BindingBatch {
            var_space,
            bound,
            cols,
            len: 0,
        }
    }

    /// A one-row batch holding `init`'s bindings; the batch's variable space
    /// is `init.capacity()`.
    pub fn seed(init: &Bindings) -> Self {
        let mut batch = BindingBatch::new(init.capacity(), init.iter().map(|(v, _)| v));
        batch.push_binding(init);
        batch
    }

    /// Append one binding. The binding must bind exactly this batch's bound
    /// set (checked in debug builds).
    pub fn push_binding(&mut self, b: &Bindings) {
        debug_assert_eq!(
            b.bound_count(),
            self.bound.len(),
            "binding bound set must match the batch layout"
        );
        for (col, &v) in self.cols.iter_mut().zip(&self.bound) {
            col.push(b.get(v).expect("binding must bind the batch's bound set"));
        }
        self.len += 1;
    }

    /// Number of bindings in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sorted bound-variable set shared by every binding in the batch.
    pub fn bound_vars(&self) -> &[Var] {
        &self.bound
    }

    /// Variable-space capacity of emitted bindings.
    pub fn var_space(&self) -> usize {
        self.var_space
    }

    /// Drop all rows, keeping the layout and the columns' capacity (the
    /// per-depth buffer reuse the driver depends on).
    fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.len = 0;
    }

    /// Materialize row `row` as a [`Bindings`] (capacity `var_space`),
    /// byte-identical to what the lazy executor would yield.
    pub fn to_bindings(&self, row: usize) -> Bindings {
        let mut b = Bindings::new(self.var_space);
        for (col, &v) in self.cols.iter().zip(&self.bound) {
            b.set(v, col[row]);
        }
        b
    }

    /// Row `row` as a dense total assignment, or `None` if the batch does
    /// not bind the full variable space. (`bound` is sorted and unique, so
    /// covering `var_space` variables means binding exactly
    /// `Var(0)..Var(var_space)`.)
    pub fn total(&self, row: usize) -> Option<Vec<Value>> {
        if self.bound.len() != self.var_space {
            return None;
        }
        Some(self.cols.iter().map(|col| col[row]).collect())
    }

    /// Append rows `range` of `other`, which must have the same layout.
    pub fn append_range(&mut self, other: &BindingBatch, range: Range<usize>) {
        debug_assert_eq!(self.bound, other.bound);
        debug_assert_eq!(self.var_space, other.var_space);
        self.len += range.len();
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst.extend_from_slice(&src[range.clone()]);
        }
    }

    /// Push rows `[range]` of the batch through `atom`, returning the
    /// extended batch (input bound set plus the atom's new variables).
    ///
    /// One-stage convenience over the compiled pipeline; output rows appear
    /// in (input row, candidate row) order. Access path: probe the single
    /// bound column when there is one, a composite index over all bound
    /// columns when there are several (unless `composite_threshold` is
    /// `usize::MAX`, the ablation baseline, which falls back to the most
    /// selective single-column probe with full re-checks).
    pub fn extend_atom(
        &self,
        inst: &Instance,
        atom: &Atom,
        range: Range<usize>,
        options: EvalOptions,
    ) -> BindingBatch {
        let atoms = std::slice::from_ref(atom);
        let mut stages = compile(inst, atoms, &[0], &self.bound, options.composite_threshold);
        let stage = &mut stages[0];
        let mut out = BindingBatch::new(self.var_space, stage.out_bound.iter().copied());
        stage.extend(inst, self, range, &mut out);
        out
    }
}

/// The sorted bound-variable set after evaluating `order` starting from
/// `seed_bound`: what the final batch of the pipeline will bind.
fn final_bound(seed_bound: &[Var], atoms: &[Atom], order: &[usize]) -> Vec<Var> {
    let mut bound: Vec<Var> = seed_bound.to_vec();
    for &ai in order {
        bound.extend(atoms[ai].vars());
    }
    bound.sort_unstable();
    bound.dedup();
    bound
}

/// Recursive morsel driver: extend the input through the compiled stages,
/// chunking each intermediate result into `step`-row morsels processed in
/// order. `bufs` holds one reusable output batch per stage.
fn drive(
    inst: &Instance,
    stages: &mut [Stage],
    bufs: &mut [BindingBatch],
    input: &BindingBatch,
    range: Range<usize>,
    step: usize,
    sink: &mut dyn FnMut(&BindingBatch, Range<usize>),
) {
    let Some((stage, rest_stages)) = stages.split_first_mut() else {
        sink(input, range);
        return;
    };
    let (out, rest_bufs) = bufs.split_first_mut().expect("one buffer per stage");
    stage.extend(inst, input, range, out);
    let out: &BindingBatch = out;
    let mut start = 0;
    while start < out.len() {
        let end = (start + step).min(out.len());
        drive(inst, rest_stages, rest_bufs, out, start..end, step, sink);
        start = end;
    }
}

fn drive_all(
    inst: &Instance,
    atoms: &[Atom],
    order: &[usize],
    seeds: &BindingBatch,
    opts: &BatchOptions,
    sink: &mut dyn FnMut(&BindingBatch, Range<usize>),
) {
    assert!(
        seeds.var_space() >= routes_model::atom::var_space(atoms),
        "batch covers {} variables but atoms use {}",
        seeds.var_space(),
        routes_model::atom::var_space(atoms)
    );
    debug_assert!(order.iter().all(|&ai| ai < atoms.len()));
    let mut stages = compile(
        inst,
        atoms,
        order,
        seeds.bound_vars(),
        opts.eval.composite_threshold,
    );
    let mut bufs: Vec<BindingBatch> = stages
        .iter()
        .map(|s| BindingBatch::new(seeds.var_space(), s.out_bound.iter().copied()))
        .collect();
    let step = opts.batch_size.max(1);
    let mut start = 0;
    while start < seeds.len() {
        let end = (start + step).min(seeds.len());
        drive(inst, &mut stages, &mut bufs, seeds, start..end, step, sink);
        start = end;
    }
}

/// Evaluate `order` (indices into `atoms`) over every seed binding in
/// `seeds`, appending each total match to `out` as a [`Bindings`].
///
/// The output sequence equals running
/// [`MatchIter::with_plan`](crate::MatchIter::with_plan) on each seed in
/// batch order and concatenating the per-seed match sequences.
pub fn batch_matches_with_plan_into(
    inst: &Instance,
    atoms: &[Atom],
    order: &[usize],
    seeds: &BindingBatch,
    opts: &BatchOptions,
    out: &mut Vec<Bindings>,
) {
    drive_all(inst, atoms, order, seeds, opts, &mut |batch, range| {
        out.extend(range.map(|row| batch.to_bindings(row)));
    });
}

/// Like [`batch_matches_with_plan_into`] but returning the matches as one
/// concatenated [`BindingBatch`], for pipelines that feed the result into a
/// further batch stage (`findHom` chains the tgd's LHS into its RHS this
/// way).
pub fn batch_matches_with_plan(
    inst: &Instance,
    atoms: &[Atom],
    order: &[usize],
    seeds: &BindingBatch,
    opts: &BatchOptions,
) -> BindingBatch {
    let mut out = BindingBatch::new(
        seeds.var_space(),
        final_bound(seeds.bound_vars(), atoms, order),
    );
    drive_all(inst, atoms, order, seeds, opts, &mut |batch, range| {
        out.append_range(batch, range);
    });
    out
}

/// All matches of `atoms` against `inst` extending `init`, evaluated through
/// the batch pipeline. Plans with [`plan`], so the result sequence is
/// byte-identical to [`all_matches`](crate::all_matches).
pub fn batch_all_matches(
    inst: &Instance,
    atoms: &[Atom],
    init: &Bindings,
    opts: &BatchOptions,
) -> Vec<Bindings> {
    let order = plan(inst, atoms, init);
    let seeds = BindingBatch::seed(init);
    let mut out = Vec::new();
    batch_matches_with_plan_into(inst, atoms, &order, &seeds, opts, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::all_matches;
    use routes_model::{RelId, Schema};

    fn term_v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn setup() -> (Schema, Instance, RelId, RelId) {
        let mut s = Schema::new();
        let e = s.rel("E", &["src", "dst"]);
        let l = s.rel("L", &["node"]);
        let mut inst = Instance::new(&s);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2), (3, 1), (2, 1)] {
            inst.insert_ok(e, &[Value::Int(a), Value::Int(b)]);
        }
        for n in [1, 2, 3] {
            inst.insert_ok(l, &[Value::Int(n)]);
        }
        (s, inst, e, l)
    }

    fn assert_batch_equals_lazy(
        inst: &Instance,
        atoms: &[Atom],
        init: &Bindings,
        opts: &BatchOptions,
    ) {
        let lazy = all_matches(inst, atoms, init.clone());
        let batched = batch_all_matches(inst, atoms, init, opts);
        assert_eq!(lazy, batched, "atoms: {atoms:?} opts: {opts:?}");
    }

    #[test]
    fn batch_matches_lazy_across_shapes_sizes_and_thresholds() {
        let (_, inst, e, l) = setup();
        let term_c = |k: i64| Term::Const(Value::Int(k));
        let conjunctions: Vec<Vec<Atom>> = vec![
            vec![Atom::new(e, vec![term_v(0), term_v(1)])],
            vec![
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(e, vec![term_v(1), term_v(2)]),
            ],
            vec![
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(l, vec![term_v(0)]),
            ],
            vec![
                Atom::new(e, vec![term_c(0), term_v(0)]),
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(l, vec![term_v(1)]),
            ],
            // Repeated variable within an atom, both bound and unbound.
            vec![Atom::new(e, vec![term_v(0), term_v(0)])],
            vec![
                Atom::new(l, vec![term_v(0)]),
                Atom::new(e, vec![term_v(0), term_v(0)]),
            ],
            // Triangles.
            vec![
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(e, vec![term_v(1), term_v(2)]),
                Atom::new(e, vec![term_v(2), term_v(0)]),
            ],
        ];
        for atoms in &conjunctions {
            let vars = routes_model::atom::var_space(atoms);
            for batch_size in [1, 3, 1024] {
                for threshold in [0, 64, usize::MAX] {
                    let opts = BatchOptions {
                        eval: EvalOptions {
                            composite_threshold: threshold,
                        },
                        batch_size,
                    };
                    assert_batch_equals_lazy(&inst, atoms, &Bindings::new(vars), &opts);
                }
            }
        }
    }

    #[test]
    fn batch_respects_initial_bindings() {
        let (_, inst, e, _) = setup();
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
        ];
        let mut init = Bindings::new(3);
        init.set(Var(0), Value::Int(0));
        assert_batch_equals_lazy(&inst, &atoms, &init, &BatchOptions::default());
    }

    #[test]
    fn empty_conjunction_has_one_match() {
        let (_, inst, _, _) = setup();
        let out = batch_all_matches(&inst, &[], &Bindings::new(0), &BatchOptions::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Bindings::new(0));
    }

    #[test]
    fn multi_seed_batch_concatenates_per_seed_sequences() {
        let (_, inst, e, _) = setup();
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
        ];
        // Seeds: x = 3, 0, 2 (in that order — output must follow seed order).
        let mut seeds = BindingBatch::new(3, [Var(0)]);
        let mut expected = Vec::new();
        for x in [3, 0, 2] {
            let mut init = Bindings::new(3);
            init.set(Var(0), Value::Int(x));
            seeds.push_binding(&init);
            // Match the fixed-plan evaluation the batch uses: order planned
            // once from the shared bound set.
            expected.extend(all_matches(&inst, &atoms, init));
        }
        let order = crate::plan::plan_with_bound(&inst, &atoms, seeds.bound_vars().to_vec());
        for batch_size in [1, 2, 1024] {
            let opts = BatchOptions {
                batch_size,
                ..BatchOptions::default()
            };
            let mut got = Vec::new();
            batch_matches_with_plan_into(&inst, &atoms, &order, &seeds, &opts, &mut got);
            assert_eq!(got, expected, "batch_size: {batch_size}");
        }
    }

    #[test]
    fn batch_collect_returns_total_rows_for_full_var_space() {
        let (_, inst, e, _) = setup();
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
        ];
        let init = Bindings::new(3);
        let order = plan(&inst, &atoms, &init);
        let seeds = BindingBatch::seed(&init);
        let result =
            batch_matches_with_plan(&inst, &atoms, &order, &seeds, &BatchOptions::default());
        let lazy = all_matches(&inst, &atoms, init);
        assert_eq!(result.len(), lazy.len());
        for (row, b) in lazy.iter().enumerate() {
            assert_eq!(result.to_bindings(row), *b);
            assert_eq!(result.total(row), b.to_total());
        }
    }

    #[test]
    fn extend_reports_join_stats() {
        let (_, inst, e, _) = setup();
        let atoms = [Atom::new(e, vec![term_v(0), term_v(1)])];
        let before = joinstats::snapshot();
        let seeds = BindingBatch::seed(&Bindings::new(2));
        let out = seeds.extend_atom(&inst, &atoms[0], 0..1, EvalOptions::default());
        assert_eq!(out.len() as u32, inst.rel_len(e));
        let after = joinstats::snapshot();
        assert!(after.batches > before.batches);
        assert!(after.rows_probed >= before.rows_probed + u64::from(inst.rel_len(e)));
    }
}
