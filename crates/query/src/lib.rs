//! Conjunctive-query evaluation over [`routes_model`] instances.
//!
//! This crate plays the role DB2's query engine played in the original
//! implementation of *Debugging Schema Mappings with Routes*: the `findHom`
//! procedure (paper Fig. 4) turns the left- and right-hand side of a tgd into
//! *selection queries with partial bindings* and fetches matching assignments
//! **one at a time** (paper §3.3). Accordingly the central API here is a lazy
//! matcher:
//!
//! * [`Bindings`] — a dense partial assignment of formula variables to values.
//! * [`MatchIter`] — an index-nested-loop backtracking join over a conjunction
//!   of atoms, resumable match by match.
//! * [`plan()`] — a greedy bound-variables-first atom ordering.
//! * [`mod@batch`] — a vectorized executor that pushes columnar
//!   [`BindingBatch`]es through the atom order for full-enumeration callers
//!   (the chase saturation loop, wave-parallel `computeAllRoutes`), yielding
//!   the byte-identical match sequence at a fraction of the per-binding cost.
//! * [`mod@reference`] — a deliberately naive evaluator used as a differential
//!   test oracle.
//!
//! Evaluation is read-only; the column indexes it probes are built lazily
//! inside [`routes_model::Instance`].

pub mod batch;
pub mod bindings;
pub mod eval;
pub mod plan;
pub mod reference;

pub use batch::{
    batch_all_matches, batch_matches_with_plan, batch_matches_with_plan_into, BatchOptions,
    BindingBatch,
};
pub use bindings::{unify_atom, Bindings};
pub use eval::{
    all_matches, anchored_plan, anchored_plan_with_options, first_match, satisfiable, AnchoredPlan,
    EvalOptions, MatchIter,
};
pub use plan::{plan, plan_to_string, plan_with_bound};
