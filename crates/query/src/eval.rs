//! Lazy index-nested-loop evaluation of conjunctions of atoms.

use routes_model::{Atom, Instance, Term, TupleId, Value, Var};

use crate::bindings::Bindings;
use crate::plan::plan;

/// Executor tuning.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// When an atom has two or more bound columns and its most selective
    /// single-column probe would return more than this many candidate rows,
    /// the executor probes a composite index on *all* bound columns instead.
    /// `usize::MAX` disables composite indexes (the ablation baseline).
    pub composite_threshold: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            composite_threshold: 64,
        }
    }
}

/// A resumable backtracking join over a conjunction of atoms.
///
/// Construction plans an atom order (see [`plan`]); each call to
/// [`MatchIter::next_match`] resumes the search and yields the next total
/// match as a reference to the internal [`Bindings`] (clone it to keep it).
///
/// Laziness matters for the paper's algorithms: `ComputeOneRoute` commits to
/// the **first** assignment `findHom` produces and only asks for more when a
/// branch fails or the user requests an alternative route, so evaluation cost
/// is proportional to how far the search actually advances.
pub struct MatchIter<'a> {
    inst: &'a Instance,
    atoms: &'a [Atom],
    order: Vec<usize>,
    bindings: Bindings,
    /// Candidate rows per depth.
    candidates: Vec<Vec<u32>>,
    /// Next candidate position per depth.
    pos: Vec<usize>,
    /// Variables bound by the current row at each depth (for undo).
    trail: Vec<Vec<Var>>,
    options: EvalOptions,
    started: bool,
    done: bool,
}

impl<'a> MatchIter<'a> {
    /// Start a match over `atoms` against `inst`, with `init` giving the
    /// variables already bound (they act as selection constants).
    ///
    /// # Panics
    /// Panics if `init`'s variable space does not cover all variables in
    /// `atoms`.
    pub fn new(inst: &'a Instance, atoms: &'a [Atom], init: Bindings) -> Self {
        Self::with_options(inst, atoms, init, EvalOptions::default())
    }

    /// [`MatchIter::new`] with explicit executor options.
    pub fn with_options(
        inst: &'a Instance,
        atoms: &'a [Atom],
        init: Bindings,
        options: EvalOptions,
    ) -> Self {
        let order = plan(inst, atoms, &init);
        Self::with_plan(inst, atoms, init, order, options)
    }

    /// A [`MatchIter`] that evaluates `order` (indices into `atoms`) in the
    /// given sequence instead of planning one. `order` may cover a subset of
    /// the conjunction; atoms outside it are ignored. This is the suffix
    /// executor of [`anchored_plan`]: fixing the plan keeps the match order
    /// identical to the sequential iterator the plan was taken from.
    pub fn with_plan(
        inst: &'a Instance,
        atoms: &'a [Atom],
        init: Bindings,
        order: Vec<usize>,
        options: EvalOptions,
    ) -> Self {
        let needed = routes_model::atom::var_space(atoms);
        assert!(
            init.capacity() >= needed,
            "bindings cover {} variables but atoms use {}",
            init.capacity(),
            needed
        );
        debug_assert!(order.iter().all(|&ai| ai < atoms.len()));
        let n = atoms.len();
        MatchIter {
            inst,
            atoms,
            order,
            bindings: init,
            candidates: vec![Vec::new(); n],
            pos: vec![0; n],
            trail: vec![Vec::new(); n],
            options,
            started: false,
            done: false,
        }
    }

    /// The current bindings (meaningful right after a successful
    /// [`MatchIter::next_match`]).
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }

    /// Advance to the next total match. Returns `None` when exhausted.
    pub fn next_match(&mut self) -> Option<&Bindings> {
        if self.done {
            return None;
        }
        let n = self.order.len();
        let mut depth = if self.started {
            if n == 0 {
                // The empty conjunction has exactly one match.
                self.done = true;
                return None;
            }
            // Resume below the last yielded match.
            n - 1
        } else {
            self.started = true;
            if n == 0 {
                return Some(&self.bindings);
            }
            self.load_candidates(0);
            0
        };

        loop {
            let mut descended = false;
            while self.pos[depth] < self.candidates[depth].len() {
                let row = self.candidates[depth][self.pos[depth]];
                self.pos[depth] += 1;
                self.undo(depth);
                if self.try_row(depth, row) {
                    if depth + 1 == n {
                        return Some(&self.bindings);
                    }
                    depth += 1;
                    self.load_candidates(depth);
                    descended = true;
                    break;
                }
            }
            if descended {
                continue;
            }
            self.undo(depth);
            if depth == 0 {
                self.done = true;
                return None;
            }
            depth -= 1;
        }
    }

    /// Undo variable bindings made at `depth`.
    fn undo(&mut self, depth: usize) {
        for v in self.trail[depth].drain(..) {
            self.bindings.unset(v);
        }
    }

    /// Populate the candidate rows for the atom at `depth`: scan when no
    /// column is bound, probe the most selective single-column index when
    /// that is selective enough, and escalate to a composite index over all
    /// bound columns otherwise (see [`EvalOptions::composite_threshold`]).
    fn load_candidates(&mut self, depth: usize) {
        let atom = &self.atoms[self.order[depth]];
        self.pos[depth] = 0;
        // Reuse the per-depth buffer; take it out to appease the borrow
        // checker around `probe_into`.
        let mut buf = std::mem::take(&mut self.candidates[depth]);
        load_rows(self.inst, atom, &self.bindings, self.options, &mut buf);
        self.candidates[depth] = buf;
    }

    /// Attempt to match the atom at `depth` against `row`: check bound
    /// positions, bind unbound variables (recorded on the trail).
    fn try_row(&mut self, depth: usize, row: u32) -> bool {
        let atom = &self.atoms[self.order[depth]];
        let id = TupleId { rel: atom.rel, row };
        for (col, term) in atom.terms.iter().enumerate() {
            let actual = self.inst.value_at(id, col);
            match term {
                Term::Const(c) => {
                    if *c != actual {
                        self.undo(depth);
                        return false;
                    }
                }
                Term::Var(v) => match self.bindings.get(*v) {
                    Some(bound) => {
                        if bound != actual {
                            self.undo(depth);
                            return false;
                        }
                    }
                    None => {
                        self.bindings.set(*v, actual);
                        self.trail[depth].push(*v);
                    }
                },
            }
        }
        true
    }
}

/// Candidate rows for `atom` under `bindings`, exactly as the executor loads
/// them at each join depth: probe the most selective single-column index,
/// escalate to a composite probe over all bound columns past
/// [`EvalOptions::composite_threshold`], and scan when nothing is bound.
fn load_rows(
    inst: &Instance,
    atom: &Atom,
    bindings: &Bindings,
    options: EvalOptions,
    buf: &mut Vec<u32>,
) {
    buf.clear();
    // Collect the bound columns (in column order, hence sorted).
    let mut bound: Vec<(u32, Value)> = Vec::new();
    for (col, term) in atom.terms.iter().enumerate() {
        let value = match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => bindings.get(*v),
        };
        if let Some(value) = value {
            // A repeated variable bound twice contributes one entry per
            // column, which is what the composite key needs.
            bound.push((col as u32, value));
        }
    }
    // Most selective single column.
    let mut best: Option<(u32, Value, usize)> = None;
    for &(col, value) in &bound {
        let len = inst.probe_len(atom.rel, col, value);
        if best.is_none_or(|(_, _, blen)| len < blen) {
            best = Some((col, value, len));
        }
    }
    match best {
        Some((_, _, best_len)) if bound.len() >= 2 && best_len > options.composite_threshold => {
            let cols: Vec<u32> = bound.iter().map(|&(c, _)| c).collect();
            let values: Vec<Value> = bound.iter().map(|&(_, v)| v).collect();
            inst.probe_multi_into(atom.rel, &cols, &values, buf);
        }
        Some((col, value, _)) => inst.probe_into(atom.rel, col, value, buf),
        None => buf.extend(0..inst.rel_len(atom.rel)),
    }
}

/// A conjunction decomposed for partitioned (anchored) evaluation: the
/// planned outermost atom, its candidate rows under the initial bindings, and
/// the evaluation order of the remaining atoms.
///
/// Anchoring `atoms[outer]` on one of `rows` (via
/// [`unify_atom`](crate::unify_atom)) and running the suffix through
/// [`MatchIter::with_plan`] yields exactly the matches the sequential
/// [`MatchIter`] finds while positioned on that row, in the same order — so
/// concatenating the per-row outputs in row order reproduces the sequential
/// match sequence no matter how `rows` is chunked across worker threads. This
/// is the determinism contract of the parallel chase.
#[derive(Debug, Clone)]
pub struct AnchoredPlan {
    /// Index (into the conjunction) of the planned outermost atom.
    pub outer: usize,
    /// Candidate rows of the outer atom's relation, in evaluation order.
    pub rows: Vec<u32>,
    /// Evaluation order of the remaining atoms (indices into the conjunction).
    pub suffix: Vec<usize>,
}

/// Decompose `atoms` for anchored evaluation (see [`AnchoredPlan`]). Returns
/// `None` for the empty conjunction, whose single match is `init` itself.
pub fn anchored_plan(inst: &Instance, atoms: &[Atom], init: &Bindings) -> Option<AnchoredPlan> {
    anchored_plan_with_options(inst, atoms, init, EvalOptions::default())
}

/// [`anchored_plan`] with explicit executor options.
pub fn anchored_plan_with_options(
    inst: &Instance,
    atoms: &[Atom],
    init: &Bindings,
    options: EvalOptions,
) -> Option<AnchoredPlan> {
    let mut order = plan(inst, atoms, init);
    if order.is_empty() {
        return None;
    }
    let suffix = order.split_off(1);
    let outer = order[0];
    let mut rows = Vec::new();
    load_rows(inst, &atoms[outer], init, options, &mut rows);
    Some(AnchoredPlan {
        outer,
        rows,
        suffix,
    })
}

/// The first match of `atoms` against `inst` extending `init`, if any.
pub fn first_match(inst: &Instance, atoms: &[Atom], init: Bindings) -> Option<Bindings> {
    let mut it = MatchIter::new(inst, atoms, init);
    it.next_match().cloned()
}

/// All matches, materialized. Prefer [`MatchIter`] when you may stop early.
pub fn all_matches(inst: &Instance, atoms: &[Atom], init: Bindings) -> Vec<Bindings> {
    let mut it = MatchIter::new(inst, atoms, init);
    let mut out = Vec::new();
    while let Some(b) = it.next_match() {
        out.push(b.clone());
    }
    out
}

/// Whether at least one match exists.
pub fn satisfiable(inst: &Instance, atoms: &[Atom], init: Bindings) -> bool {
    MatchIter::new(inst, atoms, init).next_match().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{RelId, Schema};

    fn term_v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn setup() -> (Schema, Instance, RelId, RelId) {
        let mut s = Schema::new();
        let e = s.rel("E", &["src", "dst"]);
        let l = s.rel("L", &["node"]);
        let mut inst = Instance::new(&s);
        // A small graph: 0->1, 1->2, 2->3, 0->2; labels on 1 and 2.
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
            inst.insert_ok(e, &[Value::Int(a), Value::Int(b)]);
        }
        inst.insert_ok(l, &[Value::Int(1)]);
        inst.insert_ok(l, &[Value::Int(2)]);
        (s, inst, e, l)
    }

    #[test]
    fn single_atom_scan() {
        let (_, inst, e, _) = setup();
        let atoms = vec![Atom::new(e, vec![term_v(0), term_v(1)])];
        let matches = all_matches(&inst, &atoms, Bindings::new(2));
        assert_eq!(matches.len(), 4);
        assert!(matches.iter().all(Bindings::is_total));
    }

    #[test]
    fn join_two_atoms() {
        let (_, inst, e, _) = setup();
        // Paths of length two: E(x,y) ∧ E(y,z).
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
        ];
        let matches = all_matches(&inst, &atoms, Bindings::new(3));
        // 0->1->2, 1->2->3, 0->2->3.
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn initial_bindings_restrict() {
        let (_, inst, e, _) = setup();
        let atoms = vec![Atom::new(e, vec![term_v(0), term_v(1)])];
        let mut init = Bindings::new(2);
        init.set(Var(0), Value::Int(0));
        let matches = all_matches(&inst, &atoms, init);
        assert_eq!(matches.len(), 2); // 0->1 and 0->2
    }

    #[test]
    fn constants_in_atoms() {
        let (_, inst, e, _) = setup();
        let atoms = vec![Atom::new(e, vec![Term::Const(Value::Int(0)), term_v(0)])];
        let matches = all_matches(&inst, &atoms, Bindings::new(1));
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut s = Schema::new();
        let r = s.rel("R", &["a", "b"]);
        let mut inst = Instance::new(&s);
        inst.insert_ok(r, &[Value::Int(1), Value::Int(1)]);
        inst.insert_ok(r, &[Value::Int(1), Value::Int(2)]);
        let atoms = vec![Atom::new(r, vec![term_v(0), term_v(0)])];
        let matches = all_matches(&inst, &atoms, Bindings::new(1));
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get(Var(0)), Some(Value::Int(1)));
    }

    #[test]
    fn empty_conjunction_has_one_match() {
        let (_, inst, _, _) = setup();
        let matches = all_matches(&inst, &[], Bindings::new(0));
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn unsatisfiable_join() {
        let (_, inst, e, l) = setup();
        // E(x, y) ∧ L(x) where x must be 1 or 2 and also have an out-edge
        // to a labeled node: E(1,2) ∧ L(1) ∧ L(2) works; force failure with
        // a constant that never occurs.
        let atoms = vec![
            Atom::new(e, vec![Term::Const(Value::Int(99)), term_v(0)]),
            Atom::new(l, vec![term_v(0)]),
        ];
        assert!(!satisfiable(&inst, &atoms, Bindings::new(1)));
        assert_eq!(first_match(&inst, &atoms, Bindings::new(1)), None);
    }

    #[test]
    fn lazy_iteration_yields_each_match_once() {
        let (_, inst, e, _) = setup();
        let atoms = vec![Atom::new(e, vec![term_v(0), term_v(1)])];
        let mut it = MatchIter::new(&inst, &atoms, Bindings::new(2));
        let mut seen = std::collections::HashSet::new();
        while let Some(b) = it.next_match() {
            assert!(seen.insert((b.get(Var(0)), b.get(Var(1)))));
        }
        assert_eq!(seen.len(), 4);
        // Exhausted iterators stay exhausted.
        assert!(it.next_match().is_none());
        assert!(it.next_match().is_none());
    }

    /// Replay an anchored decomposition: for each outer-atom candidate row,
    /// unify the anchor and enumerate the suffix under the fixed plan.
    fn replay_anchored(inst: &Instance, atoms: &[Atom], init: &Bindings) -> Vec<Bindings> {
        let Some(ap) = anchored_plan(inst, atoms, init) else {
            return vec![init.clone()];
        };
        let anchor = &atoms[ap.outer];
        let mut out = Vec::new();
        for &row in &ap.rows {
            let mut b = init.clone();
            let tuple = inst.tuple(TupleId {
                rel: anchor.rel,
                row,
            });
            if !crate::unify_atom(anchor, &tuple, &mut b) {
                continue;
            }
            let mut it =
                MatchIter::with_plan(inst, atoms, b, ap.suffix.clone(), EvalOptions::default());
            while let Some(m) = it.next_match() {
                out.push(m.clone());
            }
        }
        out
    }

    #[test]
    fn anchored_plan_reproduces_sequential_match_order() {
        let (_, inst, e, l) = setup();
        let term_c = |k: i64| Term::Const(Value::Int(k));
        let conjunctions: Vec<Vec<Atom>> = vec![
            // Single-atom scan.
            vec![Atom::new(e, vec![term_v(0), term_v(1)])],
            // Two-atom join.
            vec![
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(e, vec![term_v(1), term_v(2)]),
            ],
            // Join where the planner reorders (L is smaller, goes first).
            vec![
                Atom::new(e, vec![term_v(0), term_v(1)]),
                Atom::new(l, vec![term_v(0)]),
            ],
            // Constant in the anchor candidate set.
            vec![
                Atom::new(e, vec![term_c(0), term_v(0)]),
                Atom::new(e, vec![term_v(0), term_v(1)]),
            ],
        ];
        for atoms in &conjunctions {
            let vars = routes_model::atom::var_space(atoms);
            let sequential = all_matches(&inst, atoms, Bindings::new(vars));
            let anchored = replay_anchored(&inst, atoms, &Bindings::new(vars));
            assert_eq!(sequential, anchored, "atoms: {atoms:?}");
        }
    }

    #[test]
    fn anchored_plan_respects_initial_bindings() {
        let (_, inst, e, _) = setup();
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
        ];
        let mut init = Bindings::new(3);
        init.set(Var(0), Value::Int(0));
        let sequential = all_matches(&inst, &atoms, init.clone());
        let anchored = replay_anchored(&inst, &atoms, &init);
        assert_eq!(sequential, anchored);
    }

    #[test]
    fn anchored_plan_of_empty_conjunction_is_none() {
        let (_, inst, _, _) = setup();
        assert!(anchored_plan(&inst, &[], &Bindings::new(0)).is_none());
    }

    #[test]
    fn triangle_query_on_larger_graph() {
        let mut s = Schema::new();
        let e = s.rel("E", &["a", "b"]);
        let mut inst = Instance::new(&s);
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 0)];
        for (a, b) in edges {
            inst.insert_ok(e, &[Value::Int(a), Value::Int(b)]);
        }
        // Triangles: E(x,y) ∧ E(y,z) ∧ E(z,x).
        let atoms = vec![
            Atom::new(e, vec![term_v(0), term_v(1)]),
            Atom::new(e, vec![term_v(1), term_v(2)]),
            Atom::new(e, vec![term_v(2), term_v(0)]),
        ];
        let matches = all_matches(&inst, &atoms, Bindings::new(3));
        // Directed triangles: (0,1,2), (1,2,0), (2,0,1) plus the 2-cycle
        // 0->1->0 expands to (0,1,0),(1,0,1)? No: z=x is allowed only if
        // E(x,y),E(y,x),E(x,x) — no self loops. The 2-cycle 0<->1 gives
        // triangle (0,1,0)? That needs E(0,1),E(1,0),E(0,0): absent.
        // So exactly the rotations of the 0-1-2 triangle... plus 0->2? No
        // edge 0->2. And (2,3,0) rotations: E(2,3),E(3,0),E(0,2): absent.
        assert_eq!(matches.len(), 3);
    }
}
