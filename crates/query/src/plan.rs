//! Greedy join-order planning.
//!
//! Atoms are ordered so that each step has as many bound columns as possible
//! (constants, initially bound variables, and variables bound by earlier
//! atoms all count), breaking ties toward smaller relations. This is the
//! classic "bound-first" heuristic; with the per-column hash indexes in
//! `routes-model` it turns most steps into index probes.

use routes_model::{Atom, Instance, Term, Var};

use crate::bindings::Bindings;

/// Compute an evaluation order (a permutation of `0..atoms.len()`) for the
/// given conjunction, assuming the variables bound in `init` are available
/// from the start.
pub fn plan(inst: &Instance, atoms: &[Atom], init: &Bindings) -> Vec<usize> {
    plan_with_bound(inst, atoms, init.iter().map(|(v, _)| v).collect())
}

/// [`plan`] given just the *set* of initially bound variables. The plan
/// depends only on which variables are bound (never on their values), so
/// callers that evaluate many bindings with the same bound set — the batch
/// executor seeding from anchor-unified tuples — can plan once up front and
/// know the order matches what [`plan`] would pick for each binding
/// individually.
pub fn plan_with_bound(inst: &Instance, atoms: &[Atom], mut bound: Vec<Var>) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order = Vec::with_capacity(atoms.len());

    while !remaining.is_empty() {
        let best_pos = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(_, &ai)| score(inst, &atoms[ai], &bound))
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        let ai = remaining.swap_remove(best_pos);
        for v in atoms[ai].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(ai);
    }
    order
}

/// Score an atom for selection: more bound columns is better; among equals,
/// smaller relations are better. Returned as a lexicographic key.
fn score(inst: &Instance, atom: &Atom, bound: &[Var]) -> (i64, i64) {
    let bound_cols = atom
        .terms
        .iter()
        .filter(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .count() as i64;
    // Negate size so that max_by_key prefers smaller relations.
    (bound_cols, -(inst.rel_len(atom.rel) as i64))
}

/// Render an evaluation plan for a conjunction: one line per atom in
/// execution order, with its access path (scan, index probe, or composite
/// probe) given the variables bound when it runs. A compact `EXPLAIN` for
/// the `findHom` selection queries.
pub fn plan_to_string(
    inst: &Instance,
    atoms: &[Atom],
    init: &Bindings,
    rel_name: impl Fn(routes_model::RelId) -> String,
    var_name: impl Fn(Var) -> String,
) -> String {
    use std::fmt::Write as _;
    let order = plan(inst, atoms, init);
    let mut bound: Vec<Var> = init.iter().map(|(v, _)| v).collect();
    let mut out = String::new();
    for (step, &ai) in order.iter().enumerate() {
        let atom = &atoms[ai];
        let bound_cols: Vec<String> = atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(col, term)| match term {
                Term::Const(_) => Some(format!("#{col}=const")),
                Term::Var(v) if bound.contains(v) => Some(format!("#{col}={}", var_name(*v))),
                Term::Var(_) => None,
            })
            .collect();
        let access = match bound_cols.len() {
            0 => format!("scan ({} rows)", inst.rel_len(atom.rel)),
            1 => format!("index probe on {}", bound_cols[0]),
            _ => format!("index probe on [{}]", bound_cols.join(", ")),
        };
        let _ = writeln!(out, "  {}. {:<16} {}", step + 1, rel_name(atom.rel), access);
        for v in atom.vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routes_model::{Schema, Value};

    fn setup() -> (Schema, Instance) {
        let mut s = Schema::new();
        let big = s.rel("Big", &["a", "b"]);
        let small = s.rel("Small", &["a"]);
        let mut inst = Instance::new(&s);
        for i in 0..100 {
            inst.insert_ok(big, &[Value::Int(i), Value::Int(i + 1)]);
        }
        inst.insert_ok(small, &[Value::Int(3)]);
        (s, inst)
    }

    #[test]
    fn prefers_bound_atoms_first() {
        let (s, inst) = setup();
        let big = s.rel_id("Big").unwrap();
        let small = s.rel_id("Small").unwrap();
        // Big(x, y) ∧ Small(x) with nothing bound: Small is smaller, goes
        // first; then Big has a bound column.
        let atoms = vec![
            Atom::new(big, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            Atom::new(small, vec![Term::Var(Var(0))]),
        ];
        let order = plan(&inst, &atoms, &Bindings::new(2));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn initial_bindings_count_as_bound() {
        let (s, inst) = setup();
        let big = s.rel_id("Big").unwrap();
        let small = s.rel_id("Small").unwrap();
        // With y pre-bound, Big(x,y) has one bound column — same as Small(x)
        // has zero... Big(x,y) scores (1, -100), Small scores (0, -1): Big first.
        let atoms = vec![
            Atom::new(small, vec![Term::Var(Var(0))]),
            Atom::new(big, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
        ];
        let mut init = Bindings::new(2);
        init.set(Var(1), Value::Int(4));
        let order = plan(&inst, &atoms, &init);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn constants_count_as_bound() {
        let (s, inst) = setup();
        let big = s.rel_id("Big").unwrap();
        let small = s.rel_id("Small").unwrap();
        let atoms = vec![
            Atom::new(small, vec![Term::Var(Var(0))]),
            Atom::new(big, vec![Term::Const(Value::Int(5)), Term::Var(Var(1))]),
        ];
        let order = plan(&inst, &atoms, &Bindings::new(2));
        // Big has 1 bound column (the constant) vs Small's 0.
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn plan_rendering_shows_access_paths() {
        let (s, inst) = setup();
        let big = s.rel_id("Big").unwrap();
        let small = s.rel_id("Small").unwrap();
        let atoms = vec![
            Atom::new(big, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            Atom::new(small, vec![Term::Var(Var(0))]),
        ];
        let text = plan_to_string(
            &inst,
            &atoms,
            &Bindings::new(2),
            |rel| s.relation(rel).name().to_owned(),
            |v| format!("v{}", v.0),
        );
        // Small scans first (1 row), Big then probes on the bound v0.
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].contains("Small") && lines[0].contains("scan (1 rows)"),
            "{text}"
        );
        assert!(
            lines[1].contains("Big") && lines[1].contains("index probe on #0=v0"),
            "{text}"
        );
    }

    #[test]
    fn plan_is_a_permutation() {
        let (s, inst) = setup();
        let big = s.rel_id("Big").unwrap();
        let atoms: Vec<Atom> = (0..5)
            .map(|i| Atom::new(big, vec![Term::Var(Var(i)), Term::Var(Var(i + 1))]))
            .collect();
        let mut order = plan(&inst, &atoms, &Bindings::new(6));
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
