//! A deliberately naive conjunctive-query evaluator used as a differential
//! test oracle for [`crate::eval`].
//!
//! No planning, no indexes: atoms are processed in the order given, each by a
//! full relation scan. Correct and obviously so — and far too slow for real
//! workloads, which is exactly the contrast the paper draws between in-memory
//! top-down resolution and pushing `findHom` queries to the database (§5.2).

use routes_model::{Atom, Instance, Term, TupleId};

use crate::bindings::Bindings;

/// All matches of the conjunction, by brute-force nested loops.
pub fn all_matches_naive(inst: &Instance, atoms: &[Atom], init: Bindings) -> Vec<Bindings> {
    let mut out = Vec::new();
    let mut current = init;
    recurse(inst, atoms, 0, &mut current, &mut out);
    out
}

fn recurse(
    inst: &Instance,
    atoms: &[Atom],
    depth: usize,
    current: &mut Bindings,
    out: &mut Vec<Bindings>,
) {
    if depth == atoms.len() {
        out.push(current.clone());
        return;
    }
    let atom = &atoms[depth];
    for row in 0..inst.rel_len(atom.rel) {
        let values = inst.tuple(TupleId { rel: atom.rel, row });
        let mut bound_here = Vec::new();
        let mut ok = true;
        for (col, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if *c != values[col] {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match current.get(*v) {
                    Some(b) => {
                        if b != values[col] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        current.set(*v, values[col]);
                        bound_here.push(*v);
                    }
                },
            }
        }
        if ok {
            recurse(inst, atoms, depth + 1, current, out);
        }
        for v in bound_here {
            current.unset(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::all_matches;
    use routes_model::{Schema, Value, Var};
    use std::collections::HashSet;

    #[test]
    fn agrees_with_indexed_evaluator_on_a_join() {
        let mut s = Schema::new();
        let e = s.rel("E", &["a", "b"]);
        let mut inst = Instance::new(&s);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2), (2, 0)] {
            inst.insert_ok(e, &[Value::Int(a), Value::Int(b)]);
        }
        let atoms = vec![
            Atom::new(e, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            Atom::new(e, vec![Term::Var(Var(1)), Term::Var(Var(2))]),
        ];
        let fast: HashSet<_> = all_matches(&inst, &atoms, Bindings::new(3))
            .into_iter()
            .collect();
        let slow: HashSet<_> = all_matches_naive(&inst, &atoms, Bindings::new(3))
            .into_iter()
            .collect();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }
}
