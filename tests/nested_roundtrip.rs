//! Property tests for the nested relational model: random trees survive the
//! encode → decode roundtrip, and copying tgds preserve tree shape through
//! the chase.
//!
//! Ported from `proptest` to seeded deterministic loops over the in-repo
//! PRNG; the original case counts (128 per property) are preserved.

use mapping_routes::prelude::*;
use routes_gen::Rng;
use routes_nested::{decode_instance, encode_instance, encode_schema};

/// A random 3-level tree described as fanouts.
#[derive(Debug, Clone)]
struct TreeSpec {
    roots: usize,
    mid_fanouts: Vec<usize>,
    leaf_fanouts: Vec<usize>,
}

/// The proptest strategy, reified: 1..4 roots, fanouts 0..4 per level.
fn random_tree_spec(rng: &mut Rng) -> TreeSpec {
    let roots = rng.gen_range(1..4usize);
    let mid_fanouts: Vec<usize> = (0..roots).map(|_| rng.gen_range(0..4usize)).collect();
    let total_mid: usize = mid_fanouts.iter().sum();
    let leaf_fanouts: Vec<usize> = (0..total_mid.max(1))
        .map(|_| rng.gen_range(0..4usize))
        .collect();
    TreeSpec {
        roots,
        mid_fanouts,
        leaf_fanouts,
    }
}

fn build(spec: &TreeSpec) -> (NestedSchema, NestedInstance, ValuePool) {
    let mut schema = NestedSchema::new();
    let a = schema.add_root("A", &["x"]);
    let b = schema.add_child(a, "B", &["y"]);
    let c = schema.add_child(b, "C", &["z"]);
    let pool = ValuePool::new();
    let mut inst = NestedInstance::new();
    let mut mid_idx = 0usize;
    let mut counter = 0i64;
    for r in 0..spec.roots {
        let root = inst.add_root(&schema, a, &[Value::Int(r as i64)]);
        for _ in 0..spec.mid_fanouts[r] {
            counter += 1;
            let mid = inst.add_child(&schema, root, b, &[Value::Int(counter)]);
            let leaves = spec.leaf_fanouts.get(mid_idx).copied().unwrap_or(0);
            mid_idx += 1;
            for _ in 0..leaves {
                counter += 1;
                inst.add_child(&schema, mid, c, &[Value::Int(counter)]);
            }
        }
    }
    (schema, inst, pool)
}

#[test]
fn encode_decode_roundtrip_preserves_structure() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x4E57 + case);
        let spec = random_tree_spec(&mut rng);
        let (schema, inst, _pool) = build(&spec);
        let enc_schema = encode_schema(&schema);
        let encoded = encode_instance(&schema, &enc_schema, &inst);
        assert_eq!(encoded.instance.total_tuples(), inst.len(), "case {case}");

        let back = decode_instance(&schema, &enc_schema, &encoded.instance);
        assert_eq!(back.len(), inst.len(), "case {case}");
        assert_eq!(back.roots().len(), inst.roots().len(), "case {case}");
        // Depth multiset preserved.
        let mut before: Vec<usize> = inst.iter().map(|n| inst.depth_of(n)).collect();
        let mut after: Vec<usize> = back.iter().map(|n| back.depth_of(n)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "case {case}");
    }
}

#[test]
fn copy_tgd_through_chase_preserves_trees() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xC09D + case);
        let spec = random_tree_spec(&mut rng);
        let (schema, inst, mut pool) = build(&spec);
        if inst.is_empty() {
            continue;
        }
        // Target: isomorphic schema with primed names.
        let mut dst = NestedSchema::new();
        let a2 = dst.add_root("A2", &["x"]);
        let b2 = dst.add_child(a2, "B2", &["y"]);
        dst.add_child(b2, "C2", &["z"]);
        let enc_src = encode_schema(&schema);
        let enc_dst = encode_schema(&dst);
        let encoded = encode_instance(&schema, &enc_src, &inst);

        let mut mapping = SchemaMapping::new(enc_src.schema.clone(), enc_dst.schema.clone());
        // One copy tgd per depth prefix so even childless nodes copy.
        let leaf_path = schema.path_to(schema.type_by_name("C").unwrap());
        let dst_names = ["A2", "B2", "C2"];
        for prefix in 1..=leaf_path.len() {
            let text = copy_tree_tgd(
                &format!("copy{prefix}"),
                &schema,
                &leaf_path[..prefix],
                &dst_names[..prefix],
            );
            let tgd = parse_st_tgd(&enc_src.schema, &enc_dst.schema, &mut pool, &text).unwrap();
            mapping.add_st_tgd(tgd).unwrap();
        }
        let solution = chase(
            &mapping,
            &encoded.instance,
            &mut pool,
            ChaseOptions::skolem(),
        )
        .unwrap()
        .target;
        assert_eq!(solution.total_tuples(), inst.len(), "case {case}");
        let back = decode_instance(&dst, &enc_dst, &solution);
        assert_eq!(back.len(), inst.len(), "case {case}");
        assert_eq!(back.roots().len(), inst.roots().len(), "case {case}");

        // Every copied tuple has a (single-step) route.
        let env = RouteEnv::new(&mapping, &encoded.instance, &solution);
        for t in solution.all_rows().take(10) {
            let route = compute_one_route(env, &[t]).unwrap();
            route.validate(&env, &[t]).unwrap();
        }
    }
}
