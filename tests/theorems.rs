//! Property tests for the paper's formal guarantees:
//!
//! * **Theorem 3.10** (completeness of `ComputeOneRoute`): whenever a route
//!   exists for a selection, `ComputeOneRoute` produces one — and it is a
//!   valid route. We cross-validate against the route forest's provable set
//!   (derived from `ComputeAllRoutes`), which independently characterizes
//!   route existence.
//! * **Theorem 3.7** (completeness of the route forest): every *minimal*
//!   route for a selection has the same stratified interpretation — i.e.
//!   the same step set — as some route enumerated by `NaivePrint` from the
//!   forest. Minimal routes are enumerated by brute force on small random
//!   scenarios.
//! * **Proposition 3.6/3.9** (sanity versions): forests and routes stay
//!   polynomial-sized on these scenarios.

use std::collections::HashSet;

use mapping_routes::prelude::*;
use routes_chase::chase;
use routes_core::FindHom;
use routes_gen::random_scenario;
use routes_model::Instance;

/// Build `(scenario, J)` from a seed; `None` if the chase trips a guard.
fn chased(seed: u64) -> Option<(routes_gen::Scenario, Instance)> {
    let mut sc = random_scenario(seed);
    let options = ChaseOptions {
        max_rounds: 200,
        max_tuples: 5_000,
        ..ChaseOptions::fresh()
    };
    let result = chase(&sc.mapping, &sc.source, &mut sc.pool, options).ok()?;
    Some((sc, result.target))
}

#[test]
fn theorem_3_10_one_route_completeness_and_cross_validation() {
    let mut scenarios = 0;
    let mut tuples_checked = 0;
    for seed in 0..200 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        scenarios += 1;
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let all: Vec<TupleId> = j.all_rows().collect();
        if all.is_empty() {
            continue;
        }
        // The forest over everything tells us exactly which tuples have
        // routes.
        let forest = compute_all_routes(env, &all);
        let provable = forest.provable_set();
        for &t in &all {
            tuples_checked += 1;
            match compute_one_route(env, &[t]) {
                Ok(route) => {
                    route
                        .validate(&env, &[t])
                        .unwrap_or_else(|e| panic!("seed {seed}: invalid route for {t:?}: {e}"));
                    assert!(
                        provable.contains(&t),
                        "seed {seed}: one-route found a route the forest says cannot exist"
                    );
                }
                Err(_) => {
                    assert!(
                        !provable.contains(&t),
                        "seed {seed}: forest proves {t:?} but ComputeOneRoute failed \
                         (Theorem 3.10 violated)"
                    );
                }
            }
        }
        // Chase-produced tuples always have routes (they were derived from
        // I by the dependencies).
        for &t in &all {
            assert!(
                provable.contains(&t),
                "seed {seed}: chased tuple {t:?} must have a route"
            );
        }
        // Multi-tuple selections.
        if all.len() >= 2 {
            let selection = &all[..2.min(all.len())];
            let route = compute_one_route(env, selection)
                .unwrap_or_else(|e| panic!("seed {seed}: joint route failed: {e}"));
            route.validate(&env, selection).unwrap();
        }
    }
    assert!(scenarios > 100, "enough scenarios exercised: {scenarios}");
    assert!(
        tuples_checked > 500,
        "enough tuples exercised: {tuples_checked}"
    );
}

/// All satisfaction-step candidates `(σ, h)` valid with respect to `(I, J)`,
/// collected by probing every target tuple with every tgd.
fn candidate_steps(env: RouteEnv<'_>, j: &Instance) -> Vec<SatisfactionStep> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for t in j.all_rows() {
        for tgd_id in env.mapping.tgd_ids() {
            let mut fh = FindHom::new(env, tgd_id, routes_core::AnchorSide::Rhs, Fact::target(t));
            while let Some(hom) = fh.next_hom() {
                if seen.insert((tgd_id, hom.clone())) {
                    out.push(SatisfactionStep::new(tgd_id, hom));
                }
            }
        }
    }
    out
}

/// Whether a step set admits an applicable ordering producing `target`
/// (greedy closure: apply any step whose premises are available).
fn routable(env: &RouteEnv<'_>, steps: &[&SatisfactionStep], target: TupleId) -> bool {
    let mut produced: HashSet<TupleId> = HashSet::new();
    let mut used = vec![false; steps.len()];
    loop {
        let mut progressed = false;
        for (k, step) in steps.iter().enumerate() {
            if used[k] {
                continue;
            }
            let lhs = step.lhs_facts(env).expect("candidate steps resolve");
            let ready = lhs.iter().all(|f| match f.side {
                Side::Source => true,
                Side::Target => produced.contains(&f.id),
            });
            if ready {
                used[k] = true;
                produced.extend(step.rhs_tuples(env).expect("candidate steps resolve"));
                progressed = true;
            }
        }
        if !progressed {
            // A subset with unusable steps cannot be a *route of exactly
            // this step set* (unused steps would be removable anyway).
            return used.iter().all(|&u| u) && produced.contains(&target);
        }
        if used.iter().all(|&u| u) {
            return produced.contains(&target);
        }
    }
}

#[test]
fn theorem_3_7_minimal_routes_appear_in_naive_print() {
    let mut verified_routes = 0;
    let mut scenarios = 0;
    for seed in 0..400 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        if j.total_tuples() == 0 || j.total_tuples() > 6 {
            continue;
        }
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let candidates = candidate_steps(env, &j);
        if candidates.is_empty() || candidates.len() > 14 {
            continue;
        }
        scenarios += 1;
        let candidate_refs: Vec<&SatisfactionStep> = candidates.iter().collect();

        for t in j.all_rows() {
            // Brute-force all minimal routable step subsets for {t} (by
            // subset enumeration; minimality = no routable strict subset).
            let n = candidate_refs.len();
            let mut routable_masks: Vec<u32> = Vec::new();
            for mask in 1u32..(1 << n) {
                let subset: Vec<&SatisfactionStep> = (0..n)
                    .filter(|k| mask & (1 << k) != 0)
                    .map(|k| candidate_refs[k])
                    .collect();
                if routable(&env, &subset, t) {
                    routable_masks.push(mask);
                }
            }
            let minimal_masks: Vec<u32> = routable_masks
                .iter()
                .copied()
                .filter(|&m| {
                    !routable_masks
                        .iter()
                        .any(|&other| other != m && other & m == other)
                })
                .collect();
            if minimal_masks.is_empty() {
                continue;
            }

            // NaivePrint's step sets for t.
            let forest = compute_all_routes(env, &[t]);
            let printed = enumerate_routes(env, &forest, &[t], 4_000);
            let printed_sets: Vec<HashSet<&SatisfactionStep>> =
                printed.iter().map(Route::step_set).collect();

            for mask in minimal_masks {
                let minimal_set: HashSet<&SatisfactionStep> = (0..candidate_refs.len())
                    .filter(|k| mask & (1 << k) != 0)
                    .map(|k| candidate_refs[k])
                    .collect();
                let found = printed_sets.contains(&minimal_set);
                assert!(
                    found,
                    "seed {seed}: a minimal route for {t:?} with steps {minimal_set:?} \
                     is not represented in NaivePrint's output (Theorem 3.7 violated)"
                );
                verified_routes += 1;
            }
        }
    }
    assert!(scenarios >= 20, "enough small scenarios found: {scenarios}");
    assert!(
        verified_routes >= 50,
        "enough minimal routes verified: {verified_routes}"
    );
}

#[test]
fn naive_print_routes_are_always_valid() {
    for seed in 0..100 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let all: Vec<TupleId> = j.all_rows().collect();
        if all.is_empty() {
            continue;
        }
        let selection = &all[..all.len().min(3)];
        let forest = compute_all_routes(env, selection);
        for route in enumerate_routes(env, &forest, selection, 200) {
            route
                .validate(&env, selection)
                .unwrap_or_else(|e| panic!("seed {seed}: NaivePrint route invalid: {e}"));
        }
    }
}

#[test]
fn forests_and_routes_stay_polynomial() {
    // Sanity-scale version of Propositions 3.6/3.9: the forest branch count
    // is bounded by (#tuples × #tgds × #homs-per-pair) and routes never
    // exceed the forest's step budget.
    for seed in 0..100 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let all: Vec<TupleId> = j.all_rows().collect();
        if all.is_empty() {
            continue;
        }
        let forest = compute_all_routes(env, &all);
        let candidates = candidate_steps(env, &j);
        // A step (σ, h) appears as a branch under each tuple of RHS(h(σ)),
        // so the forest size is bounded by #candidates × max RHS width.
        let max_rhs = sc
            .mapping
            .tgd_ids()
            .map(|id| sc.mapping.tgd(id).rhs().len())
            .max()
            .unwrap_or(1);
        assert!(forest.num_branches() <= candidates.len() * max_rhs);
        if let Ok(route) = compute_one_route(env, &all) {
            assert!(route.len() <= candidates.len());
        }
    }
}

#[test]
fn exact_count_matches_enumeration_when_acyclic() {
    use routes_core::count_routes;
    let mut checked = 0;
    for seed in 0..150 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let all: Vec<TupleId> = j.all_rows().collect();
        if all.is_empty() || all.len() > 6 {
            continue;
        }
        let selection = &all[..all.len().min(2)];
        let forest = compute_all_routes(env, selection);
        if let Some(count) = count_routes(&forest, selection) {
            if count > 3_000 {
                continue;
            }
            let enumerated = enumerate_routes(env, &forest, selection, 4_000);
            assert_eq!(
                enumerated.len() as u128,
                count,
                "seed {seed}: DP count must equal NaivePrint enumeration"
            );
            checked += 1;
        }
    }
    assert!(checked > 40, "enough acyclic scenarios checked: {checked}");
}

#[test]
fn minimize_route_always_reaches_a_minimal_route() {
    for seed in 0..100 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let all: Vec<TupleId> = j.all_rows().collect();
        if all.is_empty() {
            continue;
        }
        let selection = &all[..all.len().min(2)];
        if let Ok(route) = compute_one_route(env, selection) {
            let minimal = minimize_route(&env, &route, selection);
            assert!(minimal.len() <= route.len());
            assert!(is_minimal(&env, &minimal, selection), "seed {seed}");
            minimal.validate(&env, selection).unwrap();
        }
    }
}

#[test]
fn alternative_routes_are_distinct_and_valid() {
    for seed in 0..60 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let Some(t) = j.all_rows().next() else {
            continue;
        };
        let routes = alternative_routes(env, &[t], 4);
        let mut seen = HashSet::new();
        for route in &routes {
            route.validate(&env, &[t]).unwrap();
            let mut sig: Vec<_> = route
                .steps()
                .iter()
                .map(|s| (s.tgd, s.hom.clone()))
                .collect();
            sig.sort();
            sig.dedup();
            assert!(seen.insert(sig), "seed {seed}: duplicate alternative route");
        }
    }
}
