//! Determinism of the parallel execution layer (tier-1).
//!
//! The parallel chase and parallel `ComputeAllRoutes` are required to be
//! *exact*: at every worker count they must produce byte-identical target
//! instances (same tuple ids, same labeled nulls), identical chase
//! statistics, and an identical route forest (same exploration order, same
//! branches) as the sequential implementations. These tests pin that
//! contract over seeded random scenarios, both with explicit pool sizes and
//! through the `ROUTES_THREADS` environment override.

use routes_chase::{chase, chase_with_pool, ChaseOptions, ChaseResult};
use routes_core::{compute_all_routes, compute_all_routes_with_pool, RouteEnv, RouteForest};
use routes_gen::random_scenario;
use routes_model::{Instance, Schema, TupleId, ValuePool};
use routes_pool::Pool;

/// Seeds chosen so the scenarios exercise multi-tgd mappings with non-empty
/// sources (every seed chases successfully; see `routes_gen::random`).
const SEEDS: [u64; 5] = [3, 7, 11, 23, 42];

const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// A canonical, index-free rendering of a target instance: relation name,
/// row index, and printed values (labeled nulls included) for every tuple,
/// in schema/row order.
fn dump_instance(schema: &Schema, inst: &Instance, values: &ValuePool) -> String {
    let mut out = String::new();
    for (rel, relation) in schema.iter() {
        for (t, row) in inst.rel_tuples(rel) {
            out.push_str(relation.name());
            out.push_str(&format!("[{}](", t.row));
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&values.value_to_string(*v));
            }
            out.push_str(")\n");
        }
    }
    out
}

/// A canonical rendering of a route forest: roots, exploration order, and
/// every node's branches (tgd, homomorphism, children, witnessed tuples) in
/// exploration order.
fn dump_forest(forest: &RouteForest, values: &ValuePool) -> String {
    let mut out = format!("roots: {:?}\norder: {:?}\n", forest.roots, forest.order);
    for &t in &forest.order {
        out.push_str(&format!("node {t:?}\n"));
        for b in forest.branches_of(t) {
            let hom: Vec<String> = b.iter_hom(values);
            out.push_str(&format!(
                "  branch {:?} hom=[{}] lhs={:?} rhs={:?}\n",
                b.tgd,
                hom.join(", "),
                b.lhs_facts,
                b.rhs_tuples
            ));
        }
    }
    out
}

trait HomDump {
    fn iter_hom(&self, values: &ValuePool) -> Vec<String>;
}

impl HomDump for routes_core::Branch {
    fn iter_hom(&self, values: &ValuePool) -> Vec<String> {
        self.hom
            .iter()
            .map(|&v| values.value_to_string(v))
            .collect()
    }
}

/// Sequential baseline: chase result + pool snapshot for one seed.
fn sequential_chase(seed: u64, options: ChaseOptions) -> (ChaseResult, ValuePool, String) {
    let mut sc = random_scenario(seed);
    let result = chase(&sc.mapping, &sc.source, &mut sc.pool, options)
        .unwrap_or_else(|e| panic!("seed {seed}: sequential chase failed: {e}"));
    let dump = dump_instance(sc.mapping.target(), &result.target, &sc.pool);
    (result, sc.pool, dump)
}

fn assert_parallel_chase_matches(seed: u64, options: ChaseOptions, workers: &Pool) {
    let (baseline, base_pool, base_dump) = sequential_chase(seed, options);
    let mut sc = random_scenario(seed);
    let result = chase_with_pool(&sc.mapping, &sc.source, &mut sc.pool, options, workers)
        .unwrap_or_else(|e| {
            panic!(
                "seed {seed}: parallel chase ({} threads) failed: {e}",
                workers.threads()
            )
        });
    assert_eq!(
        result.stats(),
        baseline.stats(),
        "seed {seed}: chase stats diverge at {} threads",
        workers.threads()
    );
    assert_eq!(
        sc.pool.num_nulls(),
        base_pool.num_nulls(),
        "seed {seed}: labeled-null allocation diverges at {} threads",
        workers.threads()
    );
    let dump = dump_instance(sc.mapping.target(), &result.target, &sc.pool);
    assert_eq!(
        dump,
        base_dump,
        "seed {seed}: target instance diverges at {} threads",
        workers.threads()
    );
}

fn assert_parallel_forest_matches(seed: u64, workers: &Pool) {
    let mut sc = random_scenario(seed);
    let result = chase(&sc.mapping, &sc.source, &mut sc.pool, ChaseOptions::fresh())
        .unwrap_or_else(|e| panic!("seed {seed}: chase failed: {e}"));
    let selected: Vec<TupleId> = result.target.all_rows().collect();
    if selected.is_empty() {
        return;
    }
    let env = RouteEnv::new(&sc.mapping, &sc.source, &result.target);
    let baseline = dump_forest(&compute_all_routes(env, &selected), &sc.pool);
    let parallel = dump_forest(
        &compute_all_routes_with_pool(env, &selected, workers),
        &sc.pool,
    );
    assert_eq!(
        parallel,
        baseline,
        "seed {seed}: route forest diverges at {} threads",
        workers.threads()
    );
}

#[test]
fn parallel_chase_is_deterministic_across_pool_sizes() {
    for seed in SEEDS {
        for threads in POOL_SIZES {
            let workers = Pool::new(threads);
            assert_parallel_chase_matches(seed, ChaseOptions::fresh(), &workers);
            assert_parallel_chase_matches(seed, ChaseOptions::skolem(), &workers);
        }
    }
}

#[test]
fn parallel_forest_is_deterministic_across_pool_sizes() {
    for seed in SEEDS {
        for threads in POOL_SIZES {
            assert_parallel_forest_matches(seed, &Pool::new(threads));
        }
    }
}

/// `ROUTES_THREADS` drives `Pool::from_env`; the results must be identical
/// at every override, same as with explicitly sized pools.
#[test]
fn routes_threads_env_override_is_deterministic() {
    for threads in POOL_SIZES {
        std::env::set_var(routes_pool::THREADS_ENV, threads.to_string());
        let workers = Pool::from_env();
        assert_eq!(
            workers.threads(),
            threads,
            "ROUTES_THREADS={threads} must size the pool"
        );
        for seed in &SEEDS[..3] {
            assert_parallel_chase_matches(*seed, ChaseOptions::fresh(), &workers);
            assert_parallel_forest_matches(*seed, &workers);
        }
    }
    std::env::remove_var(routes_pool::THREADS_ENV);
}

/// The random scenarios actually exercise the parallel paths: at least one
/// seed must produce a multi-tuple target (so candidate partitioning has
/// something to split) — guards against the generator degenerating.
#[test]
fn seeds_are_not_degenerate() {
    let mut total = 0usize;
    for seed in SEEDS {
        let mut sc = random_scenario(seed);
        let result = chase(&sc.mapping, &sc.source, &mut sc.pool, ChaseOptions::fresh())
            .unwrap_or_else(|e| panic!("seed {seed}: chase failed: {e}"));
        total += result.target.total_tuples();
    }
    assert!(total >= 10, "seeds produce only {total} target tuples");
}
