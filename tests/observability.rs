//! End-to-end observability tests over real sockets: trace-ID
//! propagation (supplied and minted), the `/trace` span dump with its
//! child-durations-sum-≤-request invariant, the slow-request warning
//! log, and oldest-first ring eviction.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use routes_server::json::parse;
use routes_server::{Json, Server, ServerConfig};
use routes_store::testutil::TempDir;

fn scenario_body(tag: i64) -> String {
    let text = format!(
        "source schema:\n  S(a, b)\ntarget schema:\n  T(a, b)\n\
         dependencies:\n  m: S(x, y) -> T(x, y)\nsource data:\n  S({tag}, {})\n",
        tag + 1
    );
    format!("{{\"scenario\": {}}}", Json::from(text).encode())
}

/// One raw HTTP/1.1 exchange; returns status, lower-cased headers, body.
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes()).unwrap();
    writer.write_all(body.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut response_headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').unwrap();
        response_headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, response_headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _, _) = raw_request(addr, "POST", "/shutdown", &[], None);
    assert_eq!(status, 200);
    handle.join().expect("server exits");
}

#[test]
fn trace_ids_are_echoed_minted_and_unique_across_concurrent_clients() {
    let (addr, handle) = start(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });

    // Concurrent clients: half supply their own IDs (echoed verbatim on
    // success AND error responses, and inside error bodies), half rely on
    // minted IDs (16 lowercase hex chars, globally unique).
    let minted = Arc::new(Mutex::new(Vec::new()));
    let mut clients = Vec::new();
    for c in 0..4 {
        let minted = Arc::clone(&minted);
        clients.push(std::thread::spawn(move || {
            for i in 0..8 {
                if c % 2 == 0 {
                    let supplied = format!("client-{c}-req-{i}");
                    let (status, headers, _) =
                        raw_request(addr, "GET", "/healthz", &[("X-Trace-Id", &supplied)], None);
                    assert_eq!(status, 200);
                    assert_eq!(header(&headers, "x-trace-id"), Some(supplied.as_str()));

                    // Error responses carry the ID too — header and body.
                    let (status, headers, body) = raw_request(
                        addr,
                        "GET",
                        "/sessions/999999",
                        &[("X-Trace-Id", &supplied)],
                        None,
                    );
                    assert_eq!(status, 404);
                    assert_eq!(header(&headers, "x-trace-id"), Some(supplied.as_str()));
                    let body = parse(&body).unwrap();
                    assert_eq!(
                        body.get("trace_id").and_then(|v| v.as_str()),
                        Some(supplied.as_str()),
                        "error body must embed the trace id"
                    );
                } else {
                    let (status, headers, _) = raw_request(addr, "GET", "/healthz", &[], None);
                    assert_eq!(status, 200);
                    let id = header(&headers, "x-trace-id")
                        .expect("minted id")
                        .to_owned();
                    assert_eq!(id.len(), 16, "minted ids are 16 hex chars: {id:?}");
                    assert!(
                        id.bytes()
                            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()),
                        "minted ids are lowercase hex: {id:?}"
                    );
                    minted.lock().unwrap().push(id);
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let mut ids = minted.lock().unwrap().clone();
    let total = ids.len();
    assert_eq!(total, 16);
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), total, "minted trace ids must be unique");

    // /healthz contract: well-formed body, no store involvement needed.
    let (status, _, body) = raw_request(addr, "GET", "/healthz", &[], None);
    assert_eq!(status, 200);
    let body = parse(&body).unwrap();
    assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
    assert!(body.get("version").and_then(|v| v.as_str()).is_some());
    assert!(body
        .get("uptime_seconds")
        .and_then(|v| v.as_u64())
        .is_some());

    shutdown(addr, handle);
}

#[test]
fn trace_dump_shows_child_spans_whose_durations_sum_within_the_request() {
    let tmp = TempDir::new("obs-trace-dump");
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        data_dir: Some(tmp.path().to_path_buf()),
        tracing: true,
        trace_capacity: 256,
        ..ServerConfig::default()
    });

    let trace_id = "trace-dump-create";
    let (status, headers, _) = raw_request(
        addr,
        "POST",
        "/sessions",
        &[("X-Trace-Id", trace_id)],
        Some(&scenario_body(7)),
    );
    assert_eq!(status, 201);
    assert_eq!(header(&headers, "x-trace-id"), Some(trace_id));

    let (status, _, body) = raw_request(
        addr,
        "GET",
        &format!("/trace?trace_id={trace_id}"),
        &[],
        None,
    );
    assert_eq!(status, 200);
    let dump = parse(&body).unwrap();
    assert_eq!(dump.get("enabled"), Some(&Json::Bool(true)));
    assert_eq!(dump.get("capacity").and_then(|v| v.as_u64()), Some(256));
    let spans = dump.get("spans").unwrap().as_array().unwrap();
    assert!(
        spans
            .iter()
            .all(|s| s.get("trace_id").and_then(|v| v.as_str()) == Some(trace_id)),
        "trace_id filter must drop other traces"
    );

    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for expected in [
        "request",
        "chase",
        "session_lock_write",
        "wal_append",
        "wal_fsync",
    ] {
        assert!(
            names.contains(&expected),
            "expected a {expected:?} span for a durable create, got {names:?}"
        );
    }

    // Instrumented seams are disjoint sub-intervals of the request, so
    // their durations must sum to no more than the request span's.
    let dur_of = |pred: &dyn Fn(&str) -> bool| -> u64 {
        spans
            .iter()
            .filter(|s| pred(s.get("name").unwrap().as_str().unwrap()))
            .map(|s| s.get("dur_us").unwrap().as_u64().unwrap())
            .sum()
    };
    let request_us = dur_of(&|n| n == "request");
    let child_us = dur_of(&|n| n != "request");
    assert!(
        child_us <= request_us,
        "child spans ({child_us}µs) exceed the request span ({request_us}µs): {spans:?}"
    );

    // A malformed filter (over-long id) is rejected, not truncated.
    let long = "x".repeat(200);
    let (status, _, _) = raw_request(addr, "GET", &format!("/trace?trace_id={long}"), &[], None);
    assert_eq!(status, 400);

    shutdown(addr, handle);
}

/// A `Write` sink that appends into a shared buffer, letting the test
/// capture structured log output produced by server worker threads.
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_request_warning_fires_above_the_threshold() {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    routes_obs::set_sink(Some(Box::new(Capture(Arc::clone(&buffer)))));

    // Threshold zero: every request is "slow". The warning must carry the
    // request's trace id so the log line joins against `/trace`.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        slow_request: Some(Duration::ZERO),
        ..ServerConfig::default()
    });
    let trace_id = "slow-req-probe";
    let (status, _, _) = raw_request(addr, "GET", "/healthz", &[("X-Trace-Id", trace_id)], None);
    assert_eq!(status, 200);
    shutdown(addr, handle);
    routes_obs::set_sink(None);

    let captured = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
    let warning = captured
        .lines()
        .map(|line| parse(line).unwrap_or_else(|e| panic!("unparseable log {line:?}: {e:?}")))
        .find(|record| {
            record.get("event").and_then(|v| v.as_str()) == Some("slow_request")
                && record.get("trace_id").and_then(|v| v.as_str()) == Some(trace_id)
        })
        .unwrap_or_else(|| panic!("no slow_request warning for {trace_id:?} in:\n{captured}"));
    assert_eq!(warning.get("level").and_then(|v| v.as_str()), Some("warn"));
    assert_eq!(
        warning.get("path").and_then(|v| v.as_str()),
        Some("/healthz")
    );
    assert_eq!(warning.get("status").and_then(|v| v.as_u64()), Some(200));
    assert!(warning.get("elapsed_us").and_then(|v| v.as_u64()).is_some());
}

#[test]
fn span_ring_evicts_oldest_first_at_capacity() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        tracing: true,
        trace_capacity: 8,
        ..ServerConfig::default()
    });

    // 20 requests with distinct supplied ids against a ring of 8: only the
    // last 8 request spans survive, oldest first. A single worker thread
    // plus sequential requests pins the arrival order.
    let ids: Vec<String> = (0..20).map(|i| format!("ring-{i:02}")).collect();
    for id in &ids {
        let (status, _, _) = raw_request(addr, "GET", "/healthz", &[("X-Trace-Id", id)], None);
        assert_eq!(status, 200);
    }
    let (status, _, body) = raw_request(addr, "GET", "/trace", &[], None);
    assert_eq!(status, 200);
    let dump = parse(&body).unwrap();
    assert_eq!(dump.get("capacity").and_then(|v| v.as_u64()), Some(8));
    let survivors: Vec<String> = dump
        .get("spans")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("trace_id").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert_eq!(
        survivors,
        ids[12..].to_vec(),
        "ring must keep exactly the newest 8 spans, oldest first"
    );

    shutdown(addr, handle);
}
