//! Differential gate for the `routes-pipeline` subsystem (tier-1 for this
//! PR).
//!
//! Three contracts over seeded pipeline campaigns
//! ([`routes_gen::pipeline_scenario`]):
//!
//! (a) **Thread-count determinism.** Stage-by-stage chase followed by route
//!     stitching is byte-identical at worker pool sizes 1, 2, and 8 — the
//!     pipeline inherits the exactness contract of `chase_with_pool`, and
//!     stitching itself is sequential.
//! (b) **Core-mode route validity.** With core mode on, every tuple of the
//!     minimized final instance yields a stitched route whose
//!     `Route::validate` replay succeeds hop by hop against the
//!     intermediate instances.
//! (c) **Core soundness and completeness for surviving tuples.** On a
//!     redundancy-heavy scenario, core mode strictly shrinks the chased
//!     instances, and for every surviving tuple the all-routes forest of
//!     the minimized session is exactly the unminimized session's forest
//!     restricted to branches whose facts all survive minimization — every
//!     route survivable on the core is still produced, and nothing new is
//!     invented.

use std::collections::{BTreeMap, HashSet, VecDeque};

use routes_chase::ChaseOptions;
use routes_core::{compute_all_routes, RouteEnv, RouteForest};
use routes_gen::pipeline_scenario;
use routes_model::{Instance, Schema, Side, TupleId, ValuePool};
use routes_pipeline::{
    chase_pipeline, core_minimize, frozen_nulls, stitch_route, PreparedPipeline,
};
use routes_pool::Pool;

const POOL_SIZES: [usize; 3] = [1, 2, 8];

fn prepare(
    hops: usize,
    rows: usize,
    seed: u64,
    redundancy: bool,
    core: bool,
    threads: usize,
) -> PreparedPipeline {
    let sc = pipeline_scenario(hops, rows, seed, redundancy, core);
    let workers = if threads == 1 {
        Pool::sequential()
    } else {
        Pool::new(threads)
    };
    chase_pipeline(
        sc.pipeline,
        sc.source,
        sc.pool,
        ChaseOptions::fresh(),
        &workers,
    )
    .expect("generated pipelines chase")
}

/// Canonical, index-free rendering of an instance (relation name + printed
/// values per row, in schema/row order).
fn dump_instance(schema: &Schema, inst: &Instance, pool: &ValuePool) -> String {
    let mut out = String::new();
    for (rel, relation) in schema.iter() {
        for (t, row) in inst.rel_tuples(rel) {
            out.push_str(relation.name());
            out.push_str(&format!("[{}](", t.row));
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&pool.value_to_string(*v));
            }
            out.push_str(")\n");
        }
    }
    out
}

/// Canonical rendering of a whole prepared pipeline: every hop's source and
/// target instances plus the chase/core statistics.
fn dump_pipeline(p: &PreparedPipeline) -> String {
    let mut out = String::new();
    for (k, stage) in p.stages.iter().enumerate() {
        let mapping = &p.pipeline.stages()[k].mapping;
        // Render the deterministic stats fields only: per-tgd wall times are
        // measurements and legitimately differ between runs.
        let per_tgd: Vec<String> = stage
            .stats
            .per_tgd
            .iter()
            .map(|t| format!("{}:{}m/{}f", t.name, t.matches, t.fired))
            .collect();
        out.push_str(&format!(
            "== stage {k} {} before_core={} removed={} rounds={} created={} \
             rewrites={} merges={} target={} per_tgd=[{}]\n",
            stage.name,
            stage.tuples_before_core,
            stage.core_removed,
            stage.stats.rounds,
            stage.stats.tuples_created,
            stage.stats.egd_rewrites,
            stage.stats.egd_merges,
            stage.stats.target_tuples,
            per_tgd.join(" ")
        ));
        out.push_str(&dump_instance(mapping.source(), &stage.source, &p.pool));
        out.push_str("--\n");
        out.push_str(&dump_instance(mapping.target(), &stage.target, &p.pool));
    }
    out
}

/// Canonical rendering of a stitched route (stage names, selections, and
/// the full step structure — tgds, homs, lhs facts, rhs tuples).
fn dump_stitched(p: &PreparedPipeline, selection: &[TupleId]) -> String {
    let stitched = stitch_route(p, selection).expect("selection has a route");
    stitched.validate(p).expect("stitched routes replay");
    let mut out = String::new();
    for stage in &stitched.stages {
        out.push_str(&format!(
            "hop {} {} selection={:?} route={:?}\n",
            stage.stage, stage.name, stage.selection, stage.route
        ));
    }
    out
}

// ---------------------------------------------------------------- gate (a)

#[test]
fn stitched_pipelines_are_byte_identical_at_every_thread_count() {
    for (hops, rows, seed, redundancy, core) in [
        (2, 10, 11, false, false),
        (3, 8, 23, true, false),
        (3, 8, 23, true, true),
        (4, 6, 42, true, true),
    ] {
        let baseline = prepare(hops, rows, seed, redundancy, core, 1);
        let base_dump = dump_pipeline(&baseline);
        let final_tuples: Vec<TupleId> = baseline.final_stage().target.all_rows().collect();
        assert!(!final_tuples.is_empty());
        let base_routes: Vec<String> = final_tuples
            .iter()
            .map(|&t| dump_stitched(&baseline, &[t]))
            .collect();
        for threads in POOL_SIZES {
            let other = prepare(hops, rows, seed, redundancy, core, threads);
            assert_eq!(
                base_dump,
                dump_pipeline(&other),
                "hops={hops} seed={seed} threads={threads}: chased chain must be byte-identical"
            );
            for (i, &t) in final_tuples.iter().enumerate() {
                assert_eq!(
                    base_routes[i],
                    dump_stitched(&other, &[t]),
                    "hops={hops} seed={seed} threads={threads}: stitched route for {t:?} drifted"
                );
                // Route equality is also structural (`Route: PartialEq` on
                // steps), not just textual.
                let a = stitch_route(&baseline, &[t]).unwrap();
                let b = stitch_route(&other, &[t]).unwrap();
                for (sa, sb) in a.stages.iter().zip(&b.stages) {
                    assert_eq!(sa.route, sb.route);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- gate (b)

#[test]
fn core_mode_final_tuples_all_have_replayable_stitched_routes() {
    for (hops, rows, seed) in [(2, 12, 7), (3, 9, 13), (4, 5, 99)] {
        let prepared = prepare(hops, rows, seed, true, true, 2);
        let (before, after) = prepared.core_shrink();
        assert!(after < before, "seed {seed}: redundancy must shrink");
        let final_tuples: Vec<TupleId> = prepared.final_stage().target.all_rows().collect();
        assert!(!final_tuples.is_empty());
        for &t in &final_tuples {
            let stitched = stitch_route(&prepared, &[t])
                .unwrap_or_else(|e| panic!("seed {seed}: no route for {t:?}: {e}"));
            assert_eq!(stitched.stages.len(), hops);
            stitched
                .validate(&prepared)
                .unwrap_or_else(|e| panic!("seed {seed}: replay failed for {t:?}: {e}"));
        }
        // The whole final instance at once stitches too.
        let stitched = stitch_route(&prepared, &final_tuples).unwrap();
        stitched.validate(&prepared).unwrap();
    }
}

// ---------------------------------------------------------------- gate (c)

/// Render one branch canonically: tgd, hom values, lhs facts and rhs tuples
/// by *value* (row indices differ between the minimized and unminimized
/// sessions; values survive verbatim, so value strings are a faithful
/// cross-session identity for set-semantics instances).
fn branch_str(env: &RouteEnv<'_>, pool: &ValuePool, b: &routes_core::Branch) -> String {
    let tuple_str = |side: Side, id: TupleId| -> String {
        let (schema, inst) = match side {
            Side::Source => (env.mapping.source(), env.source),
            Side::Target => (env.mapping.target(), env.target),
        };
        let vals: Vec<String> = inst
            .tuple(id)
            .iter()
            .map(|v| pool.value_to_string(*v))
            .collect();
        format!(
            "{}:{}({})",
            if side == Side::Source { "src" } else { "tgt" },
            schema.relation(id.rel).name(),
            vals.join(", ")
        )
    };
    let hom: Vec<String> = b.hom.iter().map(|v| pool.value_to_string(*v)).collect();
    let lhs: Vec<String> = b
        .lhs_facts
        .iter()
        .map(|f| tuple_str(f.side, f.id))
        .collect();
    let rhs: Vec<String> = b
        .rhs_tuples
        .iter()
        .map(|&t| tuple_str(Side::Target, t))
        .collect();
    format!(
        "{:?} hom=[{}] lhs=[{}] rhs=[{}]",
        b.tgd,
        hom.join(","),
        lhs.join(" "),
        rhs.join(" ")
    )
}

/// Canonicalize a forest restricted to *surviving* branches: starting from
/// the roots, walk only branches whose target-side facts (children and
/// produced tuples) all survive, and render each reachable node's surviving
/// branch set sorted, keyed by the node's value rendering.
fn canonical_surviving_forest(
    env: &RouteEnv<'_>,
    pool: &ValuePool,
    forest: &RouteForest,
    survives: &dyn Fn(TupleId) -> bool,
) -> String {
    let node_str = |id: TupleId| -> String {
        let vals: Vec<String> = env
            .target
            .tuple(id)
            .iter()
            .map(|v| pool.value_to_string(*v))
            .collect();
        format!(
            "{}({})",
            env.mapping.target().relation(id.rel).name(),
            vals.join(", ")
        )
    };
    let branch_survives = |b: &routes_core::Branch| -> bool {
        b.rhs_tuples.iter().all(|&t| survives(t))
            && b.lhs_facts
                .iter()
                .all(|f| f.side == Side::Source || survives(f.id))
    };
    let mut nodes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut seen: HashSet<TupleId> = HashSet::new();
    let mut queue: VecDeque<TupleId> = forest.roots.iter().copied().collect();
    while let Some(t) = queue.pop_front() {
        if !survives(t) || !seen.insert(t) {
            continue;
        }
        let mut branches: Vec<String> = Vec::new();
        for b in forest.branches_of(t) {
            if !branch_survives(b) {
                continue;
            }
            branches.push(branch_str(env, pool, b));
            for child in b.target_children() {
                queue.push_back(child);
            }
        }
        branches.sort();
        nodes.insert(node_str(t), branches);
    }
    let mut out = String::new();
    let mut roots: Vec<String> = forest
        .roots
        .iter()
        .filter(|&&t| survives(t))
        .map(|&t| node_str(t))
        .collect();
    roots.sort();
    out.push_str(&format!("roots: {roots:?}\n"));
    for (node, branches) in nodes {
        out.push_str(&format!("node {node}\n"));
        for b in branches {
            out.push_str(&format!("  {b}\n"));
        }
    }
    out
}

#[test]
fn core_forests_equal_the_surviving_slice_of_full_forests() {
    for seed in [3, 17, 51] {
        // Single hop, so the two sessions share one identical chase run
        // (same nulls, same row numbering pre-removal) and "surviving" is
        // exact, not value-approximate.
        let full = prepare(1, 14, seed, true, false, 1);
        let cored = prepare(1, 14, seed, true, true, 1);
        let (fb, fa) = full.core_shrink();
        assert_eq!(fb, fa, "core off: nothing removed");
        let (cb, ca) = cored.core_shrink();
        assert!(
            ca < cb,
            "seed {seed}: core must strictly shrink ({cb} -> {ca})"
        );

        // The pipeline's internal core pass agrees with a direct
        // `core_minimize` of the unminimized chase output.
        let full_stage = full.final_stage();
        let cored_stage = cored.final_stage();
        let mapping = &full.pipeline.stages()[0].mapping;
        let outcome = core_minimize(
            mapping.target(),
            &full_stage.target,
            &frozen_nulls(&full_stage.source),
        );
        assert_eq!(outcome.removed, cored_stage.core_removed);
        assert_eq!(
            dump_instance(mapping.target(), &outcome.instance, &full.pool),
            dump_instance(mapping.target(), &cored_stage.target, &cored.pool),
            "seed {seed}: chase_pipeline's core must equal a direct core_minimize"
        );

        let survivors: HashSet<TupleId> = outcome.kept.iter().copied().collect();
        let full_env = full.stage_env(0);
        let core_env = cored.stage_env(0);
        for &old in &outcome.kept {
            let new = outcome.remap[&old];
            let full_forest = compute_all_routes(full_env, &[old]);
            let core_forest = compute_all_routes(core_env, &[new]);
            let full_slice =
                canonical_surviving_forest(&full_env, &full.pool, &full_forest, &|t| {
                    survivors.contains(&t)
                });
            let core_all =
                canonical_surviving_forest(&core_env, &cored.pool, &core_forest, &|_| true);
            assert_eq!(
                full_slice, core_all,
                "seed {seed} tuple {old:?}: the core session's all-routes output must be \
                 exactly the unminimized session's forest restricted to surviving facts"
            );
        }
    }
}
