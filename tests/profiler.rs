//! Determinism of the chase under the sampling self-profiler (tier-1
//! extension of `parallel_determinism`).
//!
//! The profiler's deterministic-overhead discipline: with the sampler off
//! the engine takes zero extra clock reads, and with it on the only
//! effects are thread-local frame pushes and a ticker thread reading
//! them — nothing feeds back into the chase. These tests pin that: a
//! parallel chase run under a live sampler must produce a byte-identical
//! target instance and identical stats (including the per-tgd
//! attribution counters) to the same chase with the profiler idle, at
//! every worker count.

use routes_chase::{chase_with_pool, ChaseOptions, ChaseResult};
use routes_gen::random_scenario;
use routes_model::{Instance, Schema, ValuePool};
use routes_pool::Pool;

const SEEDS: [u64; 3] = [7, 11, 42];
const POOL_SIZES: [usize; 2] = [2, 8];

/// Canonical rendering of a target instance (see `parallel_determinism`).
fn dump_instance(schema: &Schema, inst: &Instance, values: &ValuePool) -> String {
    let mut out = String::new();
    for (rel, relation) in schema.iter() {
        for (t, row) in inst.rel_tuples(rel) {
            out.push_str(relation.name());
            out.push_str(&format!("[{}](", t.row));
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&values.value_to_string(*v));
            }
            out.push_str(")\n");
        }
    }
    out
}

fn chase_once(seed: u64, workers: &Pool) -> (ChaseResult, String) {
    let mut sc = random_scenario(seed);
    let result = chase_with_pool(
        &sc.mapping,
        &sc.source,
        &mut sc.pool,
        ChaseOptions::fresh(),
        workers,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: chase failed: {e}"));
    let dump = dump_instance(sc.mapping.target(), &result.target, &sc.pool);
    (result, dump)
}

#[test]
fn chase_is_byte_identical_with_the_sampler_on_and_off() {
    for threads in POOL_SIZES {
        for seed in SEEDS {
            let workers = Pool::new(threads);
            let (off_result, off_dump) = chase_once(seed, &workers);

            // A live ticker at a frequency high enough to land samples
            // during the chase; stopping disables the hooks again.
            let sampler = routes_obs::start_sampler(500).expect("sampler starts");
            let (on_result, on_dump) = chase_once(seed, &workers);
            sampler.stop();

            assert_eq!(
                on_result.stats(),
                off_result.stats(),
                "seed {seed}: sampler changed chase stats at {threads} threads"
            );
            assert_eq!(
                on_result.stats().per_tgd,
                off_result.stats().per_tgd,
                "seed {seed}: sampler changed per-tgd attribution at {threads} threads"
            );
            assert_eq!(
                on_dump, off_dump,
                "seed {seed}: sampler changed the target instance at {threads} threads"
            );
        }
    }
    routes_obs::reset_samples();
}

/// The attribution counters themselves are part of the determinism
/// contract: sequential and parallel runs agree tgd by tgd.
#[test]
fn per_tgd_attribution_is_identical_across_worker_counts() {
    for seed in SEEDS {
        let (baseline, _) = chase_once(seed, &Pool::new(1));
        for threads in POOL_SIZES {
            let (result, _) = chase_once(seed, &Pool::new(threads));
            assert_eq!(
                result.stats().per_tgd,
                baseline.stats().per_tgd,
                "seed {seed}: per-tgd rows diverge at {threads} threads"
            );
        }
    }
}
