//! HTTP saturation and abuse battery for `spiderd`'s admission control:
//! a slow-loris trickler is reaped by the wall-clock deadline while
//! concurrent normal clients are served; a burst far beyond queue
//! capacity sheds deterministically with `429` + `Retry-After` and the
//! 200/429 split reconciles exactly against `/metrics` admission
//! counters; and graceful drain completes in-flight requests, closes
//! idle keep-alives cleanly, and refuses post-drain connects.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use routes_server::json::{parse, Json};
use routes_server::{Server, ServerConfig};

/// One parsed raw response, for byte-exact framing assertions.
struct RawResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }
}

/// Split one complete HTTP/1.1 response off the front of `bytes`;
/// `None` while the head or the `content-length` body is still partial.
fn try_split_response(bytes: &[u8]) -> Option<(RawResponse, usize)> {
    let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&bytes[..head_end]).expect("UTF-8 response head");
    let mut lines = head.trim_end().split("\r\n");
    let status_line = lines.next().unwrap();
    assert!(
        status_line.starts_with("HTTP/1.1 "),
        "bad status line {status_line:?}"
    );
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = Vec::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .unwrap_or_else(|| panic!("header line without colon: {line:?}"));
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .expect("content-length always present");
    let total = head_end + len;
    if bytes.len() < total {
        return None;
    }
    Some((
        RawResponse {
            status,
            headers,
            body: bytes[head_end..total].to_vec(),
        },
        total,
    ))
}

/// Read from `stream` until one complete response is buffered.
fn read_one_response(stream: &mut TcpStream) -> RawResponse {
    let mut buf = Vec::new();
    loop {
        if let Some((response, _)) = try_split_response(&buf) {
            return response;
        }
        let mut chunk = [0u8; 1024];
        let n = stream
            .read(&mut chunk)
            .expect("read while awaiting response");
        assert!(n > 0, "EOF before a complete response (got {buf:?})");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One connection-close exchange; panics on anything but a clean reply.
fn roundtrip(addr: SocketAddr, method: &str, path: &str) -> RawResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
                 content-length: 0\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut all = Vec::new();
    stream.read_to_end(&mut all).unwrap();
    let (response, consumed) = try_split_response(&all).expect("complete response");
    assert_eq!(consumed, all.len(), "exactly one response then EOF");
    response
}

fn admission_counter(metrics: &Json, field: &str) -> u64 {
    metrics
        .get("admission")
        .unwrap_or_else(|| panic!("metrics missing admission block"))
        .get(field)
        .unwrap_or_else(|| panic!("admission block missing `{field}`"))
        .as_u64()
        .unwrap_or_else(|| panic!("admission.{field} is not an integer"))
}

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let response = roundtrip(addr, "POST", "/shutdown");
    assert_eq!(response.status, 200);
    handle.join().expect("server exits");
}

/// A slow-loris peer that keeps making per-read progress is reaped by
/// the wall-clock deadline with a `408` — while a concurrent well-behaved
/// client keeps getting `200`s the whole time.
#[test]
fn slow_loris_is_reaped_while_normal_clients_are_served() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        // Per-read timeout far beyond the deadline: only the wall clock
        // can reap the trickler, never silent-peer detection.
        read_timeout: Duration::from_secs(30),
        request_deadline: Some(Duration::from_millis(700)),
        ..ServerConfig::default()
    });

    let trickler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let started = Instant::now();
        // One byte every 100 ms: each write resets the per-read timer,
        // so the pre-deadline server would host this peer forever.
        // Stop dripping before the 700 ms deadline so the reap's FIN is
        // never raced by a late write (which would turn it into a RST).
        for byte in b"GET /" {
            stream.write_all(&[*byte]).expect("trickle");
            std::thread::sleep(Duration::from_millis(100));
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut all = Vec::new();
        stream
            .read_to_end(&mut all)
            .expect("read the reap response");
        (started.elapsed(), all)
    });

    // While the trickler occupies one worker, the other keeps serving.
    for _ in 0..10 {
        let response = roundtrip(addr, "GET", "/healthz");
        assert_eq!(response.status, 200);
        std::thread::sleep(Duration::from_millis(50));
    }

    let (elapsed, all) = trickler.join().expect("trickler thread");
    let (response, consumed) = try_split_response(&all).expect("complete 408");
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    assert_eq!(consumed, all.len(), "exactly one 408 then EOF");
    assert!(
        elapsed >= Duration::from_millis(600) && elapsed < Duration::from_secs(10),
        "reaped by the deadline, not per-read timeout or never: {elapsed:?}"
    );

    let metrics = roundtrip(addr, "GET", "/metrics").json();
    assert!(admission_counter(&metrics, "timeouts") >= 1);
    assert!(admission_counter(&metrics, "reaped") >= 1);
    assert_eq!(admission_counter(&metrics, "shed"), 0);
    shutdown(addr, handle);
}

/// Saturate a one-worker, one-slot server with a burst far beyond
/// capacity: every burst connection is answered — exactly `429` with an
/// integer `Retry-After` — and the final 200/408/429 split reconciles
/// *exactly* with the `/metrics` admission counters.
#[test]
fn burst_beyond_capacity_sheds_429_and_counters_reconcile_exactly() {
    const BURST: u64 = 16;
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        max_queue: 1,
        request_deadline: Some(Duration::from_secs(3)),
        ..ServerConfig::default()
    });

    // Pin the single worker with a request stalled mid-headers...
    let mut pin = TcpStream::connect(addr).expect("connect");
    pin.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // ...and fill the one-slot queue with a parked complete request.
    let mut parked = TcpStream::connect(addr).expect("connect");
    parked
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    parked
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The burst: every connection beyond capacity is shed at the door.
    for i in 0..BURST {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(15)))
            .unwrap();
        let response = read_one_response(&mut stream);
        assert_eq!(response.status, 429, "burst connection {i}");
        assert_eq!(response.header("connection"), Some("close"));
        let retry: u64 = response
            .header("retry-after")
            .unwrap_or_else(|| panic!("burst connection {i} missing Retry-After"))
            .parse()
            .expect("integer Retry-After");
        assert!(retry >= 1, "Retry-After must be at least one second");
    }

    // The pinned trickler is reaped at the 3 s deadline; the parked
    // client is then served normally.
    let mut all = Vec::new();
    pin.read_to_end(&mut all).unwrap();
    let (response, _) = try_split_response(&all).expect("complete 408");
    assert_eq!(response.status, 408);
    let mut all = Vec::new();
    parked.read_to_end(&mut all).unwrap();
    let (response, _) = try_split_response(&all).expect("complete 200");
    assert_eq!(response.status, 200);

    // Exact reconciliation. Admitted: the pinned conn, the parked conn,
    // and the /metrics conn itself (admitted before handling; its own
    // request is recorded only after the snapshot renders). Responses:
    // 16 shed 429s + one 408 + one 200.
    let metrics = roundtrip(addr, "GET", "/metrics").json();
    assert_eq!(admission_counter(&metrics, "queue_capacity"), 1);
    assert_eq!(admission_counter(&metrics, "queue_depth"), 0);
    assert_eq!(admission_counter(&metrics, "admitted"), 3);
    assert_eq!(admission_counter(&metrics, "shed"), BURST);
    assert_eq!(admission_counter(&metrics, "timeouts"), 1);
    assert_eq!(admission_counter(&metrics, "reaped"), 1);
    let counter = |field: &str| metrics.get(field).unwrap().as_u64().unwrap();
    assert_eq!(counter("requests_total"), BURST + 2);
    assert_eq!(counter("responses_2xx"), 1);
    assert_eq!(counter("responses_4xx"), BURST + 1);
    assert_eq!(counter("responses_5xx"), 0);
    shutdown(addr, handle);
}

/// Graceful drain: `POST /shutdown` lets the in-flight request finish
/// with a well-formed response, closes idle keep-alives with a clean
/// EOF (no RST, no partial bytes), and then refuses new connections.
#[test]
fn graceful_drain_finishes_in_flight_closes_idle_and_refuses_new() {
    // Three workers: one pinned mid-body, one holding an idle
    // keep-alive, one free to serve /shutdown.
    let (addr, handle) = start(ServerConfig {
        threads: 3,
        ..ServerConfig::default()
    });

    // B: a keep-alive client that completes one request, then idles.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    idle.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let response = read_one_response(&mut idle);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("keep-alive"));

    // A: in-flight — headers complete, body stalled at 2 of 5 bytes.
    let mut inflight = TcpStream::connect(addr).expect("connect");
    inflight
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    inflight
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 5\r\n\r\nab")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // C: drain. The response to /shutdown itself must be well-formed.
    let response = roundtrip(addr, "POST", "/shutdown");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.json().get("shutting_down").unwrap().as_bool(),
        Some(true)
    );

    // A finishes its body after the drain began: it still gets a
    // complete, well-formed 200, then EOF.
    inflight.write_all(b"cde").unwrap();
    let response = read_one_response(&mut inflight);
    assert_eq!(response.status, 200);
    let mut rest = Vec::new();
    inflight.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "no bytes after the final response: {rest:?}"
    );

    // B's idle keep-alive is closed with a clean EOF, not a reset.
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "idle keep-alive got bytes at drain: {rest:?}"
    );

    // Once drained, the listener is gone: new connections are refused.
    handle.join().expect("server exits");
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-drain connect must be refused"
    );
}
