//! Data-exchange semantics of the chase (paper §2 background): chase
//! results are solutions, Fresh-mode results are *universal* solutions
//! (they map homomorphically into every other solution), and egds behave
//! per the formal framework.

use mapping_routes::prelude::*;
use routes_chase::{chase, find_homomorphism};
use routes_gen::random_scenario;
use routes_mapping::satisfy::is_solution;

#[test]
fn fresh_chase_results_are_universal_across_chase_variants() {
    let mut checked = 0;
    for seed in 0..120 {
        let mut sc = random_scenario(seed);
        let guard = ChaseOptions {
            max_rounds: 200,
            max_tuples: 5_000,
            ..ChaseOptions::fresh()
        };
        let Ok(fresh) = chase(&sc.mapping, &sc.source, &mut sc.pool, guard) else {
            continue;
        };
        let skolem_opts = ChaseOptions {
            null_mode: NullMode::Skolem,
            max_rounds: 200,
            max_tuples: 5_000,
        };
        let Ok(skolem) = chase(&sc.mapping, &sc.source, &mut sc.pool, skolem_opts) else {
            continue;
        };
        assert!(
            is_solution(&sc.mapping, &sc.source, &fresh.target),
            "seed {seed}"
        );
        assert!(
            is_solution(&sc.mapping, &sc.source, &skolem.target),
            "seed {seed}"
        );
        // Universality: the Fresh result maps homomorphically into the
        // Skolem result (which is just another solution).
        if fresh.target.total_tuples() <= 12 {
            assert!(
                find_homomorphism(&fresh.target, &skolem.target).is_some(),
                "seed {seed}: fresh chase result must be universal"
            );
            checked += 1;
        }
    }
    assert!(checked > 30, "enough universality checks ran: {checked}");
}

#[test]
fn universal_solution_maps_into_a_padded_solution() {
    // Hand-built: J' = chase(J) plus extra facts is still a solution; the
    // chase result must map into it.
    let mut s = Schema::new();
    s.rel("S", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> exists Y: T(x,Y)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;

    let mut padded = Instance::new(&t);
    let tr = t.rel_id("T").unwrap();
    padded.insert_ok(tr, &[Value::Int(1), Value::Int(99)]);
    padded.insert_ok(tr, &[Value::Int(7), Value::Int(8)]);
    assert!(is_solution(&m, &i, &padded));
    let hom = find_homomorphism(&j, &padded).expect("universal solution maps into any solution");
    // The invented null must land on 99.
    let null = j.tuple(j.all_rows().next().unwrap())[1];
    let Value::Null(nid) = null else {
        panic!("chase invents a null")
    };
    assert_eq!(hom[&nid], Value::Int(99));
}

#[test]
fn egd_failure_means_no_solution() {
    // S(x,y) -> T(x,y) with key egd on T and conflicting source rows: the
    // chase must fail, and indeed no solution exists (any solution would
    // need both T(1,2) and T(1,3)).
    let mut s = Schema::new();
    s.rel("S", &["a", "b"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x,y) -> T(x,y)").unwrap())
        .unwrap();
    m.add_egd(parse_egd(&t, &mut pool, "k: T(x,y) & T(x,z) -> y = z").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    let sr = s.rel_id("S").unwrap();
    i.insert_ok(sr, &[Value::Int(1), Value::Int(2)]);
    i.insert_ok(sr, &[Value::Int(1), Value::Int(3)]);
    let err = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap_err();
    assert!(matches!(err, ChaseError::Failed { .. }));
}

#[test]
fn routes_work_on_solutions_not_produced_by_our_chase() {
    // Definition 3.3 allows ANY solution J. Build one by hand that is a
    // strict superset of the chase result plus an unjustifiable tuple.
    let mut s = Schema::new();
    s.rel("S", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a"]);
    t.rel("U", &["a"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m1: S(x) -> T(x)").unwrap())
        .unwrap();
    m.add_target_tgd(parse_target_tgd(&t, &mut pool, "m2: T(x) -> U(x)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(1)]);
    let mut j = Instance::new(&t);
    let tr = t.rel_id("T").unwrap();
    let ur = t.rel_id("U").unwrap();
    j.insert_ok(tr, &[Value::Int(1)]);
    j.insert_ok(ur, &[Value::Int(1)]);
    // Extra facts: justified (T(5) -> needs U(5)) and unjustifiable alone.
    j.insert_ok(tr, &[Value::Int(5)]);
    let u5 = j.insert_ok(ur, &[Value::Int(5)]);
    let orphan_t5 = j.find(tr, &[Value::Int(5)]).unwrap();
    assert!(is_solution(&m, &i, &j));

    let env = RouteEnv::new(&m, &i, &j);
    // u5's only witness chain needs T(5), which nothing witnesses: no route.
    let err = compute_one_route(env, &[u5]).unwrap_err();
    assert_eq!(err.no_route, vec![u5]);
    let err = compute_one_route(env, &[orphan_t5]).unwrap_err();
    assert_eq!(err.no_route, vec![orphan_t5]);
    // The justified part still works.
    let t1 = j.find(tr, &[Value::Int(1)]).unwrap();
    let u1 = j.find(ur, &[Value::Int(1)]).unwrap();
    let route = compute_one_route(env, &[u1, t1]).unwrap();
    route.validate(&env, &[u1, t1]).unwrap();
}

#[test]
fn skolem_chase_is_idempotent_at_instance_level() {
    for seed in [1u64, 5, 9, 33] {
        let mut sc = random_scenario(seed);
        let opts = ChaseOptions {
            max_rounds: 200,
            max_tuples: 5_000,
            null_mode: NullMode::Skolem,
        };
        let Ok(first) = chase(&sc.mapping, &sc.source, &mut sc.pool, opts) else {
            continue;
        };
        let Ok(second) = chase(&sc.mapping, &sc.source, &mut sc.pool, opts) else {
            continue;
        };
        // Same tuple counts (nulls differ in identity across runs, but the
        // shape is identical).
        assert_eq!(
            first.target.total_tuples(),
            second.target.total_tuples(),
            "seed {seed}"
        );
        assert!(
            find_homomorphism(&first.target, &second.target).is_some()
                || first.target.total_tuples() > 12,
            "seed {seed}: skolem runs are isomorphic"
        );
    }
}
