//! Property tests for the correspondence-based mapping generator: random
//! schemas + random correspondences + random fks must always yield
//! well-formed, weakly acyclic mappings whose chased solutions give every
//! tuple a route.
//!
//! Ported from `proptest` to a seeded deterministic loop over the in-repo
//! PRNG; the original case count (128) is preserved.

use mapping_routes::prelude::*;
use routes_chase::chase;
use routes_gen::Rng;
use routes_mapping::{generate_mapping, is_weakly_acyclic, Correspondence, ForeignKey};

#[derive(Debug, Clone)]
struct GenSpec {
    /// Arities of 2 source and 2 target relations (1..=3).
    source_arities: Vec<usize>,
    target_arities: Vec<usize>,
    /// Correspondences as (src rel, src col, dst rel, dst col) — reduced
    /// modulo the actual arities.
    corrs: Vec<(usize, usize, usize, usize)>,
    /// Whether to add a source fk (rel1.col0 → rel0.col0) and a target fk.
    source_fk: bool,
    target_fk: bool,
    /// Rows per source relation.
    rows: usize,
}

/// The proptest strategy, reified over the seeded PRNG.
fn random_spec(rng: &mut Rng) -> GenSpec {
    GenSpec {
        source_arities: (0..2).map(|_| rng.gen_range(1..=3usize)).collect(),
        target_arities: (0..2).map(|_| rng.gen_range(1..=3usize)).collect(),
        corrs: (0..rng.gen_range(1..6usize))
            .map(|_| {
                (
                    rng.gen_range(0..2usize),
                    rng.gen_range(0..3usize),
                    rng.gen_range(0..2usize),
                    rng.gen_range(0..3usize),
                )
            })
            .collect(),
        source_fk: rng.gen_bool(0.5),
        target_fk: rng.gen_bool(0.5),
        rows: rng.gen_range(1..6usize),
    }
}

#[test]
fn generated_mappings_are_sound_end_to_end() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x6E4 + case);
        let spec = random_spec(&mut rng);

        let mut s = Schema::new();
        let attr_names = ["a", "b", "c"];
        for (k, &arity) in spec.source_arities.iter().enumerate() {
            s.rel(&format!("S{k}"), &attr_names[..arity]);
        }
        let mut t = Schema::new();
        for (k, &arity) in spec.target_arities.iter().enumerate() {
            t.rel(&format!("T{k}"), &attr_names[..arity]);
        }
        let corrs: Vec<Correspondence> = spec
            .corrs
            .iter()
            .map(|&(sr, sc, tr, tc)| Correspondence {
                source: (RelId(sr as u32), (sc % spec.source_arities[sr]) as u32),
                target: (RelId(tr as u32), (tc % spec.target_arities[tr]) as u32),
            })
            .collect();
        let source_fks: Vec<ForeignKey> = spec
            .source_fk
            .then(|| ForeignKey {
                name: "sfk".into(),
                child: RelId(1),
                child_cols: vec![0],
                parent: RelId(0),
                parent_cols: vec![0],
            })
            .into_iter()
            .collect();
        let target_fks: Vec<ForeignKey> = spec
            .target_fk
            .then(|| ForeignKey {
                name: "tfk".into(),
                child: RelId(1),
                child_cols: vec![0],
                parent: RelId(0),
                parent_cols: vec![0],
            })
            .into_iter()
            .collect();

        let mapping = generate_mapping(&s, &t, &source_fks, &target_fks, &corrs)
            .expect("generation never produces malformed tgds");
        assert!(is_weakly_acyclic(&mapping), "case {case}");

        // Populate, chase, and route every tuple.
        let mut pool = ValuePool::new();
        let mut i = Instance::new(&s);
        for (k, &arity) in spec.source_arities.iter().enumerate() {
            for row in 0..spec.rows {
                let values: Vec<Value> = (0..arity)
                    .map(|c| Value::Int((row % 3) as i64 + c as i64))
                    .collect();
                i.insert_ok(RelId(k as u32), &values);
            }
        }
        let options = ChaseOptions {
            max_rounds: 200,
            max_tuples: 5_000,
            ..ChaseOptions::fresh()
        };
        let Ok(result) = chase(&mapping, &i, &mut pool, options) else {
            continue; // guard tripped on a pathological spec
        };
        assert!(
            routes_mapping::satisfy::is_solution(&mapping, &i, &result.target),
            "case {case}"
        );
        let env = RouteEnv::new(&mapping, &i, &result.target);
        for probe in result.target.all_rows().take(12) {
            let route = compute_one_route(env, &[probe]).expect("chased tuples always have routes");
            route.validate(&env, &[probe]).unwrap();
        }
    }
}
