//! End-to-end assertions for the paper's §2.1 debugging walkthrough over the
//! exact Figure 1/2 scenario (via the public API only).

use mapping_routes::prelude::*;
use routes_gen::fargo_scenario;

fn env(fargo: &routes_gen::FargoScenario) -> RouteEnv<'_> {
    RouteEnv::new(
        &fargo.scenario.mapping,
        &fargo.scenario.source,
        &fargo.solution,
    )
}

#[test]
fn scenario_1_route_for_t5_uses_m1_with_the_papers_assignment() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let t5 = fargo.t[4];
    let route = compute_one_route(env, &[t5]).expect("t5 has a route");
    assert_eq!(route.len(), 1);
    let step = &route.steps()[0];
    let tgd = env.mapping.tgd(step.tgd);
    assert_eq!(tgd.name(), "m1");
    // The paper's h: cn→6689, l→15K, s→434, n→J. Long, m→Smith, sal→50K,
    // loc→Seattle, A→A1.
    let pool = &fargo.scenario.pool;
    let by_name = |name: &str| {
        (0..tgd.var_count() as u32)
            .find(|&v| tgd.var_name(Var(v)) == name)
            .map(|v| step.hom[v as usize])
            .unwrap()
    };
    assert_eq!(by_name("cn"), Value::Int(6689));
    assert_eq!(by_name("s"), Value::Int(434));
    assert_eq!(pool.value_to_string(by_name("n")), "J. Long");
    assert_eq!(pool.value_to_string(by_name("m")), "Smith");
    assert_eq!(pool.value_to_string(by_name("loc")), "Seattle");
    assert_eq!(pool.value_to_string(by_name("A")), "A1");
    // The step witnesses both t1 and t5, as in the paper.
    let rhs = step.rhs_tuples(&env).unwrap();
    assert!(rhs.contains(&fargo.t[0]) && rhs.contains(&fargo.t[4]));
}

#[test]
fn scenario_2_t4_has_exactly_two_routes_via_m3() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let t4 = fargo.t[3];
    let routes = alternative_routes(env, &[t4], 10);
    assert_eq!(routes.len(), 2, "the paper reports exactly one other route");
    for route in &routes {
        route.validate(&env, &[t4]).unwrap();
        assert_eq!(route.len(), 1);
        assert_eq!(env.mapping.tgd(route.steps()[0].tgd).name(), "m3");
    }
    // The two routes use the two different FBAccounts rows (s3 and s4) with
    // the same credit card s6 — the evidence for the missing ssn join.
    let premises: Vec<Vec<Fact>> = routes
        .iter()
        .map(|r| r.steps()[0].lhs_facts(&env).unwrap())
        .collect();
    let fba: Vec<TupleId> = premises
        .iter()
        .map(|facts| facts[0].id) // first LHS atom is FBAccounts
        .collect();
    assert_ne!(fba[0], fba[1]);
    let both_use_s6 = premises
        .iter()
        .all(|facts| facts.iter().any(|f| f.id == fargo.s[5]));
    assert!(both_use_s6);
}

#[test]
fn scenario_2_all_routes_forest_shows_both_witnesses() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let t4 = fargo.t[3];
    let forest = compute_all_routes(env, &[t4]);
    let branches = forest.branches_of(t4);
    // The paper's narrative mentions the two m3 witnesses; the forest also
    // (correctly) contains two m5 branches — t4 = Accounts(5539, 40K, 153)
    // is witnessed by m5 from the Clients tuples t7 and t9 as well, though
    // every route through them re-derives t4 via m3 first and is therefore
    // non-minimal.
    let m3_branches = branches
        .iter()
        .filter(|b| env.mapping.tgd(b.tgd).name() == "m3")
        .count();
    let m5_branches = branches
        .iter()
        .filter(|b| env.mapping.tgd(b.tgd).name() == "m5")
        .count();
    assert_eq!((m3_branches, m5_branches), (2, 2));
    let routes = enumerate_routes(env, &forest, &[t4], 10);
    assert!(routes.len() >= 2);
    // Exactly the two one-step m3 routes are minimal.
    let minimal: Vec<_> = routes
        .iter()
        .filter(|r| is_minimal(&env, r, &[t4]))
        .collect();
    assert_eq!(minimal.len(), 2);
    assert!(minimal.iter().all(|r| r.len() == 1));
}

#[test]
fn scenario_3_route_for_t2_is_m2_then_m5_through_t6() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let (t2, t6) = (fargo.t[1], fargo.t[5]);
    let route = compute_one_route(env, &[t2]).expect("t2 has a route");
    let names: Vec<&str> = route
        .steps()
        .iter()
        .map(|s| env.mapping.tgd(s.tgd).name())
        .collect();
    assert_eq!(names, ["m2", "m5"]);
    // The m2 step witnesses t6 from s2; the m5 step uses t6 as its premise.
    let first = &route.steps()[0];
    assert_eq!(
        first.lhs_facts(&env).unwrap(),
        vec![Fact::source(fargo.s[1])]
    );
    assert_eq!(first.rhs_tuples(&env).unwrap(), vec![t6]);
    let second = &route.steps()[1];
    assert_eq!(second.lhs_facts(&env).unwrap(), vec![Fact::target(t6)]);
    assert_eq!(second.rhs_tuples(&env).unwrap(), vec![t2]);
    // Example 3.4's note: the two-step sequence is also a route for t6, with
    // the last step redundant for that selection.
    route.validate(&env, &[t6]).unwrap();
    assert!(!is_minimal(&env, &route, &[t6]));
    assert_eq!(minimize_route(&env, &route, &[t6]).len(), 1);
}

#[test]
fn every_figure_2_tuple_has_a_route() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    for (k, &t) in fargo.t.iter().enumerate() {
        let route = compute_one_route(env, &[t])
            .unwrap_or_else(|e| panic!("t{} should have a route: {e}", k + 1));
        route.validate(&env, &[t]).unwrap();
    }
    // And jointly.
    let route = compute_one_route(env, &fargo.t).unwrap();
    route.validate(&env, &fargo.t).unwrap();
}

#[test]
fn source_side_routes_identify_exporting_tgds() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    // s1 (the Cards row) is exported only by m1.
    let forward = compute_source_routes(env, &[fargo.s[0]], 3);
    let names: Vec<&str> = forward
        .exporting_tgds()
        .into_iter()
        .map(|id| env.mapping.tgd(id).name())
        .collect();
    assert_eq!(names, ["m1"]);
    // s6 (the 40K credit card) is exported by m3 — twice over (both
    // FBAccounts rows), which is Scenario 2 seen from the source side.
    let forward = compute_source_routes(env, &[fargo.s[5]], 3);
    let branches = &forward.branches[&Fact::source(fargo.s[5])];
    assert_eq!(branches.len(), 2);
    assert!(branches
        .iter()
        .all(|b| env.mapping.tgd(b.tgd).name() == "m3"));
}

#[test]
fn stratification_of_the_scenario_3_route() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let t2 = fargo.t[1];
    let route = compute_one_route(env, &[t2]).unwrap();
    let strat = stratify(&env, &route);
    assert_eq!(strat.rank(), 2);
    assert_eq!(strat.blocks()[0].len(), 1); // m2 at rank 1
    assert_eq!(strat.blocks()[1].len(), 1); // m5 at rank 2
    assert_eq!(route_rank(&env, &route), 2);
}

#[test]
fn debug_session_replays_scenario_3() {
    let fargo = fargo_scenario();
    let env = env(&fargo);
    let t2 = fargo.t[1];
    let route = compute_one_route(env, &[t2]).unwrap();
    let mut session = DebugSession::new(env, route);
    assert!(session.add_breakpoint_by_name("m5"));
    let event = session.run_to_breakpoint().expect("m5 on the route");
    assert_eq!(env.mapping.tgd(event.step.tgd).name(), "m5");
    assert!(event.new_tuples.contains(&t2));
    assert!(session.finished() || session.run_to_breakpoint().is_none());
}
