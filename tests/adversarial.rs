//! Adversarial and edge-case coverage across the whole stack: constants in
//! dependencies, self-joins, repeated variables, unicode data, wide tuples,
//! empty relations, and selections mixing provable with unprovable tuples.

use mapping_routes::prelude::*;
use routes_chase::chase;
use routes_mapping::satisfy::is_solution;

#[test]
fn constants_in_tgds_flow_through_routes() {
    // Only premium cards (limit 100) migrate, and the target brands them.
    let mut s = Schema::new();
    s.rel("Card", &["no", "limit"]);
    let mut t = Schema::new();
    t.rel("Premium", &["no", "tier"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: Card(x, 100) -> Premium(x, 'gold')").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    let card = s.rel_id("Card").unwrap();
    i.insert_ok(card, &[Value::Int(1), Value::Int(100)]);
    i.insert_ok(card, &[Value::Int(2), Value::Int(50)]); // filtered out
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    assert_eq!(j.total_tuples(), 1);
    let env = RouteEnv::new(&m, &i, &j);
    let probe = j.all_rows().next().unwrap();
    let route = compute_one_route(env, &[probe]).unwrap();
    route.validate(&env, &[probe]).unwrap();
    // The route's premise is the limit-100 card, not the other one.
    let lhs = route.steps()[0].lhs_facts(&env).unwrap();
    assert_eq!(i.tuple(lhs[0].id)[1], Value::Int(100));
}

#[test]
fn self_join_tgds() {
    // Siblings: Parent(p, c1) & Parent(p, c2) -> Sibling(c1, c2).
    let mut s = Schema::new();
    s.rel("Parent", &["p", "c"]);
    let mut t = Schema::new();
    t.rel("Sibling", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(
        parse_st_tgd(
            &s,
            &t,
            &mut pool,
            "sib: Parent(p, x) & Parent(p, y) -> Sibling(x, y)",
        )
        .unwrap(),
    )
    .unwrap();
    let mut i = Instance::new(&s);
    let parent = s.rel_id("Parent").unwrap();
    i.insert_ok(parent, &[Value::Int(1), Value::Int(10)]);
    i.insert_ok(parent, &[Value::Int(1), Value::Int(11)]);
    i.insert_ok(parent, &[Value::Int(2), Value::Int(20)]);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    // Pairs including reflexive: (10,10),(10,11),(11,10),(11,11),(20,20).
    assert_eq!(j.total_tuples(), 5);
    let env = RouteEnv::new(&m, &i, &j);
    for probe in j.all_rows() {
        let route = compute_one_route(env, &[probe]).unwrap();
        route.validate(&env, &[probe]).unwrap();
    }
    // The (10,11) route joins two different Parent rows.
    let sib = t.rel_id("Sibling").unwrap();
    let probe = j.find(sib, &[Value::Int(10), Value::Int(11)]).unwrap();
    let route = compute_one_route(env, &[probe]).unwrap();
    let lhs = route.steps()[0].lhs_facts(&env).unwrap();
    assert_eq!(lhs.len(), 2);
    assert_ne!(lhs[0], lhs[1]);
}

#[test]
fn repeated_variables_in_rhs_anchor() {
    // Diagonal: S(x) -> T(x, x). Probing T(a, a) must unify both columns.
    let mut s = Schema::new();
    s.rel("S", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "diag: S(x) -> T(x, x)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S").unwrap(), &[Value::Int(7)]);
    let mut j = Instance::new(&t);
    let tr = t.rel_id("T").unwrap();
    let diag = j.insert_ok(tr, &[Value::Int(7), Value::Int(7)]);
    let off = j.insert_ok(tr, &[Value::Int(7), Value::Int(8)]); // not witnessable
    let env = RouteEnv::new(&m, &i, &j);
    assert!(compute_one_route(env, &[diag]).is_ok());
    assert!(compute_one_route(env, &[off]).is_err());
}

#[test]
fn unicode_values_and_identifiers() {
    let mut s = Schema::new();
    s.rel("Stadt", &["name", "land"]);
    let mut t = Schema::new();
    t.rel("Ciudad", &["name", "land"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "übertrag: Stadt(x, y) → Ciudad(x, y)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    let köln = pool.str("Köln");
    let de = pool.str("Deutschland 🇩🇪");
    i.insert_ok(s.rel_id("Stadt").unwrap(), &[köln, de]);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    let env = RouteEnv::new(&m, &i, &j);
    let probe = j.all_rows().next().unwrap();
    let route = compute_one_route(env, &[probe]).unwrap();
    let rendered = route_to_string(&pool, &env, &route);
    assert!(rendered.contains("Köln"));
    assert!(rendered.contains("übertrag"));
    assert!(rendered.contains("🇩🇪"));
}

#[test]
fn wide_tuples_and_long_chains() {
    // A 24-column relation copied through a 10-step target chain.
    let attrs: Vec<String> = (0..24).map(|k| format!("c{k}")).collect();
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let mut s = Schema::new();
    s.rel("W0", &attr_refs);
    let mut t = Schema::new();
    for k in 1..=10 {
        t.rel(&format!("W{k}"), &attr_refs);
    }
    let vars: Vec<String> = (0..24).map(|k| format!("v{k}")).collect();
    let varlist = vars.join(", ");
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(
        parse_st_tgd(
            &s,
            &t,
            &mut pool,
            &format!("c0: W0({varlist}) -> W1({varlist})"),
        )
        .unwrap(),
    )
    .unwrap();
    for k in 1..10 {
        m.add_target_tgd(
            parse_target_tgd(
                &t,
                &mut pool,
                &format!("c{k}: W{k}({varlist}) -> W{}({varlist})", k + 1),
            )
            .unwrap(),
        )
        .unwrap();
    }
    let mut i = Instance::new(&s);
    let w0 = s.rel_id("W0").unwrap();
    for row in 0..5 {
        let values: Vec<Value> = (0..24).map(|c| Value::Int(row * 100 + c)).collect();
        i.insert_ok(w0, &values);
    }
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    assert_eq!(j.total_tuples(), 50);
    assert!(is_solution(&m, &i, &j));
    let env = RouteEnv::new(&m, &i, &j);
    let w10 = t.rel_id("W10").unwrap();
    let probe = j.rel_rows(w10).next().unwrap();
    let route = compute_one_route(env, &[probe]).unwrap();
    assert_eq!(route.len(), 10);
    assert_eq!(route_rank(&env, &route), 10);
    assert!(is_minimal(&env, &route, &[probe]));
}

#[test]
fn empty_source_and_vacuous_mappings() {
    let mut s = Schema::new();
    s.rel("S", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x) -> T(x)").unwrap())
        .unwrap();
    let i = Instance::new(&s);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    assert!(j.is_empty());
    let env = RouteEnv::new(&m, &i, &j);
    let forest = compute_all_routes(env, &[]);
    assert_eq!(forest.num_nodes(), 0);
    assert!(enumerate_routes(env, &forest, &[], 10).is_empty());
    // compute_one_route on the empty selection: an empty G is not a route
    // (Definition 3.3 requires a non-empty sequence), so the library returns
    // an empty-step Route only if validation is skipped; the call itself
    // succeeds with zero steps and validates as Empty.
    let route = compute_one_route(env, &[]).unwrap();
    assert!(route.is_empty());
    assert!(matches!(
        route.validate(&env, &[]),
        Err(routes_core::RouteError::Empty)
    ));
}

#[test]
fn negative_integers_and_large_values() {
    let mut s = Schema::new();
    s.rel("S", &["a", "b"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "m: S(x, -42) -> T(x, -42)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    let sr = s.rel_id("S").unwrap();
    i.insert_ok(sr, &[Value::Int(i64::MAX), Value::Int(-42)]);
    i.insert_ok(sr, &[Value::Int(i64::MIN), Value::Int(7)]);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    assert_eq!(j.total_tuples(), 1);
    let env = RouteEnv::new(&m, &i, &j);
    let probe = j.all_rows().next().unwrap();
    compute_one_route(env, &[probe]).unwrap();
}

#[test]
fn alternatives_for_multi_tuple_selections() {
    // Two independently double-derivable tuples: the joint selection has
    // alternatives too, each banning the previous witnesses of both.
    let mut s = Schema::new();
    s.rel("S1", &["a"]);
    s.rel("S2", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "a: S1(x) -> T(x)").unwrap())
        .unwrap();
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "b: S2(x) -> T(x)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    i.insert_ok(s.rel_id("S1").unwrap(), &[Value::Int(1)]);
    i.insert_ok(s.rel_id("S2").unwrap(), &[Value::Int(1)]);
    i.insert_ok(s.rel_id("S1").unwrap(), &[Value::Int(2)]);
    i.insert_ok(s.rel_id("S2").unwrap(), &[Value::Int(2)]);
    let j = chase(&m, &i, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    let selection: Vec<TupleId> = j.all_rows().collect();
    assert_eq!(selection.len(), 2);
    let routes = alternative_routes(RouteEnv::new(&m, &i, &j), &selection, 5);
    assert!(routes.len() >= 2, "got {}", routes.len());
    for r in &routes {
        r.validate(&RouteEnv::new(&m, &i, &j), &selection).unwrap();
    }
}
