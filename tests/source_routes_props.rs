//! Properties of forward (source-side) route exploration on random
//! scenarios: every forward branch is a valid satisfaction step whose LHS
//! contains the explored fact, and forward reachability is consistent with
//! backward witnessing — if a source tuple reaches a target tuple in one
//! step, some route for that target tuple uses the source tuple.

use mapping_routes::prelude::*;
use routes_chase::chase;
use routes_gen::random_scenario;
use routes_model::Instance;

fn chased(seed: u64) -> Option<(routes_gen::Scenario, Instance)> {
    let mut sc = random_scenario(seed);
    let options = ChaseOptions {
        max_rounds: 200,
        max_tuples: 5_000,
        ..ChaseOptions::fresh()
    };
    let result = chase(&sc.mapping, &sc.source, &mut sc.pool, options).ok()?;
    Some((sc, result.target))
}

#[test]
fn forward_branches_are_valid_steps_containing_the_probe() {
    let mut branches_checked = 0;
    for seed in 0..120 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let sources: Vec<TupleId> = sc.source.all_rows().collect();
        if sources.is_empty() {
            continue;
        }
        let forest = compute_source_routes(env, &sources, 4);
        for (&fact, branches) in &forest.branches {
            for branch in branches {
                branches_checked += 1;
                let step = SatisfactionStep::new(branch.tgd, branch.hom.clone());
                let lhs = step
                    .lhs_facts(&env)
                    .unwrap_or_else(|| panic!("seed {seed}: forward branch must resolve"));
                assert!(
                    lhs.contains(&fact),
                    "seed {seed}: the explored fact appears in its branch's premises"
                );
                assert_eq!(lhs, branch.lhs_facts, "seed {seed}");
                let rhs = step.rhs_tuples(&env).expect("resolves");
                assert_eq!(rhs, branch.rhs_tuples, "seed {seed}");
            }
        }
    }
    assert!(
        branches_checked > 200,
        "enough branches checked: {branches_checked}"
    );
}

#[test]
fn one_step_forward_reachability_matches_backward_witnessing() {
    for seed in 0..80 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        let sources: Vec<TupleId> = sc.source.all_rows().collect();
        if sources.is_empty() || j.is_empty() {
            continue;
        }
        // Depth 1: only direct s-t exports.
        for &s in &sources {
            let forward = compute_source_routes(env, &[s], 1);
            for target in forward.reached_targets() {
                // Backward: the target's forest must contain an s-t branch
                // whose premises include s.
                let backward = compute_all_routes(env, &[target]);
                let witnessed = backward
                    .branches_of(target)
                    .iter()
                    .any(|b| b.is_st() && b.lhs_facts.contains(&Fact::source(s)));
                assert!(
                    witnessed,
                    "seed {seed}: {target:?} reached forward from {s:?} but no backward \
                     branch uses it"
                );
            }
        }
    }
}

#[test]
fn one_route_from_source_premises_include_the_source() {
    for seed in 0..80 {
        let Some((sc, j)) = chased(seed) else {
            continue;
        };
        let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
        for s in sc.source.all_rows() {
            if let Some(route) = routes_core::source_routes::one_route_from_source(env, s) {
                route.validate(&env, &[]).unwrap();
                let lhs = route.steps()[0].lhs_facts(&env).unwrap();
                assert!(lhs.contains(&Fact::source(s)), "seed {seed}");
            }
        }
    }
}
