//! Crash-recovery suite for the durable session store (DESIGN.md §9).
//!
//! Three layers, most integrated first:
//!
//! 1. **HTTP restart round-trip** — boot `spiderd` with a data directory,
//!    drive it over real sockets (creates past capacity so the LRU evicts,
//!    a delete, a forest-cache warm), shut down gracefully, and boot a
//!    second server on the same directory. Every live session must answer
//!    200 with its original chase results, every evicted id 410, the
//!    deleted id 404, and the `/metrics` persistence block must account
//!    for exactly the restored population. Runs under whatever
//!    `ROUTES_SESSION_SHARDS` the CI matrix sets (shards are auto here),
//!    so the same history must survive at 1 shard and at 8.
//!
//! 2. **Torn-tail boot** — damage the WAL behind a stopped server and
//!    assert recovery keeps exactly the intact prefix: the torn create is
//!    the only session lost.
//!
//! 3. **Seeded fault campaign** — at the `routes-store` API level, inject
//!    one `random_fault` per SplitMix64 seed into a known log and assert
//!    the recovered records are always an exact prefix of what was
//!    written (or the written sequence plus one duplicated tail frame),
//!    and that the post-recovery checkpoint truncates the damage away.
//!    Also pins `store::faults::SplitMix64` bit-for-bit against
//!    `routes_gen::Rng`, the promise made in `faults`' module docs.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use routes_server::json::{parse, Json};
use routes_server::{Server, ServerConfig};
use routes_store::faults::{inject, random_fault, Fault, SplitMix64};
use routes_store::testutil::TempDir;
use routes_store::{
    ChaseMode, Durability, EditOp, PersistMetrics, Record, SnapshotState, StoreDir,
};

/// A keep-alive HTTP client speaking just enough of the protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// Send one request on the persistent connection; parse the JSON reply.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).unwrap();
        self.writer.write_all(body.as_bytes()).unwrap();
        self.writer.flush().unwrap();

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        let text = String::from_utf8(body).unwrap();
        (
            status,
            parse(&text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}")),
        )
    }
}

fn scenario_text(tag: i64) -> String {
    format!(
        "source schema:\n  S(a, b)\n\
         target schema:\n  T(a, b)\n  U(a)\n\
         dependencies:\n  m1: S(x, y) -> T(x, y)\n  m2: T(x, y) -> U(x)\n\
         source data:\n  S({tag}, {t1})\n  S({t2}, {t3})\n",
        t1 = tag + 1,
        t2 = tag + 10,
        t3 = tag + 11,
    )
}

fn create_body(tag: i64) -> String {
    format!(
        "{{\"scenario\": {}}}",
        Json::from(scenario_text(tag).as_str()).encode()
    )
}

fn config_with_dir(dir: &Path, max_sessions: usize) -> ServerConfig {
    ServerConfig {
        threads: 2,
        max_sessions,
        // Auto shards: the CI matrix pins ROUTES_SESSION_SHARDS to 1 and
        // to 8, so recovery is exercised at both extremes.
        session_shards: 0,
        read_timeout: Duration::from_secs(30),
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.spawn().expect("spawn")
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    let (status, body) = c.request("POST", "/shutdown", None);
    assert_eq!(status, 200);
    assert_eq!(body.get("shutting_down").unwrap().as_bool(), Some(true));
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn restart_restores_live_evicted_and_deleted_sessions() {
    let tmp = TempDir::new("recovery-http");
    const CAPACITY: usize = 8;
    const CREATES: i64 = 12;

    // First life: create past capacity so the LRU evicts, warm one
    // forest, delete one live session.
    let (addr, handle) = start(config_with_dir(tmp.path(), CAPACITY));
    let mut c = Client::connect(addr);
    let mut live: Vec<u64> = Vec::new();
    let mut gone: Vec<u64> = Vec::new();
    for k in 0..CREATES {
        let (status, body) = c.request("POST", "/sessions", Some(&create_body(100 * (k + 1))));
        assert_eq!(status, 201, "{body:?}");
        let id = body.get("session").unwrap().as_u64().unwrap();
        live.push(id);
        for v in body.get("evicted").unwrap().as_array().unwrap() {
            let victim = v.as_u64().unwrap();
            live.retain(|&x| x != victim);
            gone.push(victim);
        }
    }
    assert!(
        !gone.is_empty(),
        "capacity {CAPACITY} with {CREATES} creates must evict"
    );

    // Warm the forest cache of the freshest session (certainly live) so
    // the restart can prove the memo was replayed.
    let warmed = *live.last().unwrap();
    let select = r#"{"tuples": [{"relation": "U", "row": 0}, {"relation": "T", "row": 1}]}"#;
    let (status, body) = c.request(
        "POST",
        &format!("/sessions/{warmed}/all-routes"),
        Some(select),
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(false));
    let branches = body.get("num_branches").unwrap().as_u64();

    // Delete the oldest live session.
    let deleted = live.remove(0);
    let (status, _) = c.request("DELETE", &format!("/sessions/{deleted}"), None);
    assert_eq!(status, 200);
    shutdown(addr, handle);

    // Second life on the same directory.
    let (addr, handle) = start(config_with_dir(tmp.path(), CAPACITY));
    let mut c = Client::connect(addr);
    for &id in &live {
        let (status, body) = c.request("GET", &format!("/sessions/{id}"), None);
        assert_eq!(status, 200, "live session {id} must be restored: {body:?}");
        assert_eq!(body.get("session").unwrap().as_u64(), Some(id));
    }
    for &id in &gone {
        let (status, _) = c.request("GET", &format!("/sessions/{id}"), None);
        assert_eq!(status, 410, "evicted session {id} must stay 410 Gone");
    }
    let (status, _) = c.request("GET", &format!("/sessions/{deleted}"), None);
    assert_eq!(status, 404, "deleted session {deleted} must stay 404");

    // The warmed forest was replayed: the same selection (permuted) is a
    // cache hit with the same branch count.
    let permuted = r#"{"tuples": [{"relation": "T", "row": 1}, {"relation": "U", "row": 0}]}"#;
    let (status, body) = c.request(
        "POST",
        &format!("/sessions/{warmed}/all-routes"),
        Some(permuted),
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(
        body.get("cached").unwrap().as_bool(),
        Some(true),
        "forest memo replayed"
    );
    assert_eq!(body.get("num_branches").unwrap().as_u64(), branches);

    // Metrics accounting: the persistence block counts exactly the
    // restored population, and the store agrees shard by shard.
    let (status, m) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(m
        .get("version")
        .unwrap()
        .as_str()
        .is_some_and(|v| !v.is_empty()));
    assert!(m.get("uptime_seconds").unwrap().as_u64().is_some());
    assert_eq!(
        m.get("live_sessions").unwrap().as_u64(),
        Some(live.len() as u64)
    );
    let p = m
        .get("persistence")
        .expect("persistence block when --data-dir is set");
    assert_eq!(
        p.get("restored_sessions").unwrap().as_u64(),
        Some(live.len() as u64)
    );
    assert!(
        p.get("replayed_records").unwrap().as_u64().unwrap() > 0,
        "boot replayed the WAL"
    );
    assert!(
        p.get("wal_gen").unwrap().as_u64().unwrap() >= 2,
        "each boot rotates a generation"
    );
    let shard_total: u64 = m
        .get("session_store")
        .unwrap()
        .get("shards")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("sessions").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(
        shard_total,
        live.len() as u64,
        "shard occupancy matches restored sessions"
    );
    shutdown(addr, handle);
}

#[test]
fn torn_wal_tail_loses_only_the_unsynced_suffix() {
    let tmp = TempDir::new("recovery-torn");

    // Five creates, no other traffic: generation 1 holds exactly five
    // Create records in id order.
    let (addr, handle) = start(config_with_dir(tmp.path(), 32));
    let mut c = Client::connect(addr);
    for k in 0..5i64 {
        let (status, _) = c.request("POST", "/sessions", Some(&create_body(10 * (k + 1))));
        assert_eq!(status, 201);
    }
    shutdown(addr, handle);

    // Tear the tail of the live log, as a crash mid-write would.
    let dir = StoreDir::open(tmp.path()).expect("open data dir");
    let wal_path = dir.wal_path(1);
    let report = inject(&wal_path, &Fault::TruncateTail { bytes: 7 }).expect("inject");
    assert_eq!(report.len_after, report.len_before - 7);

    // The boot survives, keeping the intact prefix: sessions 1–4 answer,
    // the torn fifth create was never made durable again.
    let (addr, handle) = start(config_with_dir(tmp.path(), 32));
    let mut c = Client::connect(addr);
    for id in 1..=4u64 {
        let (status, _) = c.request("GET", &format!("/sessions/{id}"), None);
        assert_eq!(status, 200, "session {id} is before the tear");
    }
    let (status, _) = c.request("GET", "/sessions/5", None);
    assert_eq!(status, 404, "the torn create is gone, not resurrected");
    let (_, m) = c.request("GET", "/metrics", None);
    let p = m.get("persistence").unwrap();
    assert_eq!(p.get("replayed_records").unwrap().as_u64(), Some(4));
    assert_eq!(p.get("restored_sessions").unwrap().as_u64(), Some(4));

    // The id horizon was replayed from the surviving records: the next
    // create allocates past every restored session.
    let (status, body) = c.request("POST", "/sessions", Some(&create_body(999)));
    assert_eq!(status, 201, "{body:?}");
    let id = body.get("session").unwrap().as_u64().unwrap();
    assert!(id >= 5, "ids advance past every replayed create, got {id}");
    shutdown(addr, handle);
}

#[test]
fn fault_campaign_recovers_a_prefix_of_the_log() {
    const RECORDS: u64 = 12;
    for seed in 0..32u64 {
        let tmp = TempDir::new(&format!("recovery-campaign-{seed}"));
        let dir = StoreDir::open(tmp.path()).expect("open dir");
        let metrics = Arc::new(PersistMetrics::new());
        let wal = dir
            .checkpoint(&SnapshotState::default(), 1, Arc::clone(&metrics))
            .expect("checkpoint");
        // Creates interleaved with Edit records (every third session gets
        // one), so the campaign damages edit frames as often as creates.
        let mut written: Vec<Record> = Vec::new();
        for id in 1..=RECORDS {
            written.push(Record::Create {
                id,
                chase: ChaseMode::Fresh,
                scenario: format!("scenario body for session {id}"),
            });
            if id.is_multiple_of(3) {
                written.push(Record::Edit {
                    id,
                    seq: 1,
                    ops: vec![
                        EditOp::InsertTuple {
                            line: format!("S({id}, {id})"),
                        },
                        EditOp::DeleteTuple {
                            relation: "S".to_owned(),
                            row: 0,
                        },
                        EditOp::AddTgd {
                            line: "g0: S(x, y) -> T(x, y)".to_owned(),
                        },
                        EditOp::DropTgd {
                            name: "g0".to_owned(),
                        },
                    ],
                });
            }
        }
        for r in &written {
            wal.append(r, Durability::Synced).expect("append");
        }
        drop(wal);

        let mut rng = SplitMix64::seed_from_u64(seed);
        let wal_path = dir.wal_path(1);
        let len = std::fs::metadata(&wal_path).expect("stat").len();
        let fault = random_fault(&mut rng, len);
        inject(&wal_path, &fault).expect("inject");

        let rec = dir.recover().expect("recovery never errors on damage");
        match fault {
            Fault::DuplicateLastFrame => {
                // A doubly applied buffer is valid bytes: the whole log
                // plus one repeat of its last record (replay of a Create
                // is idempotent upstream).
                let mut expected = written.clone();
                expected.push(written.last().unwrap().clone());
                assert_eq!(rec.records, expected, "seed {seed}: {fault:?}");
                assert!(rec.stop.is_clean(), "seed {seed}");
            }
            _ => {
                assert!(
                    rec.records.len() < written.len(),
                    "seed {seed}: {fault:?} must cost at least the frame it hit"
                );
                assert_eq!(
                    rec.records,
                    written[..rec.records.len()],
                    "seed {seed}: recovery must keep an exact prefix"
                );
                assert!(!rec.stop.is_clean(), "seed {seed}: damage is reported");
            }
        }

        // The post-recovery checkpoint truncates the damage out of
        // existence: the next recovery is clean and replays nothing.
        let _wal = dir
            .checkpoint(&rec.state, rec.wal_gen + 1, Arc::clone(&metrics))
            .expect("checkpoint after recovery");
        let again = dir.recover().expect("recover the compacted dir");
        assert!(again.stop.is_clean(), "seed {seed}");
        assert!(again.records.is_empty(), "seed {seed}");
        assert_eq!(again.wal_gen, rec.wal_gen + 1, "seed {seed}");
    }
}

#[test]
fn store_splitmix_matches_the_workspace_generator() {
    // `store::faults` mirrors the workspace PRNG instead of depending on
    // `routes-gen`; this is the pin its module docs promise. If either
    // constant set drifts, fault campaigns stop being reproducible from
    // the seeds recorded in CI logs.
    for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
        let mut mirror = SplitMix64::seed_from_u64(seed);
        let mut canonical = routes_gen::Rng::seed_from_u64(seed);
        for _ in 0..256 {
            assert_eq!(mirror.next_u64(), canonical.next_u64(), "seed {seed}");
        }
        // The bounded reduction must agree too (gen_range(0..n) is the
        // canonical spelling of `bounded`).
        for bound in [1u64, 2, 3, 10, 1 << 40] {
            assert_eq!(
                mirror.bounded(bound),
                canonical.gen_range(0..bound),
                "seed {seed} bound {bound}"
            );
        }
    }
}
