//! Concurrency harness for the sharded session store (DESIGN.md §7).
//!
//! Two complementary suites, both seeded with the in-repo SplitMix64:
//!
//! 1. **Lockstep accounting** — drive 1-, 2-, and 8-shard stores through
//!    one identical single-threaded op sequence whose targets are chosen
//!    so every op has the *same* outcome in every store (gets hit ids live
//!    everywhere, gone-probes hit ids evicted everywhere), then saturate
//!    each store with exactly `capacity` consecutive inserts. Because
//!    consecutive ids spread evenly over `id % shards` and the capacity is
//!    divisible by every tested shard count, every store ends with
//!    `capacity` live sessions, so the hit/miss/insert/remove/eviction
//!    totals must render **byte-identically** at every shard count.
//!
//! 2. **8-thread churn** — eight threads of mixed insert/get/maintenance
//!    traffic against each shard count, asserting no session is ever
//!    served after its eviction was observed, then reconciling the store's
//!    counter snapshot against the threads' own tallies. The per-thread op
//!    mix is seeded independently of the shard count, so the final
//!    `inserts/gets/evictions/live` line is again identical across 1, 2,
//!    and 8 shards.

use std::collections::BTreeSet;
use std::sync::Mutex;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario, PreparedScenario};
use routes_gen::Rng;
use routes_pool::Pool;
use routes_server::{SessionLookup, SessionStore};

const CAPACITY: usize = 16;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn prototype() -> PreparedScenario {
    let text = "source schema:\n  S(a)\ntarget schema:\n  T(a)\n\
                dependencies:\n  m: S(x) -> T(x)\nsource data:\n  S(7)\n";
    prepare_scenario(load_scenario_str(text).unwrap(), ChaseOptions::fresh()).unwrap()
}

/// What one store should currently hold, maintained from insert returns.
#[derive(Default)]
struct Model {
    live: BTreeSet<u64>,
    gone: BTreeSet<u64>,
}

impl Model {
    fn insert(&mut self, id: u64, evicted: &[u64]) {
        assert!(self.live.insert(id), "fresh id {id} was not live");
        for &v in evicted {
            assert!(self.live.remove(&v), "evicted id {v} must have been live");
            assert!(self.gone.insert(v), "id {v} evicted twice");
        }
    }
}

/// Ids present in `pick(model)` for *every* model — the op targets whose
/// outcome is certain in every store.
fn common(models: &[Model], pick: impl Fn(&Model) -> &BTreeSet<u64>) -> Vec<u64> {
    let mut ids: Vec<u64> = pick(&models[0]).iter().copied().collect();
    for m in &models[1..] {
        let set = pick(m);
        ids.retain(|id| set.contains(id));
    }
    ids
}

#[test]
fn lockstep_accounting_is_byte_identical_across_shard_counts() {
    let proto = prototype();
    let workers = Pool::sequential();
    let stores: Vec<SessionStore> = SHARD_COUNTS
        .iter()
        .map(|&n| SessionStore::with_shards(CAPACITY, n))
        .collect();
    let mut models: Vec<Model> = stores.iter().map(|_| Model::default()).collect();
    let mut rng = Rng::seed_from_u64(0x5EED_CAFE);

    for _ in 0..400 {
        let roll = rng.gen_range(0u32..100);
        if roll < 40 {
            // Insert everywhere; ids must agree (one shared id sequence
            // starting at 1), eviction victims may not — the models track
            // each store exactly.
            let mut assigned = None;
            for (store, model) in stores.iter().zip(&mut models) {
                let (id, evicted) = store.insert(proto.clone(), &workers);
                assert_eq!(*assigned.get_or_insert(id), id, "stores agree on ids");
                model.insert(id, &evicted);
            }
        } else if roll < 70 {
            // Get an id that is live in every store: a certain hit.
            let candidates = common(&models, |m| &m.live);
            if candidates.is_empty() {
                continue;
            }
            let id = candidates[rng.gen_range(0..candidates.len())];
            for store in &stores {
                assert!(store.get(id).is_found(), "id {id} is live everywhere");
            }
        } else if roll < 85 {
            // Probe an id that is gone in every store: a certain miss.
            let candidates = common(&models, |m| &m.gone);
            let id = if candidates.is_empty() {
                u64::MAX // never assigned: Missing everywhere
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            };
            for store in &stores {
                assert!(!store.get(id).is_found(), "id {id} is gone everywhere");
            }
        } else {
            // Delete an id that is live in every store: a certain Removed.
            let candidates = common(&models, |m| &m.live);
            if candidates.is_empty() {
                continue;
            }
            let id = candidates[rng.gen_range(0..candidates.len())];
            for (store, model) in stores.iter().zip(&mut models) {
                assert_eq!(store.remove(id), routes_server::Removal::Removed);
                assert!(model.live.remove(&id));
            }
        }
    }

    // Saturate: `CAPACITY` consecutive ids spread exactly evenly over
    // `id % shards` for every shard count dividing CAPACITY, so each store
    // ends with every shard full — live == CAPACITY everywhere, which
    // pins the eviction totals (evictions = inserts - removes - live).
    for _ in 0..CAPACITY {
        for (store, model) in stores.iter().zip(&mut models) {
            let (id, evicted) = store.insert(proto.clone(), &workers);
            model.insert(id, &evicted);
        }
    }

    let lines: Vec<String> = stores
        .iter()
        .map(|s| s.snapshot().accounting_line())
        .collect();
    for (shards, (store, line)) in SHARD_COUNTS.iter().zip(stores.iter().zip(&lines)) {
        assert_eq!(store.len(), CAPACITY, "{shards}-shard store saturated");
        assert_eq!(
            line, &lines[0],
            "{shards}-shard accounting differs from 1-shard"
        );
        let snap = store.snapshot();
        assert_eq!(
            snap.evictions(),
            snap.inserts() - snap.removes() - CAPACITY as u64,
        );
    }

    // No session is ever served after eviction: every id each model saw
    // evicted still answers Evicted, never Found (ids are never reused, so
    // there is nothing to resurrect).
    for (store, model) in stores.iter().zip(&models) {
        assert_eq!(store.len(), model.live.len());
        for &id in &model.gone {
            assert!(
                matches!(store.get(id), SessionLookup::Evicted),
                "evicted id {id} stays gone"
            );
        }
    }
}

#[test]
fn eight_thread_churn_reconciles_counters_at_every_shard_count() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 120;

    let proto = prototype();
    let mut canonical: Option<String> = None;
    for &shards in &SHARD_COUNTS {
        let store = SessionStore::with_shards(CAPACITY, shards);
        let evicted_ids = Mutex::new(BTreeSet::new());
        let mut inserts = 0u64;
        let mut gets = 0u64;

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let store = &store;
                    let proto = &proto;
                    let evicted_ids = &evicted_ids;
                    s.spawn(move || {
                        // Seeded by thread index only — NOT the shard
                        // count — so every store sees the same op mix.
                        let mut rng = Rng::seed_from_u64(0xC0FFEE + t as u64);
                        let workers = Pool::sequential();
                        let maintenance = Pool::new(4);
                        let mut mine: Vec<u64> = Vec::new();
                        let mut observed_gone: BTreeSet<u64> = BTreeSet::new();
                        let (mut my_inserts, mut my_gets) = (0u64, 0u64);
                        for _ in 0..OPS_PER_THREAD {
                            let roll = rng.gen_range(0u32..100);
                            if roll < 40 {
                                let (id, evicted) = store.insert(proto.clone(), &workers);
                                my_inserts += 1;
                                mine.push(id);
                                observed_gone.extend(evicted.iter().copied());
                                evicted_ids.lock().unwrap().extend(evicted);
                            } else if roll < 95 {
                                if mine.is_empty() {
                                    continue;
                                }
                                let id = mine[rng.gen_range(0..mine.len())];
                                let lookup = store.get(id);
                                my_gets += 1;
                                if observed_gone.contains(&id) {
                                    // The core safety property: once this
                                    // thread saw the id evicted, the store
                                    // may never serve it again.
                                    assert!(
                                        !lookup.is_found(),
                                        "id {id} served after observed eviction"
                                    );
                                }
                            } else {
                                // Maintenance scan through the worker
                                // pool; anything it reaps was a real
                                // resident, so the tally stays exact.
                                let reaped = store.scan_evict(&maintenance);
                                observed_gone.extend(reaped.iter().copied());
                                evicted_ids.lock().unwrap().extend(reaped);
                            }
                        }
                        (my_inserts, my_gets)
                    })
                })
                .collect();
            for h in handles {
                let (i, g) = h.join().expect("churn thread");
                inserts += i;
                gets += g;
            }
        });

        // Saturate single-threaded, as in the lockstep test.
        let workers = Pool::sequential();
        for _ in 0..CAPACITY {
            let (_, evicted) = store.insert(proto.clone(), &workers);
            inserts += 1;
            evicted_ids.lock().unwrap().extend(evicted);
        }

        let snap = store.snapshot();
        let evicted_ids = evicted_ids.into_inner().unwrap();
        assert_eq!(store.len(), CAPACITY, "shards={shards}: saturated");
        assert_eq!(snap.inserts(), inserts, "shards={shards}");
        assert_eq!(snap.hits() + snap.misses(), gets, "shards={shards}");
        assert_eq!(
            snap.evictions(),
            evicted_ids.len() as u64,
            "shards={shards}: every eviction was reported to exactly one caller"
        );
        assert_eq!(snap.evictions(), inserts - CAPACITY as u64);
        assert_eq!(snap.removes(), 0);
        for (k, shard) in snap.shards.iter().enumerate() {
            assert!(
                shard.sessions <= shard.capacity,
                "shards={shards}: shard {k} within its slice"
            );
        }
        // Evicted ids stay evicted (final sweep, after the counters above
        // so the miss traffic does not disturb the reconciliation).
        for &id in &evicted_ids {
            assert!(
                matches!(store.get(id), SessionLookup::Evicted),
                "shards={shards}: id {id} resurrected"
            );
        }

        // The schedule-level accounting line is shard-count independent:
        // the op mix is fixed by the seeds and live always ends at
        // CAPACITY, so evictions (= inserts - live) match too.
        let line = format!(
            "inserts={inserts} gets={gets} evictions={} live={}",
            snap.evictions(),
            store.len()
        );
        match &canonical {
            None => canonical = Some(line),
            Some(expect) => assert_eq!(&line, expect, "shards={shards}"),
        }
    }
}

#[test]
fn shard_count_honours_the_env_matrix() {
    // ci.sh runs this suite under ROUTES_SESSION_SHARDS=1 and =8; the
    // default constructor must follow the ambient override (reading it
    // here rather than setting it keeps the test parallel-safe).
    let expected = std::env::var(routes_server::SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let store = SessionStore::new(64);
    assert_eq!(store.shard_count(), expected.clamp(1, 64));
    assert_eq!(store.capacity(), 64);
}
