//! The paper's §3 worked examples, end to end via the public API: the
//! Figure 5 route tree, routes R1/R2/R3, the stratified-interpretation
//! table, and the ComputeOneRoute trace of Example 3.8.

use mapping_routes::prelude::*;
use routes_gen::toy_scenario_3_5;
use routes_model::Instance;

fn tuple_of(sc: &routes_gen::Scenario, j: &Instance, rel: &str) -> TupleId {
    let r = sc.mapping.target().rel_id(rel).unwrap();
    j.rel_rows(r).next().unwrap()
}

#[test]
fn figure_5_route_tree() {
    let (sc, j, _) = toy_scenario_3_5();
    let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
    let t7 = tuple_of(&sc, &j, "T7");
    let forest = compute_all_routes(env, &[t7]);
    assert_eq!(forest.num_nodes(), 7);
    // σ3 and σ7 are the only competing branches (under T3).
    let t3 = tuple_of(&sc, &j, "T3");
    assert_eq!(forest.branches_of(t3).len(), 2);
    for rel in ["T1", "T2", "T4", "T5", "T6", "T7"] {
        assert_eq!(forest.branches_of(tuple_of(&sc, &j, rel)).len(), 1, "{rel}");
    }
    assert!(forest.all_roots_provable());
}

#[test]
fn naive_print_produces_r3_and_minimization_recovers_r1() {
    let (sc, j, _) = toy_scenario_3_5();
    let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
    let t7 = tuple_of(&sc, &j, "T7");
    let forest = compute_all_routes(env, &[t7]);
    let routes = enumerate_routes(env, &forest, &[t7], 50);
    assert_eq!(routes.len(), 1);
    let r3 = &routes[0];
    // R3: σ2 σ3 σ4 σ2 σ3 σ4 σ1 σ5 σ8 σ6.
    let names: Vec<&str> = r3
        .steps()
        .iter()
        .map(|s| env.mapping.tgd(s.tgd).name())
        .collect();
    assert_eq!(
        names,
        ["s2", "s3", "s4", "s2", "s3", "s4", "s1", "s5", "s8", "s6"]
    );
    r3.validate(&env, &[t7]).unwrap();

    // R1 = minimal version: σ2 σ3 σ4 σ1 σ5 σ8 σ6 (7 steps, minimal).
    let r1 = minimize_route(&env, r3, &[t7]);
    assert_eq!(r1.len(), 7);
    assert!(is_minimal(&env, &r1, &[t7]));

    // Paper: strat(R1) = strat(R3), rank 6, with blocks
    // {σ1,σ2} {σ3} {σ4} {σ5} {σ8} {σ6}.
    let s1 = stratify(&env, &r1);
    let s3 = stratify(&env, r3);
    assert_eq!(s1, s3);
    assert_eq!(s1.rank(), 6);
    let block_names: Vec<Vec<&str>> = s1
        .blocks()
        .iter()
        .map(|b| b.iter().map(|s| env.mapping.tgd(s.tgd).name()).collect())
        .collect();
    assert_eq!(
        block_names,
        vec![
            vec!["s1", "s2"],
            vec!["s3"],
            vec!["s4"],
            vec!["s5"],
            vec!["s8"],
            vec!["s6"]
        ]
    );
}

#[test]
fn sigma_9_extension_adds_route_r2() {
    // Adding σ9: S3(x) → T5(x) plus S3(a) gives the paper's R2, which
    // bypasses T1 entirely.
    let (mut sc, j, _) = toy_scenario_3_5();
    let s9 = parse_st_tgd(
        sc.mapping.source(),
        sc.mapping.target(),
        &mut sc.pool,
        "s9: S3(x) -> T5(x)",
    )
    .unwrap();
    sc.mapping.add_st_tgd(s9).unwrap();
    let a = sc.pool.str("a");
    let s3_rel = sc.mapping.source().rel_id("S3").unwrap();
    sc.source.insert_ok(s3_rel, &[a]);

    let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
    let t7 = tuple_of(&sc, &j, "T7");
    let forest = compute_all_routes(env, &[t7]);
    let routes = enumerate_routes(env, &forest, &[t7], 50);
    assert!(routes.len() >= 2);
    // R2 = σ9 σ7 σ4 σ8 σ6: witnesses T5 directly from S3 and bypasses T1
    // (and σ1/σ2/σ3) entirely. Some enumerated route must use exactly that
    // step set.
    let r2_set: std::collections::HashSet<&str> =
        ["s9", "s7", "s4", "s8", "s6"].into_iter().collect();
    let step_names = |r: &Route| -> std::collections::HashSet<&str> {
        r.steps()
            .iter()
            .map(|s| env.mapping.tgd(s.tgd).name())
            .collect()
    };
    let r2 = routes
        .iter()
        .find(|r| step_names(r) == r2_set)
        .expect("the paper's R2 is among the enumerated routes");
    r2.validate(&env, &[t7]).unwrap();
    assert_eq!(minimize_route(&env, r2, &[t7]).len(), 5);
}

#[test]
fn example_3_8_compute_one_route_trace() {
    let (sc, j, _) = toy_scenario_3_5();
    let env = RouteEnv::new(&sc.mapping, &sc.source, &j);
    let t7 = tuple_of(&sc, &j, "T7");
    let route = compute_one_route(env, &[t7]).expect("T7 has a route");
    route.validate(&env, &[t7]).unwrap();
    // The paper's trace ends with σ6 after Infer proves T7; ours likewise.
    let names: Vec<&str> = route
        .steps()
        .iter()
        .map(|s| env.mapping.tgd(s.tgd).name())
        .collect();
    assert_eq!(*names.last().unwrap(), "s6");
    // The literal-Infer variant (appending stale triples) also returns a
    // valid — possibly longer — route, exercising Figure 8 verbatim.
    let literal = OneRouteOptions {
        append_stale_triples: true,
        ..OneRouteOptions::default()
    };
    let route2 = compute_one_route_with(env, &[t7], &literal).unwrap();
    route2.validate(&env, &[t7]).unwrap();
    assert!(route2.len() >= route.len());
}

#[test]
fn example_3_2_satisfaction_step_semantics() {
    // Definition 3.1 / Example 3.2 over the Fargo data: the satisfaction
    // step's assignment covers existential variables, unlike a chase step.
    let fargo = routes_gen::fargo_scenario();
    let env = RouteEnv::new(
        &fargo.scenario.mapping,
        &fargo.scenario.source,
        &fargo.solution,
    );
    let t6 = fargo.t[5];
    let route = compute_one_route(env, &[t6]).unwrap();
    assert_eq!(route.len(), 1);
    let step = &route.steps()[0];
    let tgd = env.mapping.tgd(step.tgd);
    assert_eq!(tgd.name(), "m2");
    // Every variable — including the existentials M and I — is assigned.
    assert!(step.hom.iter().len() == tgd.var_count());
    let m_var = (0..tgd.var_count() as u32)
        .find(|&v| tgd.var_name(Var(v)) == "M")
        .unwrap();
    assert!(step.hom[m_var as usize].is_null());
}

#[test]
fn paper_section_3_repeated_use_of_a_tgd_with_different_homs() {
    // The σ: S(x) → ∃y T(x,y) example after Definition 3.1: both T(a,b)
    // and T(a,c) are witnessed by the same tgd with different assignments —
    // disallowed in a chase, required for routes.
    let mut s = Schema::new();
    s.rel("S", &["a"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    let mut pool = ValuePool::new();
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool, "sigma: S(x) -> exists Y: T(x,Y)").unwrap())
        .unwrap();
    let mut i = Instance::new(&s);
    let a = pool.str("a");
    let (b, c) = (pool.str("b"), pool.str("c"));
    i.insert_ok(s.rel_id("S").unwrap(), &[a]);
    let mut j = Instance::new(&t);
    let tr = t.rel_id("T").unwrap();
    let tab = j.insert_ok(tr, &[a, b]);
    let tac = j.insert_ok(tr, &[a, c]);
    let env = RouteEnv::new(&m, &i, &j);
    let route = compute_one_route(env, &[tab, tac]).unwrap();
    route.validate(&env, &[tab, tac]).unwrap();
    assert_eq!(route.len(), 2);
    assert_eq!(route.steps()[0].tgd, route.steps()[1].tgd);
    assert_ne!(route.steps()[0].hom, route.steps()[1].hom);
}
