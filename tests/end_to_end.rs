//! End-to-end smoke tests over every generator family at test scale:
//! generate → chase → select → compute routes → validate.

use mapping_routes::prelude::*;
use routes_gen::hierarchy::{deep_scenario, flat_scenario, DeepRows};
use routes_gen::real::{dblp_scenario, mondial_scenario};
use routes_gen::relational::relational_scenario;
use routes_gen::TpchRows;
use routes_mapping::satisfy::is_solution;

#[test]
fn relational_scenarios_all_join_counts() {
    for joins in 0..=3 {
        let mut sc = relational_scenario(joins, &TpchRows::scale(0.0003), 17);
        let solution = sc.scenario.solution().unwrap().target;
        assert!(is_solution(
            &sc.scenario.mapping,
            &sc.scenario.source,
            &solution
        ));
        let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
        for group in [1usize, 3, 6] {
            let selection = sc.select_from_group(&solution, group, 3, 99);
            assert!(!selection.is_empty());
            let route = compute_one_route(env, &selection)
                .unwrap_or_else(|e| panic!("joins={joins} group={group}: {e}"));
            route.validate(&env, &selection).unwrap();
            // M/T factor = rank of the minimized route for a single tuple.
            let one = sc.select_from_group(&solution, group, 1, 7);
            let r = compute_one_route(env, &one).unwrap();
            let minimal = minimize_route(&env, &r, &one);
            assert_eq!(
                route_rank(&env, &minimal),
                group,
                "joins={joins}: group {group} tuples have rank {group}"
            );
        }
    }
}

#[test]
fn relational_forest_and_enumeration() {
    let mut sc = relational_scenario(1, &TpchRows::scale(0.0003), 18);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = sc.select_from_group(&solution, 4, 2, 5);
    let forest = compute_all_routes(env, &selection);
    assert!(forest.all_roots_provable());
    for route in enumerate_routes(env, &forest, &selection, 20) {
        route.validate(&env, &selection).unwrap();
    }
}

#[test]
fn flat_hierarchy_routes_in_both_findhom_modes() {
    let mut sc = flat_scenario(1, &TpchRows::scale(0.0002), 19);
    let solution = sc.scenario.solution().unwrap().target;
    assert!(is_solution(
        &sc.scenario.mapping,
        &sc.scenario.source,
        &solution
    ));
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = sc.select_from_group(&solution, 2, 4, 3);
    let lazy = compute_one_route(env, &selection).unwrap();
    lazy.validate(&env, &selection).unwrap();
    let eager = compute_one_route_with(
        env,
        &selection,
        &OneRouteOptions {
            eager_findhom: true,
            ..OneRouteOptions::default()
        },
    )
    .unwrap();
    eager.validate(&env, &selection).unwrap();
}

#[test]
fn deep_hierarchy_routes_at_every_depth() {
    let rows = DeepRows {
        regions: 2,
        nations_per: 2,
        customers_per: 2,
        orders_per: 2,
        lineitems_per: 2,
    };
    let mut sc = deep_scenario(&rows, 20);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    for depth in 1..=5 {
        let selection = sc.select_at_depth(&solution, depth, 2, 21);
        assert!(!selection.is_empty(), "depth {depth}");
        let route = compute_one_route(env, &selection).unwrap();
        route.validate(&env, &selection).unwrap();
        // One copying tgd: at most one step per selected element (fewer when
        // two elements share a root-to-leaf path and one step proves both).
        assert!(route.len() <= selection.len(), "depth {depth}");
        assert_eq!(
            route_rank(&env, &route),
            1,
            "depth {depth}: all steps are s-t"
        );
    }
}

#[test]
fn dblp_scenario_routes_and_source_side() {
    let mut sc = dblp_scenario(0.01, 22);
    let solution = sc
        .scenario
        .solution_with(ChaseOptions::fresh())
        .unwrap()
        .target;
    assert!(is_solution(
        &sc.scenario.mapping,
        &sc.scenario.source,
        &solution
    ));
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);

    // Probe a junction tuple: TInProcPublished rows always have routes.
    let rel = env.mapping.target().rel_id("TInProcPublished").unwrap();
    let probe = solution.rel_rows(rel).next().expect("junction populated");
    let route = compute_one_route(env, &[probe]).unwrap();
    route.validate(&env, &[probe]).unwrap();

    // Source side: a D2 paper-author contributes through the d_d2 tgd.
    let pa_rel = env.mapping.source().rel_id("D2PaperAuthor").unwrap();
    let s_probe = sc.scenario.source.rel_rows(pa_rel).next().unwrap();
    let forward = compute_source_routes(env, &[s_probe], 2);
    let names: Vec<&str> = forward
        .exporting_tgds()
        .into_iter()
        .map(|id| env.mapping.tgd(id).name())
        .collect();
    assert_eq!(names, ["d_d2"]);
}

#[test]
fn mondial_scenario_routes_with_egds_applied() {
    let mut sc = mondial_scenario(0.01, 23);
    let result = sc.scenario.solution_with(ChaseOptions::fresh()).unwrap();
    // The key egds actually fired (nulls merged at least once).
    assert!(result.egd_rewrites >= 1, "key egds should merge nulls");
    let solution = result.target;
    assert!(is_solution(
        &sc.scenario.mapping,
        &sc.scenario.source,
        &solution
    ));
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);

    // Each country appears exactly once (the egds deduplicated them).
    let mc = env.mapping.target().rel_id("MCountry").unwrap();
    let country_rel = env.mapping.source().rel_id("Country").unwrap();
    assert_eq!(
        solution.rel_len(mc),
        sc.scenario.source.rel_len(country_rel),
        "key egds collapse duplicate country nodes"
    );

    // Probe a depth-4 element.
    let rel = env.mapping.target().rel_id("MCityPop").unwrap();
    let probe = solution.rel_rows(rel).next().expect("citypops exist");
    let route = compute_one_route(env, &[probe]).unwrap();
    route.validate(&env, &[probe]).unwrap();
}

#[test]
fn debug_session_over_generated_scenario() {
    let mut sc = relational_scenario(2, &TpchRows::scale(0.0003), 24);
    let solution = sc.scenario.solution().unwrap().target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);
    let selection = sc.select_from_group(&solution, 3, 1, 25);
    let route = compute_one_route(env, &selection).unwrap();
    let steps = route.len();
    let mut session = DebugSession::new(env, route);
    let mut count = 0;
    while let Some(event) = session.step() {
        assert_eq!(event.index, count);
        count += 1;
    }
    assert_eq!(count, steps);
    assert!(session.watch().contains(&selection[0]));
}
