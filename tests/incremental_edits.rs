//! Differential gate for the live-mutation subsystem (`routes-incr` +
//! `POST /sessions/{id}/edit`).
//!
//! Three layers:
//!
//! 1. **Library-level campaign** — replay a 200-op seeded campaign
//!    ([`routes_gen::edit_campaign`]) through `apply_batch`, and after
//!    *every* batch assert the incrementally maintained instance, chase
//!    statistics, and null pool are byte-identical to a from-scratch
//!    re-chase of the same text — at worker-pool sizes 1 and 2. A route
//!    forest cache rides along: forests the invalidation analysis keeps
//!    must render byte-identically to a fresh computation over the edited
//!    scenario, and survivors stay in the cache across batches so staleness
//!    would compound (and be caught) rather than reset.
//! 2. **HTTP round-trip** — drive the edit endpoint over real sockets:
//!    cached forests survive unrelated edits (`cached: true` after the
//!    edit), edits touching a forest's support invalidate it, and the
//!    post-edit answers equal those of a session created directly from the
//!    final text. Method/route mismatches answer 405 with an `Allow`
//!    header. Runs under whatever `ROUTES_SESSION_SHARDS` the CI matrix
//!    sets.
//! 3. **Restart replay** — edits are WAL records: a server restarted on
//!    the same data directory reconstructs the edited scenario (same
//!    all-routes bytes) and continues the edit sequence where it left off.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use routes_chase::ChaseOptions;
use routes_cli::{load_scenario_str, prepare_scenario_with, PreparedScenario};
use routes_core::{compute_all_routes, RouteEnv, RouteForest};
use routes_gen::edit_campaign;
use routes_incr::{apply_batch, surviving_selections, IncrState};
use routes_model::{Instance, Schema, TupleId, ValuePool};
use routes_pool::Pool;
use routes_server::json::{parse, Json};
use routes_server::{Server, ServerConfig};
use routes_store::testutil::TempDir;

/// Canonical rendering of a target instance (relation/row/printed values).
fn dump_instance(schema: &Schema, inst: &Instance, values: &ValuePool) -> String {
    let mut out = String::new();
    for (rel, relation) in schema.iter() {
        for (t, row) in inst.rel_tuples(rel) {
            let vs: Vec<String> = row.iter().map(|&v| values.value_to_string(v)).collect();
            out.push_str(&format!(
                "{}[{}]({})\n",
                relation.name(),
                t.row,
                vs.join(", ")
            ));
        }
    }
    out
}

/// Canonical rendering of a route forest (roots, order, every branch).
fn dump_forest(forest: &RouteForest, values: &ValuePool) -> String {
    let mut out = format!("roots: {:?}\norder: {:?}\n", forest.roots, forest.order);
    for &t in &forest.order {
        out.push_str(&format!("node {t:?}\n"));
        for b in forest.branches_of(t) {
            let hom: Vec<String> = b.hom.iter().map(|&v| values.value_to_string(v)).collect();
            out.push_str(&format!(
                "  branch {:?} hom=[{}] lhs={:?} rhs={:?}\n",
                b.tgd,
                hom.join(", "),
                b.lhs_facts,
                b.rhs_tuples
            ));
        }
    }
    out
}

fn prepare(text: &str, workers: &Pool) -> PreparedScenario {
    let loaded = load_scenario_str(text).expect("campaign text loads");
    prepare_scenario_with(loaded, ChaseOptions::fresh(), workers).expect("campaign text chases")
}

fn forest_for(p: &PreparedScenario, sel: &[TupleId]) -> RouteForest {
    let env = RouteEnv::new(&p.mapping, &p.source, &p.target);
    compute_all_routes(env, sel)
}

/// One single-root selection per non-empty target relation (the first row),
/// the forests a live debugging session would plausibly have cached.
fn selections(p: &PreparedScenario) -> Vec<Vec<TupleId>> {
    p.mapping
        .target()
        .iter()
        .filter(|(rel, _)| p.target.rel_len(*rel) > 0)
        .map(|(rel, _)| vec![TupleId { rel, row: 0 }])
        .collect()
}

#[test]
fn campaign_matches_full_rechase_at_every_prefix() {
    // 50 batches x 4 ops = 200 ops, the acceptance floor.
    let campaign = edit_campaign(0xC0FFEE, 50, 4);
    assert!(campaign.total_ops() >= 200);
    for threads in [1usize, 2] {
        let workers = Pool::new(threads);
        let mut text = campaign.scenario.clone();
        let mut scenario = prepare(&text, &workers);
        let mut state = IncrState::default();
        // selection -> forest, maintained exactly like the server's cache:
        // survivors carry over verbatim, the rest recompute on demand.
        let mut cache: HashMap<Vec<TupleId>, RouteForest> = selections(&scenario)
            .into_iter()
            .map(|sel| {
                let f = forest_for(&scenario, &sel);
                (sel, f)
            })
            .collect();
        let mut kept_total = 0usize;
        for (k, ops) in campaign.batches.iter().enumerate() {
            let apply = apply_batch(
                &text,
                &scenario,
                &state,
                ops,
                ChaseOptions::fresh(),
                &workers,
            )
            .unwrap_or_else(|e| panic!("threads {threads} batch {k}: {e}"));
            let fresh = prepare(&apply.text, &workers);

            // The incremental instance is byte-identical to the re-chase.
            assert_eq!(
                dump_instance(
                    apply.scenario.mapping.target(),
                    &apply.scenario.target,
                    &apply.scenario.pool
                ),
                dump_instance(fresh.mapping.target(), &fresh.target, &fresh.pool),
                "threads {threads} batch {k}: target instance diverged"
            );
            assert_eq!(
                apply.scenario.chase_stats, fresh.chase_stats,
                "threads {threads} batch {k}: chase stats diverged"
            );
            assert_eq!(
                apply.scenario.pool.num_nulls(),
                fresh.pool.num_nulls(),
                "threads {threads} batch {k}: null pool diverged"
            );

            // Surviving forests must equal a fresh forest over the edited
            // scenario, rendered byte for byte.
            let keep = surviving_selections(cache.iter(), &apply, &scenario.pool);
            let mut next_cache: HashMap<Vec<TupleId>, RouteForest> = HashMap::new();
            for sel in keep {
                let survivor = cache
                    .remove(&sel)
                    .expect("kept selections come from the cache");
                let recomputed = forest_for(&fresh, &sel);
                assert_eq!(
                    dump_forest(&survivor, &apply.scenario.pool),
                    dump_forest(&recomputed, &fresh.pool),
                    "threads {threads} batch {k}: kept forest for {sel:?} is stale"
                );
                kept_total += 1;
                next_cache.insert(sel, survivor);
            }
            // Re-cache a forest for every populated relation not kept, as
            // the server would on the next all-routes miss.
            for sel in selections(&apply.scenario) {
                next_cache
                    .entry(sel.clone())
                    .or_insert_with(|| forest_for(&apply.scenario, &sel));
            }
            cache = next_cache;

            text = apply.text;
            scenario = apply.scenario;
            state = apply.state;
        }
        assert!(
            kept_total > 0,
            "threads {threads}: the campaign never kept a forest — the \
             invalidation analysis is vacuous"
        );
    }
}

/// Every tuple of an instance by stable id, for before/after comparisons.
fn tuples_by_id(schema: &Schema, inst: &Instance) -> Vec<(TupleId, Vec<routes_model::Value>)> {
    let mut out = Vec::new();
    for (rel, _) in schema.iter() {
        for row in 0..inst.rel_len(rel) {
            let id = TupleId { rel, row };
            out.push((id, inst.tuple(id)));
        }
    }
    out
}

#[test]
fn insert_only_edits_keep_existing_tuple_ids_stable() {
    // Column-store invariant: relations are append-only, so an edit batch
    // that only inserts source tuples must leave every pre-existing
    // `TupleId { rel, row }` resolving to the same values on both sides —
    // the property that lets routes, forests, and WAL records survive
    // edits without id translation.
    let workers = Pool::new(1);
    let mut text = HTTP_SCENARIO.to_owned();
    let mut scenario = prepare(&text, &workers);
    let mut state = IncrState::default();

    let batches: Vec<Vec<routes_store::EditOp>> = vec![
        vec![routes_store::EditOp::InsertTuple {
            line: "S(5, 6)".to_owned(),
        }],
        vec![
            routes_store::EditOp::InsertTuple {
                line: "M(77)".to_owned(),
            },
            routes_store::EditOp::InsertTuple {
                line: "S(5, 9)".to_owned(),
            },
        ],
    ];
    for (k, ops) in batches.iter().enumerate() {
        let before_source = tuples_by_id(scenario.mapping.source(), &scenario.source);
        let before_target = tuples_by_id(scenario.mapping.target(), &scenario.target);
        let apply = apply_batch(
            &text,
            &scenario,
            &state,
            ops,
            ChaseOptions::fresh(),
            &workers,
        )
        .unwrap_or_else(|e| panic!("batch {k}: {e}"));
        for (id, values) in &before_source {
            assert_eq!(
                &apply.scenario.source.tuple(*id),
                values,
                "batch {k}: source tuple {id:?} moved under an insert-only edit"
            );
        }
        for (id, values) in &before_target {
            assert_eq!(
                &apply.scenario.target.tuple(*id),
                values,
                "batch {k}: target tuple {id:?} moved under an insert-only edit"
            );
        }
        // The batch actually grew the instance (new source rows, and the
        // chase derived at least their copies), so the check is not vacuous.
        assert!(
            tuples_by_id(apply.scenario.mapping.source(), &apply.scenario.source).len()
                > before_source.len(),
            "batch {k}: inserts must append source rows"
        );
        assert!(
            tuples_by_id(apply.scenario.mapping.target(), &apply.scenario.target).len()
                > before_target.len(),
            "batch {k}: the delta chase must append derived target rows"
        );
        text = apply.text;
        scenario = apply.scenario;
        state = apply.state;
    }
}

#[test]
fn edit_batch_index_build_work_is_bounded_by_instance_size() {
    // Regression gate for the index-clone fix: cloning an instance (the
    // edit pipeline snapshots the session's instances every batch) must
    // not copy or eagerly rebuild hash indexes. Each edited instance
    // starts with `index_build_rows() == 0` and rebuilds lazily, so the
    // build work attributable to one batch is bounded by a small multiple
    // of the instance size — independent of how many batches preceded it.
    // Under the old deep-copy `#[derive(Clone)]`, work carried over and
    // grew with the batch index, which this bound catches.
    let campaign = edit_campaign(0x0001_DEC5_BEEF, 12, 2);
    let workers = Pool::new(1);
    let mut text = campaign.scenario.clone();
    let mut scenario = prepare(&text, &workers);
    let mut state = IncrState::default();
    for (k, ops) in campaign.batches.iter().enumerate() {
        let apply = apply_batch(
            &text,
            &scenario,
            &state,
            ops,
            ChaseOptions::fresh(),
            &workers,
        )
        .unwrap_or_else(|e| panic!("batch {k}: {e}"));
        let source_rows: u64 = apply
            .scenario
            .mapping
            .source()
            .iter()
            .map(|(rel, _)| u64::from(apply.scenario.source.rel_len(rel)))
            .sum();
        let target_rows: u64 = apply
            .scenario
            .mapping
            .target()
            .iter()
            .map(|(rel, _)| u64::from(apply.scenario.target.rel_len(rel)))
            .sum();
        // Per relation, each distinct probe shape (a handful of single
        // columns plus composites) is built at most once over at most
        // rel_len rows, plus incremental catch-ups for appended rows; 16
        // shapes is a generous ceiling for the campaign's 2-3 column
        // schemas. Accumulated work from prior batches would overflow this
        // within a batch or two.
        let bound = |rows: u64| 16 * (rows + 1);
        assert!(
            apply.scenario.source.index_build_rows() <= bound(source_rows),
            "batch {k}: source index build work {} exceeds 16x instance size {}",
            apply.scenario.source.index_build_rows(),
            source_rows,
        );
        assert!(
            apply.scenario.target.index_build_rows() <= bound(target_rows),
            "batch {k}: target index build work {} exceeds 16x instance size {}",
            apply.scenario.target.index_build_rows(),
            target_rows,
        );
        text = apply.text;
        scenario = apply.scenario;
        state = apply.state;
    }
}

/// A keep-alive HTTP client speaking just enough of the protocol.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    /// One request on the persistent connection; returns status, response
    /// headers (lowercased names), and the parsed JSON body.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, Json) {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).unwrap();
        self.writer.write_all(body.as_bytes()).unwrap();
        self.writer.flush().unwrap();

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_owned();
                if name == "content-length" {
                    content_length = value.parse().unwrap();
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        let text = String::from_utf8(body).unwrap();
        let json = parse(&text).unwrap_or_else(|e| panic!("bad JSON {text:?}: {e}"));
        (status, headers, json)
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// The answer-bearing fields of an all-routes body (everything but the
/// cache-status flag), for cross-session equality checks.
fn answer_of(body: &Json) -> String {
    let mut parts = Vec::new();
    for field in [
        "num_nodes",
        "num_branches",
        "all_roots_provable",
        "roots",
        "nodes",
    ] {
        parts.push(format!(
            "{field}={}",
            body.get(field)
                .unwrap_or_else(|| panic!("all-routes body missing {field}"))
                .encode()
        ));
    }
    parts.join("\n")
}

const HTTP_SCENARIO: &str = "source schema:\n  S(a, b)\n  M(a)\n\
     target schema:\n  T(a, b)\n  V(a)\n\
     dependencies:\n  m: S(x, y) -> T(x, y)\n  cp: M(x) -> V(x)\n\
     source data:\n  S(1, 2)\n  S(3, 4)\n  M(9)\n";

fn create_body(text: &str) -> String {
    format!("{{\"scenario\": {}}}", Json::from(text).encode())
}

fn config_with_dir(dir: &Path) -> ServerConfig {
    ServerConfig {
        threads: 2,
        max_sessions: 8,
        session_shards: 0, // CI pins ROUTES_SESSION_SHARDS to 1 and to 8
        read_timeout: Duration::from_secs(30),
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.spawn().expect("spawn")
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    let (status, _, _) = c.request("POST", "/shutdown", None);
    assert_eq!(status, 200);
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn edit_endpoint_maintains_forests_and_matches_a_fresh_session() {
    let tmp = TempDir::new("incr-http");
    let (addr, handle) = start(config_with_dir(tmp.path()));
    let mut c = Client::connect(addr);

    let (status, _, body) = c.request("POST", "/sessions", Some(&create_body(HTTP_SCENARIO)));
    assert_eq!(status, 201, "{body:?}");
    let id = body.get("session").unwrap().as_u64().unwrap();

    // Warm a forest over T row 0.
    let select = r#"{"tuples": [{"relation": "T", "row": 0}]}"#;
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/all-routes"), Some(select));
    assert_eq!(status, 200);
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(false));

    // An edit far from T row 0: the forest survives and keeps serving
    // cached answers.
    let far = r#"{"ops": [{"op": "insert_tuple", "line": "M(55)"}]}"#;
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/edit"), Some(far));
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("edit_seq").unwrap().as_u64(), Some(1));
    assert_eq!(body.get("ops_applied").unwrap().as_u64(), Some(1));
    assert_eq!(body.get("forests_kept").unwrap().as_u64(), Some(1));
    assert_eq!(body.get("forests_invalidated").unwrap().as_u64(), Some(0));
    assert_eq!(body.get("mapping_changed").unwrap().as_bool(), Some(false));
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/all-routes"), Some(select));
    assert_eq!(status, 200);
    assert_eq!(
        body.get("cached").unwrap().as_bool(),
        Some(true),
        "unrelated edit must not invalidate the forest"
    );

    // An edit deleting S row 0 kills T row 0's forest.
    let near = r#"{"ops": [{"op": "delete_tuple", "relation": "S", "row": 0}]}"#;
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/edit"), Some(near));
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("edit_seq").unwrap().as_u64(), Some(2));
    assert_eq!(body.get("forests_invalidated").unwrap().as_u64(), Some(1));
    let (status, _, edited_answer) =
        c.request("POST", &format!("/sessions/{id}/all-routes"), Some(select));
    assert_eq!(status, 200);
    assert_eq!(edited_answer.get("cached").unwrap().as_bool(), Some(false));

    // The edited session answers exactly like a session created directly
    // from the final text.
    let final_text = "source schema:\n  S(a, b)\n  M(a)\n\
         target schema:\n  T(a, b)\n  V(a)\n\
         dependencies:\n  m: S(x, y) -> T(x, y)\n  cp: M(x) -> V(x)\n\
         source data:\n  S(3, 4)\n  M(9)\n\nsource data:\n  M(55)\n";
    let (status, _, body) = c.request("POST", "/sessions", Some(&create_body(final_text)));
    assert_eq!(status, 201);
    let twin = body.get("session").unwrap().as_u64().unwrap();
    let (status, _, twin_answer) = c.request(
        "POST",
        &format!("/sessions/{twin}/all-routes"),
        Some(select),
    );
    assert_eq!(status, 200);
    assert_eq!(
        answer_of(&edited_answer),
        answer_of(&twin_answer),
        "edited session must answer like a fresh session on the final text"
    );

    // Validation errors are 422 and counted; the text is untouched.
    for bad in [
        r#"{"ops": [{"op": "delete_tuple", "relation": "Nope", "row": 0}]}"#,
        r#"{"ops": [{"op": "warp_core_breach"}]}"#,
        r#"{"ops": []}"#,
        r#"{"ops": [{"op": "insert_tuple", "line": "S(1)"}]}"#,
    ] {
        let (status, _, body) = c.request("POST", &format!("/sessions/{id}/edit"), Some(bad));
        assert_eq!(status, 422, "{bad} -> {body:?}");
    }
    let (status, _, _) = c.request("POST", "/sessions/999999/edit", Some(far));
    assert_eq!(status, 404);

    // Known routes with wrong methods answer 405 + Allow (not 404).
    for (method, path, allow) in [
        ("GET", format!("/sessions/{id}/edit"), "POST"),
        ("DELETE", format!("/sessions/{id}/all-routes"), "POST"),
        ("PATCH", "/sessions".to_owned(), "POST"),
        ("POST", "/metrics".to_owned(), "GET"),
        ("GET", "/shutdown".to_owned(), "POST"),
    ] {
        let (status, headers, _) = c.request(method, &path, None);
        assert_eq!(status, 405, "{method} {path}");
        assert_eq!(header(&headers, "allow"), Some(allow), "{method} {path}");
    }

    // The metrics edits block accounts for all of the above.
    let (status, _, m) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let edits = m.get("edits").expect("edits block in /metrics");
    assert_eq!(edits.get("applied").unwrap().as_u64(), Some(2));
    assert_eq!(edits.get("ops_applied").unwrap().as_u64(), Some(2));
    assert_eq!(edits.get("rejected").unwrap().as_u64(), Some(4));
    assert_eq!(edits.get("forests_kept").unwrap().as_u64(), Some(1));
    assert_eq!(edits.get("forests_invalidated").unwrap().as_u64(), Some(1));

    shutdown(addr, handle);
}

#[test]
fn restart_replays_edit_records_to_the_same_state() {
    let tmp = TempDir::new("incr-restart");
    let select = r#"{"tuples": [{"relation": "T", "row": 0}]}"#;

    // First life: create, edit twice (data and mapping), record the answer.
    let (addr, handle) = start(config_with_dir(tmp.path()));
    let mut c = Client::connect(addr);
    let (status, _, body) = c.request("POST", "/sessions", Some(&create_body(HTTP_SCENARIO)));
    assert_eq!(status, 201);
    let id = body.get("session").unwrap().as_u64().unwrap();
    let batch1 = r#"{"ops": [
        {"op": "insert_tuple", "line": "S(7, 8)"},
        {"op": "delete_tuple", "relation": "M", "row": 0}
    ]}"#;
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/edit"), Some(batch1));
    assert_eq!(status, 200, "{body:?}");
    let batch2 = r#"{"ops": [{"op": "add_tgd", "line": "g0: S(x, y) -> V(y)"}]}"#;
    let (status, _, body) = c.request("POST", &format!("/sessions/{id}/edit"), Some(batch2));
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("edit_seq").unwrap().as_u64(), Some(2));
    let (status, _, before) =
        c.request("POST", &format!("/sessions/{id}/all-routes"), Some(select));
    assert_eq!(status, 200);
    shutdown(addr, handle);

    // Second life: the replayed session must answer byte-identically and
    // continue the edit sequence at 3.
    let (addr, handle) = start(config_with_dir(tmp.path()));
    let mut c = Client::connect(addr);
    let (status, _, after) = c.request("POST", &format!("/sessions/{id}/all-routes"), Some(select));
    assert_eq!(status, 200, "replayed session must be live: {after:?}");
    assert_eq!(
        answer_of(&before),
        answer_of(&after),
        "restart must reconstruct the edited scenario exactly"
    );
    let (status, _, body) = c.request(
        "POST",
        &format!("/sessions/{id}/edit"),
        Some(r#"{"ops": [{"op": "drop_tgd", "name": "g0"}]}"#),
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(
        body.get("edit_seq").unwrap().as_u64(),
        Some(3),
        "the edit sequence continues across restarts"
    );
    shutdown(addr, handle);
}
