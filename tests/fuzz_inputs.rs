//! No-panic fuzzing of every text entry point: the dependency parser and
//! the scenario-file loader must return `Ok` or `Err` on arbitrary input —
//! never panic. (Malformed files are the common case for a debugger tool.)
//!
//! Ported from `proptest` to seeded deterministic loops over the in-repo
//! PRNG; the original case counts (2048 parser cases, 1024 loader cases)
//! are preserved, and the historical proptest regression seed is folded
//! into an explicit unit test below.

use routes_cli::load_scenario_str;
use routes_gen::Rng;
use routes_mapping::{parse_dependency, parse_egd, parse_st_tgd, parse_target_tgd};
use routes_model::{Schema, ValuePool};

fn schemas() -> (Schema, Schema) {
    let mut s = Schema::new();
    s.rel("S", &["a", "b"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    (s, t)
}

/// A random string of up to `max` chars drawn from an alphabet.
fn from_alphabet(rng: &mut Rng, alphabet: &[char], max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Printable ASCII, `[ -~]{0,max}`.
fn printable(rng: &mut Rng, max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| char::from(rng.gen_range(0x20..=0x7Eu8)))
        .collect()
}

/// Arbitrary unicode (any scalar value, like proptest's `any::<String>()`).
fn arbitrary_unicode(rng: &mut Rng, max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| loop {
            if let Some(c) = char::from_u32(rng.gen_range(0..=0x10FFFFu32)) {
                break c;
            }
        })
        .collect()
}

/// Inputs biased toward parser-shaped text (pure random strings rarely get
/// past the tokenizer). Mirrors the original strategy's 2:2:1:1:1 weights.
fn parserish(rng: &mut Rng) -> String {
    const TOKENS: &[char] = &[
        'S', 'T', 'a', 'b', '(', ')', ',', '&', '>', ':', '=', '#', '\'', '0', '1', '2', '3', '4',
        '5', '6', '7', '8', '9', ' ', '-',
    ];
    match rng.gen_range(0..7usize) {
        0 | 1 => printable(rng, 60),
        2 | 3 => from_alphabet(rng, TOKENS, 60),
        4 => arbitrary_unicode(rng, 24),
        5 => "m: S(x,y) -> T(x,".to_owned(), // truncated
        _ => "S(x,y) -> T(x,y) extra".to_owned(),
    }
}

#[test]
fn dependency_parsers_never_panic() {
    for case in 0..2048u64 {
        let mut rng = Rng::seed_from_u64(0xF022 + case);
        let text = parserish(&mut rng);
        let (s, t) = schemas();
        let mut pool = ValuePool::new();
        let _ = parse_st_tgd(&s, &t, &mut pool, &text);
        let _ = parse_target_tgd(&t, &mut pool, &text);
        let _ = parse_egd(&t, &mut pool, &text);
        let _ = parse_dependency(&s, &t, &mut pool, &text);
    }
}

/// Scenario-file-shaped fuzz: random section headers, random body lines.
fn scenarioish(rng: &mut Rng) -> String {
    const LINES: &[&str] = &[
        "source schema:",
        "target schema:",
        "source xml schema:",
        "dependencies:",
        "source data:",
        "source xml data:",
        "target data:",
        "  S(a, b)",
        "  S(1, 'x')",
        "  m: S(x,y) -> T(x,y)",
        "    Nested(1)",
    ];
    let n = rng.gen_range(0..14usize);
    let lines: Vec<String> = (0..n)
        .map(|_| {
            // 3 parts random printable to 1 part each fixed line.
            if rng.gen_range(0..LINES.len() + 3) < 3 {
                printable(rng, 40)
            } else {
                LINES[rng.gen_range(0..LINES.len())].to_owned()
            }
        })
        .collect();
    lines.join("\n")
}

#[test]
fn scenario_loader_never_panics() {
    for case in 0..1024u64 {
        let mut rng = Rng::seed_from_u64(0x10AD + case);
        let text = scenarioish(&mut rng);
        let _ = load_scenario_str(&text);
    }
}

/// Historical proptest regression (from the retired
/// `fuzz_inputs.proptest-regressions` seed file): a flat `source schema:`
/// section followed by an xml schema section redeclaring the same relation
/// once panicked instead of reporting a conflict.
#[test]
fn regression_duplicate_relation_across_flat_and_xml_schema() {
    let text = "source schema:\nsource xml schema:\n  S(a, b)\n  S(a, b)";
    let _ = load_scenario_str(text);
}
