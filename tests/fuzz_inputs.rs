//! No-panic fuzzing of every text entry point: the dependency parser and
//! the scenario-file loader must return `Ok` or `Err` on arbitrary input —
//! never panic. (Malformed files are the common case for a debugger tool.)

use proptest::prelude::*;

use routes_cli::load_scenario_str;
use routes_mapping::{parse_dependency, parse_egd, parse_st_tgd, parse_target_tgd};
use routes_model::{Schema, ValuePool};

fn schemas() -> (Schema, Schema) {
    let mut s = Schema::new();
    s.rel("S", &["a", "b"]);
    let mut t = Schema::new();
    t.rel("T", &["a", "b"]);
    (s, t)
}

/// Inputs biased toward parser-shaped text (pure random strings rarely get
/// past the tokenizer).
fn parserish() -> impl Strategy<Value = String> {
    prop_oneof![
        2 => "[ -~]{0,60}",                    // printable ASCII
        2 => "[STab(),&>:=#'0-9 \\-]{0,60}",  // token alphabet
        1 => any::<String>(),                  // arbitrary unicode
        1 => Just("m: S(x,y) -> T(x,".to_owned()), // truncated
        1 => Just("S(x,y) -> T(x,y) extra".to_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn dependency_parsers_never_panic(text in parserish()) {
        let (s, t) = schemas();
        let mut pool = ValuePool::new();
        let _ = parse_st_tgd(&s, &t, &mut pool, &text);
        let _ = parse_target_tgd(&t, &mut pool, &text);
        let _ = parse_egd(&t, &mut pool, &text);
        let _ = parse_dependency(&s, &t, &mut pool, &text);
    }
}

/// Scenario-file-shaped fuzz: random section headers, random body lines.
fn scenarioish() -> impl Strategy<Value = String> {
    let line = prop_oneof![
        3 => "[ -~]{0,40}",
        1 => Just("source schema:".to_owned()),
        1 => Just("target schema:".to_owned()),
        1 => Just("source xml schema:".to_owned()),
        1 => Just("dependencies:".to_owned()),
        1 => Just("source data:".to_owned()),
        1 => Just("source xml data:".to_owned()),
        1 => Just("target data:".to_owned()),
        1 => Just("  S(a, b)".to_owned()),
        1 => Just("  S(1, 'x')".to_owned()),
        1 => Just("  m: S(x,y) -> T(x,y)".to_owned()),
        1 => Just("    Nested(1)".to_owned()),
    ];
    prop::collection::vec(line, 0..14).prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn scenario_loader_never_panics(text in scenarioish()) {
        let _ = load_scenario_str(&text);
    }
}
