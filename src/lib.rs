//! **mapping-routes** — a from-scratch Rust implementation of
//! *Debugging Schema Mappings with Routes* (Chiticariu & Tan, VLDB 2006).
//!
//! A schema mapping `M = (S, T, Σst, Σt)` declares how data under a source
//! schema translates into data under a target schema, via tuple-generating
//! dependencies (tgds) and equality-generating dependencies (egds). This
//! crate family implements the paper's *route* debugger — explanations of
//! how selected target (or source) data is witnessed by the mapping — along
//! with every substrate it needs: a relational store, a conjunctive-query
//! evaluator, the dependency language with a text parser, the chase (data
//! exchange engine), and a nested-relational model for XML-style schemas.
//!
//! # Quickstart
//!
//! ```
//! use mapping_routes::prelude::*;
//!
//! // Schemas.
//! let mut s = Schema::new();
//! s.rel("Cards", &["cardNo", "limit", "ssn"]);
//! let mut t = Schema::new();
//! t.rel("Accounts", &["accNo", "limit", "accHolder"]);
//!
//! // The mapping: one s-t tgd written in the paper's syntax.
//! let mut pool = ValuePool::new();
//! let mut m = SchemaMapping::new(s.clone(), t.clone());
//! m.add_st_tgd(parse_st_tgd(&s, &t, &mut pool,
//!     "m1: Cards(cn, l, s) -> Accounts(cn, l, s)").unwrap()).unwrap();
//!
//! // A source instance, and a solution produced by the chase.
//! let mut i = Instance::new(&s);
//! i.insert_ok(s.rel_id("Cards").unwrap(),
//!     &[Value::Int(6689), Value::Int(15), Value::Int(434)]);
//! let j = chase(&m, &i, &mut pool, ChaseOptions::fresh()).unwrap().target;
//!
//! // Probe a target tuple: why is it there?
//! let env = RouteEnv::new(&m, &i, &j);
//! let probe = j.all_rows().next().unwrap();
//! let route = compute_one_route(env, &[probe]).unwrap();
//! assert_eq!(route.len(), 1);
//! println!("{}", route_to_string(&pool, &env, &route));
//! ```
//!
//! # Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`model`] | `routes-model` | values, schemas, instances, indexes |
//! | [`query`] | `routes-query` | conjunctive-query evaluation |
//! | [`mapping`] | `routes-mapping` | tgds/egds, parser, satisfaction |
//! | [`chase`] | `routes-chase` | data exchange (standard + Skolem chase) |
//! | [`routes`] | `routes-core` | the paper: findHom, route forests, one-route, debugger |
//! | [`nested`] | `routes-nested` | hierarchical schemas and their encoding |
//! | [`generators`] | `routes-gen` | the evaluation's workload generators |

pub use routes_chase as chase;
pub use routes_core as routes;
pub use routes_gen as generators;
pub use routes_mapping as mapping;
pub use routes_model as model;
pub use routes_nested as nested;
pub use routes_query as query;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use routes_chase::{chase, ChaseError, ChaseOptions, ChaseResult, NullMode};
    pub use routes_core::{
        alternative_routes, compute_all_routes, compute_one_route, compute_one_route_with,
        compute_source_routes, enumerate_routes, is_minimal, minimize_route, route_rank,
        route_to_string, step_to_string, stratify, DebugSession, OneRouteOptions, Route, RouteEnv,
        RouteForest, SatisfactionStep,
    };
    pub use routes_mapping::{
        parse_dependency, parse_egd, parse_st_tgd, parse_target_tgd, Dependency, Egd,
        SchemaMapping, Tgd, TgdId, TgdKind,
    };
    pub use routes_model::{
        Atom, Fact, Instance, RelId, Schema, Side, Term, TupleId, Value, ValuePool, Var,
    };
    pub use routes_nested::{
        copy_tree_tgd, decode_instance, encode_instance, encode_schema, to_xmlish, NestedInstance,
        NestedSchema,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let mut s = Schema::new();
        s.rel("R", &["a"]);
        let _ = Instance::new(&s);
        let _ = ValuePool::new();
        let _ = ChaseOptions::fresh();
    }
}
