//! Hierarchical (XML-style) debugging on the Mondial scenario — the
//! relational-to-XML direction of paper §4.2, plus routes for selected
//! *source* data (§3.4).
//!
//! The relational Mondial source is exchanged into a depth-4 nested target;
//! we decode a fragment of the solution back into a tree, probe a nested
//! city element, and then ask the dual question: which tgds export a given
//! source tuple?
//!
//! ```sh
//! cargo run --release --example xml_mondial
//! ```

use mapping_routes::prelude::*;
use routes_gen::real::mondial_scenario;

fn main() {
    let mut sc = mondial_scenario(0.02, 11);
    println!(
        "Mondial scenario: {} source tuples, {} s-t tgds, {} target tgds",
        sc.scenario.source.total_tuples(),
        sc.scenario.mapping.st_tgds().len(),
        sc.scenario.mapping.target_tgds().len(),
    );

    // Standard chase, as the cleanest stand-in for Clio's materialization.
    let solution = sc
        .scenario
        .solution_with(ChaseOptions::fresh())
        .expect("chase succeeds")
        .target;
    println!("solution: {} target tuples\n", solution.total_tuples());
    let pool = &sc.scenario.pool;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);

    // Probe a deeply nested element: a city-population record (depth 4).
    let citypop_rel = env.mapping.target().rel_id("MCityPop").expect("exists");
    let probe = solution
        .rel_rows(citypop_rel)
        .next()
        .expect("solution has city populations");
    println!(
        "probing nested element {}",
        routes_model::tuple_to_string(pool, env.mapping.target(), env.target, probe)
    );
    // XML mode: eager findHom, as the paper's Saxon-backed implementation.
    let options = OneRouteOptions {
        eager_findhom: true,
        ..OneRouteOptions::default()
    };
    let route = compute_one_route_with(env, &[probe], &options).expect("has a route");
    println!("route ({} steps):", route.len());
    print!("{}", route_to_string(pool, &env, &route));
    route.validate(&env, &[probe]).expect("valid");

    // Routes for selected source data: who exports this Country row?
    let country_rel = env.mapping.source().rel_id("Country").expect("exists");
    let source_probe = sc.scenario.source.rel_rows(country_rel).next().unwrap();
    println!(
        "\nselected source tuple {}",
        routes_model::tuple_to_string(pool, env.mapping.source(), env.source, source_probe)
    );
    let forward = compute_source_routes(env, &[source_probe], 2);
    let mut exporters: Vec<&str> = forward
        .exporting_tgds()
        .into_iter()
        .map(|id| env.mapping.tgd(id).name())
        .collect();
    exporters.sort();
    println!("tgds exporting it: {exporters:?}");
    println!(
        "target tuples it reaches within 2 steps: {}",
        forward.reached_targets().len()
    );
    assert!(!exporters.is_empty());

    // Decode one country subtree of the solution back into XML-ish form.
    // (Render a small fresh scenario so the output stays readable.)
    let mut tiny = mondial_scenario(0.004, 12);
    let tiny_solution = tiny
        .scenario
        .solution_with(ChaseOptions::fresh())
        .expect("chase succeeds")
        .target;
    let nested_schema = tiny.nested_target.as_ref().expect("Mondial2 is nested");
    let nested = decode_instance(nested_schema, &encode_schema(nested_schema), &tiny_solution);
    let xml = to_xmlish(nested_schema, &nested, &tiny.scenario.pool);
    let head: String = xml.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\nfirst lines of the decoded XML target:\n{head}\n...");
}
