//! The complete Clio-style workflow the paper describes (§1-§2), end to
//! end: schema matching produces *value correspondences*, correspondences
//! are compiled into a schema mapping, the generated mapping "needs to be
//! further refined before it accurately reflects the user's intention" —
//! and routes are how you find out where.
//!
//! 1. Compile Figure 1's arrows (including the bad `maidenName → name` one,
//!    and *without* the `f1` foreign key) into s-t tgds.
//! 2. Chase a solution, probe the suspicious tuples, and let the routes
//!    point at the faulty correspondences — Scenarios 1 and 3 re-derived
//!    from correspondence level.
//! 3. Fix the correspondences, declare `f1`, regenerate, and diff the
//!    solutions.
//!
//! ```sh
//! cargo run --example generated_mapping
//! ```

use mapping_routes::prelude::*;
use routes_chase::{impact_to_string, mapping_impact};
use routes_mapping::{generate_mapping, tgd_to_string, Correspondence, ForeignKey};

fn corr(s: &Schema, t: &Schema, src: (&str, &str), dst: (&str, &str)) -> Correspondence {
    let srel = s.rel_id(src.0).unwrap();
    let scol = s.relation(srel).attr_position(src.1).unwrap() as u32;
    let trel = t.rel_id(dst.0).unwrap();
    let tcol = t.relation(trel).attr_position(dst.1).unwrap() as u32;
    Correspondence {
        source: (srel, scol),
        target: (trel, tcol),
    }
}

fn main() {
    // Figure 1's schemas and test data (from the shared fixture).
    let fargo = routes_gen::fargo_scenario();
    let s = fargo.scenario.mapping.source().clone();
    let t = fargo.scenario.mapping.target().clone();
    let source = &fargo.scenario.source;
    let mut pool = fargo.scenario.pool.clone();

    // The target fk Accounts.accHolder → Clients.ssn (drives m4 and pulls
    // Clients into Accounts-anchored mappings, like the paper's m1).
    let target_fk = ForeignKey {
        name: "m4".into(),
        child: t.rel_id("Accounts").unwrap(),
        child_cols: vec![2],
        parent: t.rel_id("Clients").unwrap(),
        parent_cols: vec![0],
    };

    // --- Step 1: Figure 1's arrows, verbatim (bugs included) ---------------
    let buggy_arrows = vec![
        corr(&s, &t, ("Cards", "cardNo"), ("Accounts", "accNo")),
        corr(&s, &t, ("Cards", "limit"), ("Accounts", "limit")),
        corr(&s, &t, ("Cards", "ssn"), ("Accounts", "accHolder")),
        corr(&s, &t, ("Cards", "ssn"), ("Clients", "ssn")),
        corr(&s, &t, ("Cards", "maidenName"), ("Clients", "name")), // bug 1
        corr(&s, &t, ("Cards", "maidenName"), ("Clients", "maidenName")),
        corr(&s, &t, ("Cards", "salary"), ("Clients", "income")),
        // (no Cards.location → Clients.address: bug 2, the missing arrow)
        corr(&s, &t, ("SupplementaryCards", "ssn"), ("Clients", "ssn")),
        corr(&s, &t, ("SupplementaryCards", "name"), ("Clients", "name")),
        corr(
            &s,
            &t,
            ("SupplementaryCards", "address"),
            ("Clients", "address"),
        ),
        corr(&s, &t, ("FBAccounts", "ssn"), ("Clients", "ssn")),
        corr(&s, &t, ("FBAccounts", "name"), ("Clients", "name")),
        corr(&s, &t, ("FBAccounts", "income"), ("Clients", "income")),
        corr(&s, &t, ("FBAccounts", "address"), ("Clients", "address")),
        corr(&s, &t, ("CreditCards", "cardNo"), ("Accounts", "accNo")),
        corr(
            &s,
            &t,
            ("CreditCards", "creditLimit"),
            ("Accounts", "limit"),
        ),
        corr(
            &s,
            &t,
            ("CreditCards", "custSSN"),
            ("Accounts", "accHolder"),
        ),
    ];
    // Bug 3: f1 (SupplementaryCards.accNo → Cards.cardNo) is not declared,
    // and neither is f2 — so no source joins are generated.
    let generated = generate_mapping(&s, &t, &[], std::slice::from_ref(&target_fk), &buggy_arrows)
        .expect("generation succeeds");
    println!("=== generated mapping (from Figure 1's correspondences) ===\n");
    for tgd in generated.st_tgds() {
        println!("  {}", tgd_to_string(&pool, &s, &t, tgd));
    }
    for tgd in generated.target_tgds() {
        println!("  {}", tgd_to_string(&pool, &t, &t, tgd));
    }

    // --- Step 2: debug it with routes --------------------------------------
    let j = routes_chase::chase(&generated, source, &mut pool, ChaseOptions::fresh())
        .expect("chase succeeds")
        .target;
    let env = RouteEnv::new(&generated, source, &j);
    let clients = t.rel_id("Clients").unwrap();

    // J. Long's client tuple shows the Scenario 1 symptoms again.
    let suspicious = j
        .rel_rows(clients)
        .find(|&id| j.tuple(id)[0] == Value::Int(434))
        .expect("client 434 exists");
    let vals = j.tuple(suspicious);
    println!(
        "\nprobing {}:",
        routes_model::tuple_to_string(&pool, &t, &j, suspicious)
    );
    assert_eq!(
        pool.value_to_string(vals[1]),
        "Smith",
        "name = maiden name (bug 1)"
    );
    assert!(vals[4].is_null(), "address is a null (bug 2)");
    let route = compute_one_route(env, &[suspicious]).unwrap();
    print!("{}", route_to_string(&pool, &env, &route));
    println!(
        "the route's assignment shows Clients.name bound to the maidenName\n\
         variable and no source value reaching address: two bad arrows."
    );

    // --- Step 3: fix the arrows and the fks, regenerate ---------------------
    let mut fixed_arrows = buggy_arrows.clone();
    for c in &mut fixed_arrows {
        if *c == corr(&s, &t, ("Cards", "maidenName"), ("Clients", "name")) {
            *c = corr(&s, &t, ("Cards", "name"), ("Clients", "name"));
        }
    }
    fixed_arrows.push(corr(&s, &t, ("Cards", "location"), ("Clients", "address")));
    let f1 = ForeignKey {
        name: "f1".into(),
        child: s.rel_id("SupplementaryCards").unwrap(),
        child_cols: vec![0],
        parent: s.rel_id("Cards").unwrap(),
        parent_cols: vec![0],
    };
    let f2 = ForeignKey {
        name: "f2".into(),
        child: s.rel_id("CreditCards").unwrap(),
        child_cols: vec![2],
        parent: s.rel_id("FBAccounts").unwrap(),
        parent_cols: vec![1],
    };
    let regenerated = generate_mapping(
        &s,
        &t,
        &[f1, f2],
        std::slice::from_ref(&target_fk),
        &fixed_arrows,
    )
    .expect("regeneration succeeds");
    println!("\n=== regenerated mapping (fixed arrows + f1, f2) ===\n");
    for tgd in regenerated.st_tgds() {
        println!("  {}", tgd_to_string(&pool, &s, &t, tgd));
    }

    // The regenerated tgds have the paper's corrected shapes: m3' joins on
    // the shared ssn, m2' joins the sponsoring card.
    let texts: Vec<String> = regenerated
        .st_tgds()
        .iter()
        .map(|g| tgd_to_string(&pool, &s, &t, g))
        .collect();
    assert!(texts
        .iter()
        .any(|x| x.contains("SupplementaryCards(") && x.contains("& Cards(")));
    assert!(texts
        .iter()
        .any(|x| x.contains("CreditCards(") && x.contains("& FBAccounts(")));

    println!("\n=== impact of the regeneration ===\n");
    let report = mapping_impact(
        &generated,
        &regenerated,
        source,
        &mut pool,
        ChaseOptions::fresh(),
    )
    .expect("both chases succeed");
    print!("{}", impact_to_string(&pool, &t, &report, 30));
    assert!(!report.is_noop());

    // The fixed solution has no Smith-as-name row and gives J. Long a
    // Seattle address.
    let j2 = routes_chase::chase(&regenerated, source, &mut pool, ChaseOptions::fresh())
        .unwrap()
        .target;
    let fixed_row = j2
        .rel_rows(clients)
        .find(|&id| j2.tuple(id)[0] == Value::Int(434))
        .unwrap();
    let vals = j2.tuple(fixed_row);
    assert_eq!(pool.value_to_string(vals[1]), "J. Long");
    assert_eq!(pool.value_to_string(vals[4]), "Seattle");
    println!(
        "\nJ. Long's row is now {} — all three §2.1 bugs fixed at the\n\
         correspondence level, with routes pointing the way.",
        routes_model::tuple_to_string(&pool, &t, &j2, fixed_row)
    );
}
