//! Mapping evolution: apply the paper's §2.1 fixes and watch how the
//! solution changes — the Scenario 1 future-work feature ("demonstrate how
//! the modification of m1 to m1' affects tuples in J") — and let the chase's
//! egd support find a conflict the paper's toolchain could not see.
//!
//! ```sh
//! cargo run --example mapping_evolution
//! ```

use mapping_routes::prelude::*;
use routes_chase::{history_to_string, impact_to_string, mapping_impact};
use routes_gen::fargo_scenario;
use routes_mapping::satisfy::is_solution;

const M1_FIXED: &str =
    "m1: Cards(cn, l, s, n, m, sal, loc) -> Accounts(cn, l, s) & Clients(s, n, m, sal, loc)";
const M2_FIXED: &str =
    "m2: Cards(cn, l, s1, n1, m, sal, loc) & SupplementaryCards(cn, s2, n2, a) -> \
     exists M, I: Clients(s2, n2, M, I, a) & Accounts(cn, l, s2)";
const M3_FIXED: &str = "m3: FBAccounts(bn, cs, n, i, a) & CreditCards(cn, cl, cs) -> \
     exists M: Accounts(cn, cl, cs) & Clients(cs, n, M, i, a)";
const M4: &str = "m4: Accounts(a, l, s) -> exists N, M, I, A: Clients(s, N, M, I, A)";
const M5: &str = "m5: Clients(s, n, m, i, a) -> exists N, L: Accounts(N, L, s)";
const M6: &str = "m6: Accounts(a, l, s) & Accounts(a2, l2, s) -> l = l2";

fn build_mapping(
    s: &Schema,
    t: &Schema,
    pool: &mut ValuePool,
    st: &[&str],
    egds: &[&str],
) -> SchemaMapping {
    let mut m = SchemaMapping::new(s.clone(), t.clone());
    for text in st {
        m.add_st_tgd(parse_st_tgd(s, t, pool, text).expect("tgd parses"))
            .expect("tgd valid");
    }
    for text in [M4, M5] {
        m.add_target_tgd(parse_target_tgd(t, pool, text).unwrap())
            .unwrap();
    }
    for text in egds {
        m.add_egd(parse_egd(t, pool, text).unwrap()).unwrap();
    }
    m
}

fn main() {
    let fargo = fargo_scenario();
    let original = &fargo.scenario.mapping;
    let mut pool = fargo.scenario.pool.clone();
    let s = original.source().clone();
    let t = original.target().clone();
    let source = &fargo.scenario.source;

    // --- Step 1: the Scenario 1 fix alone (m1 → m1') ------------------------
    println!("=== step 1: impact of fixing m1 alone (Scenario 1) ===\n");
    let m1_only = build_mapping(
        &s,
        &t,
        &mut pool,
        &[
            M1_FIXED,
            "m2: SupplementaryCards(an, s, n, a) -> exists M, I: Clients(s, n, M, I, a)",
            "m3: FBAccounts(bn, s, n, i, a) & CreditCards(cn, cl, cs) -> \
               exists M: Accounts(cn, cl, cs) & Clients(cs, n, M, i, a)",
        ],
        &[M6],
    );
    let report = mapping_impact(original, &m1_only, source, &mut pool, ChaseOptions::fresh())
        .expect("both chases succeed");
    print!("{}", impact_to_string(&pool, &t, &report, 30));
    assert!(report
        .removed
        .iter()
        .any(|((_, vals), _)| pool.value_to_string(vals[1]) == "Smith"));
    assert!(report
        .added
        .iter()
        .any(|((_, vals), _)| pool.value_to_string(vals[4]) == "Seattle"));

    // --- Step 2: all three fixes + the original egd m6 ----------------------
    println!("\n=== step 2: all three fixes (m1', m2', m3') with egd m6 ===\n");
    let fully_fixed_with_m6 =
        build_mapping(&s, &t, &mut pool, &[M1_FIXED, M2_FIXED, M3_FIXED], &[M6]);
    match routes_chase::chase(
        &fully_fixed_with_m6,
        source,
        &mut pool,
        ChaseOptions::fresh(),
    ) {
        Err(ChaseError::Failed { egd, .. }) => {
            println!(
                "chase FAILED on egd `{egd}`: after m2', supplementary holder 234 keeps the\n\
                 sponsoring card's 15K account, while m3' gives the same holder a 2K Fargo\n\
                 Bank account — m6 (one credit limit per holder) admits NO solution on this\n\
                 data. The paper's toolchain could not execute egds (§2), so this latent\n\
                 conflict in the *corrected* mapping was invisible; our chase surfaces it\n\
                 as a debugging signal."
            );
        }
        other => panic!("expected an egd conflict, got {other:?}"),
    }

    // --- Step 3: Alice replaces m6 with the Scenario 2 suggestion -----------
    // ("Alice may also decide to enforce ssn as a key of the relation
    // Clients, which can be expressed as egds.")
    println!("\n=== step 3: fixes with ssn-as-key-of-Clients egds instead ===\n");
    let key_egds = [
        "k1: Clients(s, n, m, i, a) & Clients(s, n2, m2, i2, a2) -> n = n2",
        "k2: Clients(s, n, m, i, a) & Clients(s, n2, m2, i2, a2) -> m = m2",
        "k3: Clients(s, n, m, i, a) & Clients(s, n2, m2, i2, a2) -> i = i2",
        "k4: Clients(s, n, m, i, a) & Clients(s, n2, m2, i2, a2) -> a = a2",
    ];
    let final_mapping = build_mapping(
        &s,
        &t,
        &mut pool,
        &[M1_FIXED, M2_FIXED, M3_FIXED],
        &key_egds,
    );
    let result = routes_chase::chase(&final_mapping, source, &mut pool, ChaseOptions::fresh())
        .expect("the key egds are consistent on this data");
    assert!(is_solution(&final_mapping, source, &result.target));
    println!(
        "chase succeeded: {} target tuples, {} egd merge(s).",
        result.target.total_tuples(),
        result.egd_log.len()
    );
    assert!(!result.egd_log.is_empty());
    println!("\negd provenance (which keys merged which values):");
    let mut shown = std::collections::HashSet::new();
    for merge in &result.egd_log {
        if shown.insert(merge.resolved) {
            print!(
                "{}",
                history_to_string(&pool, &result.egd_log, merge.resolved)
            );
        }
    }

    // The key egds filled A. Long's unknown income with 30K (m2' invented a
    // null; m3' knows the Fargo Bank income).
    let clients = t.rel_id("Clients").unwrap();
    let along_rows: Vec<Vec<Value>> = result
        .target
        .rel_rows(clients)
        .map(|id| result.target.tuple(id))
        .filter(|vals| vals[0] == Value::Int(234))
        .collect();
    assert_eq!(
        along_rows.len(),
        1,
        "key egds collapse holder 234 to one row"
    );
    assert_eq!(pool.value_to_string(along_rows[0][3]), "30K");
    println!(
        "\nholder 234 now has a single Clients row with income 30K — the key egds\n\
         combined what m2' and m3' each knew. Scenario 1's null addresses are gone:"
    );
    for (_, vals) in result.target.rel_tuples(clients) {
        assert!(vals[4].is_constant(), "all addresses concrete");
    }
    println!("every Clients row carries a concrete address.");
}
