//! Debugging a synthetic TPC-H data-exchange scenario — the workload family
//! from the paper's evaluation (§4.1), at interactive scale.
//!
//! Builds the 1-join relational scenario `M1` (TPC-H source, six target
//! "copy groups"), chases a solution, probes a group-3 tuple (M/T factor 3),
//! and contrasts `ComputeOneRoute` with the full route forest.
//!
//! ```sh
//! cargo run --release --example tpch_debugging
//! ```

use std::time::Instant;

use mapping_routes::prelude::*;
use routes_gen::relational::relational_scenario;
use routes_gen::TpchRows;

fn main() {
    // "10 MB"-class instance at a demo-friendly scale.
    let mut sc = relational_scenario(1, &TpchRows::scale(0.002), 42);
    println!(
        "scenario {}: {} source tuples, {} s-t tgds, {} target tgds",
        sc.scenario.name,
        sc.scenario.source.total_tuples(),
        sc.scenario.mapping.st_tgds().len(),
        sc.scenario.mapping.target_tgds().len(),
    );

    let start = Instant::now();
    let result = sc.scenario.solution().expect("chase succeeds");
    println!(
        "chased a solution with {} tuples in {} rounds ({:.2?})",
        result.target.total_tuples(),
        result.rounds,
        start.elapsed()
    );
    let solution = result.target;
    let env = RouteEnv::new(&sc.scenario.mapping, &sc.scenario.source, &solution);

    // Probe one tuple from group 3: its route needs 3 satisfaction steps.
    let probe = sc.select_from_group(&solution, 3, 1, 7)[0];
    let pool = &sc.scenario.pool;
    println!(
        "\nprobing group-3 tuple {}",
        routes_model::tuple_to_string(pool, env.mapping.target(), env.target, probe)
    );

    // Warm the lazily built column indexes so the timings compare algorithm
    // work, not index construction.
    let _ = compute_one_route(env, &[probe]);

    let start = Instant::now();
    let route = compute_one_route(env, &[probe]).expect("chased tuples have routes");
    let one_time = start.elapsed();
    println!("\nComputeOneRoute ({one_time:.2?}):");
    print!("{}", route_to_string(pool, &env, &route));
    assert_eq!(route_rank(&env, &route), 3, "M/T factor 3 = rank 3");

    let start = Instant::now();
    let forest = compute_all_routes(env, &[probe]);
    let all_time = start.elapsed();
    println!(
        "\nComputeAllRoutes ({all_time:.2?}): forest with {} nodes, {} branches",
        forest.num_nodes(),
        forest.num_branches()
    );
    assert!(forest.all_roots_provable());
    let routes = enumerate_routes(env, &forest, &[probe], 5);
    println!("first {} routes from NaivePrint:", routes.len());
    for (k, r) in routes.iter().enumerate() {
        let minimal = minimize_route(&env, r, &[probe]);
        println!(
            "  route #{}: {} steps ({} after minimization), rank {}",
            k + 1,
            r.len(),
            minimal.len(),
            route_rank(&env, r)
        );
        r.validate(&env, &[probe])
            .expect("NaivePrint routes are valid");
    }
    let ratio = all_time.as_secs_f64() / one_time.as_secs_f64().max(1e-9);
    if ratio > 1.0 {
        println!(
            "\none-route was {ratio:.0}x faster than the full forest — the \
             paper's Figure 10(d) effect (it widens with scale)."
        );
    } else {
        println!(
            "\nat this demo scale the forest is still cheap; run the repro \
             binary for the Figure 10(d) sweep where the gap is 2-3 orders \
             of magnitude."
        );
    }
}
