//! Pipeline debugging: a three-stage mapping chain S → T₁ → T₂ → T₃ with
//! end-to-end *stitched* routes and core minimization.
//!
//! A data-engineering team lands raw feed rows (`Feed`), normalizes them
//! (`stage normalize`), enriches them into a reporting shape
//! (`stage enrich`), and publishes a final summary (`stage publish`). A
//! suspicious summary row is explained by stitching one route per hop,
//! from the published tuple all the way back to the raw feed. Core mode is
//! on, so each intermediate instance is shrunk to its minimal (core) form
//! before the next hop chases it — the enrich stage's existential tgd
//! leaves subsumed null rows that minimization removes.
//!
//! ```sh
//! cargo run --example pipeline_route
//! ```

use routes_chase::ChaseOptions;
use routes_cli::{load_pipeline_str, prepare_pipeline};
use routes_core::{route_to_string, RouteEnv};
use routes_pipeline::stitch_route;
use routes_pool::Pool;

const SCENARIO: &str = "
pipeline:
  core: on

stage normalize:
  source schema:
    Feed(id, payload)
  target schema:
    Clean(id, payload)
  dependencies:
    norm: Feed(i, p) -> Clean(i, p)

stage enrich:
  source schema:
    Clean(id, payload)
  target schema:
    Report(id, payload, region)
  dependencies:
    # The region is not in the feed: it is invented as a labeled null...
    guess: Clean(i, p) -> exists R: Report(i, p, R)
    # ...and for the rows a second source also mentions, pinned by a copy.
    pin: Clean(i, p) -> Report(i, p, p)

stage publish:
  source schema:
    Report(id, payload, region)
  target schema:
    Summary(id, region)
  dependencies:
    pub: Report(i, p, r) -> Summary(i, r)

source data:
  Feed(101, east)
  Feed(102, west)
";

fn main() {
    let loaded = load_pipeline_str(SCENARIO).expect("scenario parses");
    let (_, pipeline) =
        prepare_pipeline(loaded, ChaseOptions::fresh(), &Pool::sequential()).expect("chain chases");

    println!(
        "Chased a {}-hop pipeline with core minimization on.",
        pipeline.hops()
    );
    let (before, after) = pipeline.core_shrink();
    println!("Core minimization kept {after} of {before} chased tuples:");
    for (k, stage) in pipeline.stages.iter().enumerate() {
        println!(
            "  hop {k} ({}): {} tuples chased, {} removed as redundant",
            stage.name, stage.tuples_before_core, stage.core_removed
        );
    }

    // Probe every published summary row and stitch a route S → T₁ → T₂ → T₃.
    let last = pipeline.final_stage();
    let probes: Vec<_> = last.target.all_rows().collect();
    println!(
        "\nThe published instance has {} Summary rows.",
        probes.len()
    );
    for &probe in &probes {
        let stitched = stitch_route(&pipeline, &[probe]).expect("published rows have routes");
        stitched
            .validate(&pipeline)
            .expect("stitched routes replay");
        println!(
            "\nStitched route for {probe:?} ({} hops, {} steps total):",
            stitched.stages.len(),
            stitched.total_steps()
        );
        for hop in &stitched.stages {
            let stage = &pipeline.stages[hop.stage];
            let mapping = &pipeline.pipeline.stages()[hop.stage].mapping;
            let env = RouteEnv::new(mapping, &stage.source, &stage.target);
            println!("  hop {} ({}):", hop.stage, hop.name);
            for line in route_to_string(&pipeline.pool, &env, &hop.route).lines() {
                println!("    {line}");
            }
        }
    }
}
