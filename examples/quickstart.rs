//! Quickstart: the paper's running example (Figures 1–2) and its three
//! debugging scenarios (§2.1), end to end.
//!
//! Alice, a banking specialist, debugs the Manhattan Credit / Fargo Bank →
//! Fargo Finance mapping by probing suspicious tuples of the solution `J`
//! and reading the routes the debugger computes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mapping_routes::prelude::*;
use routes_gen::fargo_scenario;

fn main() {
    let fargo = fargo_scenario();
    let pool = &fargo.scenario.pool;
    let env = RouteEnv::new(
        &fargo.scenario.mapping,
        &fargo.scenario.source,
        &fargo.solution,
    );
    let [_, t2, _, t4, t5, t6, ..] = fargo.t;

    println!("The schema mapping (paper Figure 1):");
    for tgd in fargo.scenario.mapping.st_tgds() {
        println!(
            "  {}",
            routes_mapping::tgd_to_string(
                pool,
                fargo.scenario.mapping.source(),
                fargo.scenario.mapping.target(),
                tgd
            )
        );
    }
    for tgd in fargo.scenario.mapping.target_tgds() {
        println!(
            "  {}",
            routes_mapping::tgd_to_string(
                pool,
                fargo.scenario.mapping.target(),
                fargo.scenario.mapping.target(),
                tgd
            )
        );
    }
    for egd in fargo.scenario.mapping.egds() {
        println!(
            "  {}",
            routes_mapping::egd_to_string(pool, fargo.scenario.mapping.target(), egd)
        );
    }

    // --- Scenario 1 --------------------------------------------------------
    println!("\n--- Scenario 1: why does t5 have a null address? ---");
    println!("Alice probes t5 = Clients(434, Smith, Smith, 50K, A1).");
    let route = compute_one_route(env, &[t5]).expect("t5 has a route");
    print!("{}", route_to_string(pool, &env, &route));
    assert_eq!(route.len(), 1);
    let step = &route.steps()[0];
    assert_eq!(env.mapping.tgd(step.tgd).name(), "m1");
    println!(
        "The route shows m1 copied maidenName into name and never mapped\n\
         location to address — Alice fixes m1 accordingly (the paper's m1')."
    );

    // --- Scenario 2 --------------------------------------------------------
    println!("\n--- Scenario 2: why does A. Long (income 30K) hold a 40K card? ---");
    println!("Alice probes t4 = Accounts(5539, 40K, 153).");
    let routes = alternative_routes(env, &[t4], 10);
    for (k, route) in routes.iter().enumerate() {
        println!("route #{}:", k + 1);
        print!("{}", route_to_string(pool, &env, route));
    }
    assert_eq!(routes.len(), 2, "t4 has exactly two routes (via s4 and s3)");
    println!(
        "Both routes go through m3 but join *different* FBAccounts rows with\n\
         the same credit card: m3 is missing the join on ssn (the paper's m3')."
    );

    // --- Scenario 3 --------------------------------------------------------
    println!("\n--- Scenario 3: why is t2's account number unspecified (N1)? ---");
    println!("Alice probes t2 = Accounts(N1, 2K, 234).");
    let route = compute_one_route(env, &[t2]).expect("t2 has a route");
    print!("{}", route_to_string(pool, &env, &route));
    // The paper's route: s2 --m2--> t6 --m5--> t2.
    assert_eq!(route.len(), 2);
    let names: Vec<&str> = route
        .steps()
        .iter()
        .map(|s| env.mapping.tgd(s.tgd).name())
        .collect();
    assert_eq!(names, ["m2", "m5"]);
    let produced = route.validate(&env, &[t2]).expect("route is valid");
    assert!(produced.contains(&t6));
    println!(
        "t2 only exists because m5 invents an account for the supplementary\n\
         card holder: m2 never linked SupplementaryCards to the sponsoring\n\
         card in Cards (the paper's m2')."
    );

    // --- Extras: minimality and stratification -----------------------------
    let strat = stratify(&env, &route);
    println!(
        "\nStratified interpretation of the Scenario 3 route: rank {} ({} steps).",
        strat.rank(),
        route.len()
    );
    assert!(is_minimal(&env, &route, &[t2]));
    println!("The route is minimal: removing any step breaks it.");
}
