//! Single-stepping a route with breakpoints and a watch window — the
//! "standard debugging features" of paper §3.4.
//!
//! We compute a route for the suspicious supplementary-card account `t2`
//! (Scenario 3) and then replay it step by step, breaking on the target tgd
//! `m5` and watching the produced tuples grow.
//!
//! ```sh
//! cargo run --example debug_session
//! ```

use mapping_routes::prelude::*;
use routes_gen::fargo_scenario;

fn main() {
    let fargo = fargo_scenario();
    let pool = &fargo.scenario.pool;
    let env = RouteEnv::new(
        &fargo.scenario.mapping,
        &fargo.scenario.source,
        &fargo.solution,
    );
    let t2 = fargo.t[1];

    let route = compute_one_route(env, &[t2]).expect("t2 has a route");
    println!("Debugging the route for t2 = Accounts(N1, 2K, 234):\n");

    let mut session = DebugSession::new(env, route);
    assert!(session.add_breakpoint_by_name("m5"));
    println!("(breakpoint set on m5)\n");

    // Peek before executing anything — like viewing the next source line.
    println!(
        "next> {}\n",
        session.peek(pool).expect("route is non-empty")
    );

    let event = session
        .run_to_breakpoint()
        .expect("m5 occurs on this route");
    println!(
        "*** breakpoint hit at step {} (tgd m5) ***",
        event.index + 1
    );
    println!("assignment:");
    for (name, value) in &event.assignment {
        println!("    {name} -> {}", pool.value_to_string(*value));
    }
    println!("new tuples this step:");
    for t in &event.new_tuples {
        println!(
            "    {}",
            routes_model::tuple_to_string(pool, env.mapping.target(), env.target, *t)
        );
    }

    println!("\nwatch window (everything produced so far):");
    let mut watched: Vec<String> = session
        .watch()
        .iter()
        .map(|&t| routes_model::tuple_to_string(pool, env.mapping.target(), env.target, t))
        .collect();
    watched.sort();
    for line in &watched {
        println!("    {line}");
    }
    assert!(session.watch().contains(&t2));

    // Continue to the end.
    let mut remaining = 0;
    while session.step().is_some() {
        remaining += 1;
    }
    println!("\nroute finished ({remaining} step(s) after the breakpoint).");
    assert!(session.finished());
}
